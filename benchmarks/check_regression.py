"""Diff benchmark JSON sidecars against committed baselines.

Usage::

    python benchmarks/check_regression.py BASELINE_DIR CURRENT_DIR

Compares every ``*.json`` sidecar in ``BASELINE_DIR`` against its
counterpart in ``CURRENT_DIR`` (the directory a fresh benchmark run
just rewrote).  The check is **structural, not byte-exact**:

* a baseline artifact missing from the current run fails — a
  benchmark (and its gates) silently disappearing is exactly the
  regression this guards against;
* schema drift fails: the nested key sets and value types of the
  ``data`` payload must match (so a renamed gate, a dropped metric, or
  a type change is caught);
* numeric values under *timing-ish* keys (seconds, latency, p50/p99,
  rates, overheads, cache hit counts...) may differ freely — shared CI
  runners make wall-clock values non-reproducible by design;
* every other number (entry counts, gate constants, schema versions,
  seeds) must match exactly.

New artifacts present only in the current run are reported but do not
fail — that's a benchmark being added, not one regressing.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Keys whose numeric values are machine-dependent measurements. Gate
#: *constants* also match (gate_max_read_p99_s etc.) — harmless, since
#: a gate disappearing or changing type still fails the schema check.
#: ``ratio`` covers timing quotients (fusion/overhead ratios) and the
#: exact-leaf names ``min``/``max``/``sum``/``counts`` cover histogram
#: statistics, whose values follow the timing samples; a histogram's
#: total ``count`` stays exact (it counts events, not seconds).
#: ``lag``, ``merge_count``, and ``batch_merged`` are the MMD
#: sequencer's scheduling-dependent shapes: how many merges a storm
#: needs (and how big each batch gets) follows the interleaving of
#: submitters against the merge worker, not the workload definition.
TOLERANT_KEY = re.compile(
    r"seconds|_ms\b|latency|p50|p95|p99|overhead|speedup|per_sec|rate"
    r"|bytes|duration|wall|elapsed|hits|misses|timestamp|ratio"
    r"|lag|merge_count|batch_merged"
    r"|^(?:min|max|sum|counts)$",
    re.IGNORECASE,
)

#: Sidecar top-level keys compared structurally but never by value
#: (renderings embed the timings as text).
TEXT_KEYS = ("text",)


def _type_name(value: object) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    return type(value).__name__


def compare(
    baseline: object,
    current: object,
    path: str,
    key: str,
    tolerant: bool = False,
) -> Iterator[str]:
    """Yield human-readable problems between two sidecar nodes.

    ``tolerant`` is inherited down the key path: once any ancestor key
    names a measurement (``separate_seconds``, a ``*_seconds``
    histogram...), every numeric leaf below it is machine-dependent —
    the leaf names alone (``growth``, per-bucket indices) can't tell.
    Schema checks (key sets, types, lengths) still apply throughout.
    """
    tolerant = tolerant or bool(TOLERANT_KEY.search(key))
    if _type_name(baseline) != _type_name(current):
        yield (
            f"{path}: type changed "
            f"{_type_name(baseline)} -> {_type_name(current)}"
        )
        return
    if isinstance(baseline, dict):
        missing = sorted(set(baseline) - set(current))
        added = sorted(set(current) - set(baseline))
        if missing:
            yield f"{path}: keys removed: {', '.join(missing)}"
        if added:
            yield f"{path}: keys added: {', '.join(added)}"
        for name in sorted(set(baseline) & set(current)):
            yield from compare(
                baseline[name], current[name], f"{path}.{name}", name, tolerant
            )
    elif isinstance(baseline, list):
        if key in TEXT_KEYS:
            return  # rendered lines embed timings; structure only
        if len(baseline) != len(current):
            yield (
                f"{path}: length changed {len(baseline)} -> {len(current)}"
            )
            return
        for index, (b_item, c_item) in enumerate(zip(baseline, current)):
            yield from compare(
                b_item, c_item, f"{path}[{index}]", key, tolerant
            )
    elif isinstance(baseline, bool) or not isinstance(baseline, (int, float)):
        return  # strings and nulls: type match is enough
    elif tolerant:
        return  # measured value; any number is fine
    elif baseline != current:
        yield f"{path}: value changed {baseline!r} -> {current!r}"


def check_dirs(
    baseline_dir: Path, current_dir: Path
) -> Tuple[List[str], List[str]]:
    """Returns (problems, notes)."""
    problems: List[str] = []
    notes: List[str] = []
    baseline_files = sorted(baseline_dir.glob("*.json"))
    if not baseline_files:
        problems.append(f"no baseline sidecars found in {baseline_dir}")
        return problems, notes
    for baseline_path in baseline_files:
        current_path = current_dir / baseline_path.name
        if not current_path.exists():
            problems.append(
                f"{baseline_path.name}: benchmark artifact missing from "
                "this run (gates silently dropped?)"
            )
            continue
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        current = json.loads(current_path.read_text(encoding="utf-8"))
        problems.extend(
            compare(baseline, current, baseline_path.stem, "")
        )
    baseline_names = {path.name for path in baseline_files}
    for current_path in sorted(current_dir.glob("*.json")):
        if current_path.name not in baseline_names:
            notes.append(
                f"{current_path.name}: new artifact (no baseline yet — "
                "commit it to start tracking)"
            )
    return problems, notes


def main(argv: List[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    baseline_dir, current_dir = Path(argv[1]), Path(argv[2])
    problems, notes = check_dirs(baseline_dir, current_dir)
    for note in notes:
        print(f"note: {note}")
    if problems:
        print(
            f"bench-regression: {len(problems)} problem(s) against "
            f"baselines in {baseline_dir}:"
        )
        for problem in problems:
            print(f"  FAIL {problem}")
        return 1
    checked = len(sorted(baseline_dir.glob("*.json")))
    print(f"bench-regression: {checked} sidecar(s) match the baseline schema")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
