"""Shared state for the reproduction benchmarks.

Heavy workloads are session-scoped so each is generated once and the
per-artifact benchmarks measure their analysis stage.  Every benchmark
renders its paper artifact to ``benchmarks/output/<name>.txt`` and
echoes it to stdout, so a benchmark run regenerates the paper's
evaluation section.  Benchmarks that pass ``data=`` additionally get a
machine-readable ``output/<name>.json`` sidecar (timings, counts, and
— where the benchmark instruments its engine — a metrics snapshot).
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"

#: Simulated:real ratios used by the benchmark harness (coarser than
#: the library defaults to keep a full run in minutes).
EVOLUTION_SCALE = 1.0 / 100_000.0
HOSTING_SCALE = 1.0 / 10_000.0
DOMAIN_SCALE = 1.0 / 1_000.0
ENUM_DOMAIN_SCALE = 1.0 / 5_000.0
PHISHING_SCALE = 1.0 / 100.0
TRAFFIC_CONNECTIONS_PER_DAY = 600


#: Artifacts produced during this run, replayed in the terminal summary.
_ARTIFACTS: "list[tuple[str, str]]" = []


def record_artifact(name: str, text: str, data: "dict | None" = None) -> None:
    """Persist a rendered table/figure and queue it for the summary.

    pytest's fd-level capture swallows prints from inside tests, so the
    artifacts are replayed by :func:`pytest_terminal_summary` — a
    benchmark run thereby prints the paper's tables at the end.

    ``data`` (any JSON-serialisable dict) lands in a ``<name>.json``
    sidecar next to the text artifact, so dashboards and regression
    trackers can consume timings/metrics without parsing the rendering.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    sidecar = {
        "artifact": name,
        "text": text.splitlines(),
        "data": data or {},
    }
    (OUTPUT_DIR / f"{name}.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    _ARTIFACTS.append((name, text))
    print(f"\n{text}\n[artifact written to {path}]")


def pytest_collection_modifyitems(config, items):
    """Everything under benchmarks/ carries the ``bench`` marker.

    The fast CI job deselects with ``-m "not bench"`` instead of
    relying on directory layout.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every artifact after the capture is released."""
    if not _ARTIFACTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("Reproduced paper artifacts")
    write("=" * 78)
    for name, text in _ARTIFACTS:
        write("")
        write(f"--- {name} " + "-" * max(1, 70 - len(name)))
        for line in text.splitlines():
            write(line)


@pytest.fixture(scope="session")
def evolution_run():
    """The Figure 1 CA-logging simulation (2015-01 .. 2018-04)."""
    from repro.workloads.ca_profiles import CaLoggingWorkload

    return CaLoggingWorkload(
        scale=EVOLUTION_SCALE, end=date(2018, 4, 30), seed=2018
    ).run()


@pytest.fixture(scope="session")
def traffic_stats():
    """The full-window uplink capture run through the Bro analyzer."""
    from repro.bro.analyzer import BroSctAnalyzer
    from repro.core import adoption
    from repro.workloads.traffic import UplinkTrafficWorkload

    workload = UplinkTrafficWorkload(
        connections_per_day=TRAFFIC_CONNECTIONS_PER_DAY, seed=42
    )
    analyzer = BroSctAnalyzer(workload.logs)
    return adoption.aggregate(analyzer.analyze_stream(workload.stream()))


@pytest.fixture(scope="session")
def hosting_scan():
    """The Section 3.3 active scan."""
    from repro.core import serversupport
    from repro.tls.scanner import TlsScanner
    from repro.util.timeutil import utc_datetime
    from repro.workloads.hosting import HostingWorkload

    population = HostingWorkload(scale=HOSTING_SCALE, seed=33).build()
    scanner = TlsScanner(population.resolver(), population.endpoints)
    records = scanner.scan(population.domains, utc_datetime(2018, 5, 18))
    names = {log.log_id: log.name for log in population.logs.values()}
    return serversupport.analyze_scan(records, names)


@pytest.fixture()
def fresh_harvest_log():
    """A small single-log harvest for the checkpoint benchmark."""
    from repro.ct.loglist import build_default_logs
    from repro.util.timeutil import utc_datetime
    from repro.x509.ca import CertificateAuthority, IssuanceRequest

    logs = build_default_logs(with_capacities=False, key_bits=256)
    log = logs["Google Pilot log"]
    ca = CertificateAuthority("Bench CA", key_bits=256)
    now = utc_datetime(2018, 4, 18, 12, 0)
    for index in range(40):
        ca.issue(
            IssuanceRequest(
                (f"host{index}.bench.org", f"www.host{index}.bench.org")
            ),
            [log],
            now,
        )
    return log


@pytest.fixture(scope="session")
def domain_corpus():
    """The Section 4 domain corpus at the reference 1:1000 scale."""
    from repro.workloads.domains import DomainWorkload

    return DomainWorkload(scale=DOMAIN_SCALE, seed=44).build()


@pytest.fixture(scope="session")
def leakage_stats(domain_corpus):
    from repro.core import leakage

    return leakage.analyze_names(domain_corpus.ct_fqdns, domain_corpus.psl)


@pytest.fixture(scope="session")
def enum_corpus():
    """A lighter corpus for the resolution-heavy Section 4.3 pipeline."""
    from repro.workloads.domains import DomainWorkload

    return DomainWorkload(scale=ENUM_DOMAIN_SCALE, seed=45).build()
