"""Ablation benchmarks for the design choices called out in DESIGN.md.

* control-name methodology (Section 4.3) — without controls, wildcard
  and default-A zones massively inflate "discoveries";
* routing-table filter (Section 4.3) — without it, misconfigured
  servers add false positives;
* label-frequency threshold — candidate count vs discovery yield;
* streaming vs batch CT monitoring (Section 6) — the two observed
  latency populations;
* Chrome log-diversity policy (Section 2) — concentration vs
  compliance of the CAs' log selections.
"""

from datetime import date, timedelta

import pytest
from conftest import record_artifact

from repro.core import enumeration, leakage
from repro.util.rng import SeededRng


@pytest.fixture(scope="module")
def enum_setup(enum_corpus):
    stats = leakage.analyze_names(enum_corpus.ct_fqdns, enum_corpus.psl)
    plan = enumeration.construct_candidates(stats, enum_corpus)
    truth = enumeration.build_ground_truth(plan, seed=1717)
    return stats, plan, truth


def test_bench_ablation_controls_and_filter(benchmark, enum_setup):
    """Discovery counts with and without the two safeguards."""
    _, plan, truth = enum_setup

    def run():
        return enumeration.verify_candidates(
            plan, truth, seed=81, with_ablations=True
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: Section 4.3 safeguards",
        f"  full methodology:      {result.discovered} discoveries",
        f"  without controls:      {result.discovered_without_controls} "
        f"({result.discovered_without_controls / max(1, result.discovered):.1f}x inflated)",
        f"  without routing filter: {result.discovered_without_routing_filter} "
        f"(+{result.discovered_without_routing_filter - result.discovered} false positives)",
    ]
    record_artifact("ablation_safeguards", "\n".join(lines))
    # Controls matter by ~3-4x (29 % wildcard zones vs 9 % genuine).
    assert result.discovered_without_controls > 3 * result.discovered
    # The routing filter removes a real, non-zero false-positive tail.
    assert result.discovered_without_routing_filter > result.discovered * 1.02


def test_bench_ablation_label_threshold(benchmark, enum_corpus, enum_setup):
    """Sweep the >=100k label filter: candidates vs yield."""
    stats, _, _ = enum_setup
    thresholds = [20_000, 50_000, 100_000, 200_000, 400_000]

    def sweep():
        rows = []
        for threshold in thresholds:
            config = enumeration.EnumerationConfig(
                min_label_occurrences=threshold
            )
            plan = enumeration.construct_candidates(stats, enum_corpus, config)
            rows.append((threshold, len(plan.eligible_labels), len(plan.candidates)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: label-frequency threshold (real-unit threshold, labels, candidates)"]
    for threshold, labels, candidates in rows:
        lines.append(f"  >={threshold:>7}: {labels:3d} labels, {candidates:7d} candidates")
    record_artifact("ablation_threshold", "\n".join(lines))
    candidates = [c for _, _, c in rows]
    assert candidates == sorted(candidates, reverse=True)
    assert candidates[-1] < candidates[0]


def test_bench_ablation_streaming_vs_batch(benchmark, fresh_setup=None):
    """The two latency populations of Section 6.2."""
    from repro.ct.loglist import build_default_logs
    from repro.ct.monitor import BatchMonitor, StreamingMonitor
    from repro.util.timeutil import utc_datetime
    from repro.x509.ca import CertificateAuthority, IssuanceRequest

    logs = build_default_logs(with_capacities=False, key_bits=256)
    log = logs["Google Icarus log"]
    ca = CertificateAuthority("Ablation CA", key_bits=256)
    base = utc_datetime(2018, 4, 30, 13, 0)
    for i in range(60):
        ca.issue(IssuanceRequest((f"ab{i}.example",)), [log],
                 base + timedelta(minutes=7 * i))

    def observe():
        stream = StreamingMonitor("stream", SeededRng(1), latency_range_s=(72, 180))
        batch = BatchMonitor("batch", SeededRng(2), interval=timedelta(hours=2))
        return (
            [o.latency_seconds for o in stream.observe(log)],
            [o.latency_seconds for o in batch.observe(log)],
        )

    stream_lat, batch_lat = benchmark.pedantic(observe, rounds=1, iterations=1)
    mean_stream = sum(stream_lat) / len(stream_lat)
    mean_batch = sum(batch_lat) / len(batch_lat)
    lines = [
        "Ablation: streaming vs batch CT monitoring latency",
        f"  streaming: mean {mean_stream:6.0f}s  min {min(stream_lat):6.0f}s  max {max(stream_lat):6.0f}s",
        f"  batch:     mean {mean_batch:6.0f}s  min {min(batch_lat):6.0f}s  max {max(batch_lat):6.0f}s",
        f"  -> the paper's two query populations: minutes vs >=1-2 hours",
    ]
    record_artifact("ablation_monitoring", "\n".join(lines))
    assert max(stream_lat) <= 180
    assert mean_batch > 10 * mean_stream
    # 2h batch interval: latencies spread up to the full interval.
    assert max(batch_lat) > 3_600


def test_bench_ablation_policy_diversity(benchmark, evolution_run):
    """How the big CAs' log selections fare under Chrome's policy, and
    what happens when the overloaded Nimbus log is disqualified."""
    from repro.ct.policy import ChromeCTPolicy

    logs = evolution_run.logs
    policy = ChromeCTPolicy(logs)
    april_pairs = [
        pair for pair in evolution_run.issued
        if pair.final_certificate.not_before.date() >= date(2018, 4, 1)
    ]

    def evaluate():
        return [
            policy.evaluate(pair.final_certificate, list(pair.scts))
            for pair in april_pairs
        ]

    verdicts = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    compliant = sum(1 for v in verdicts if v.compliant)

    nimbus = logs["Cloudflare Nimbus2018 Log"]
    nimbus.disqualified = True
    after = [
        policy.evaluate(pair.final_certificate, list(pair.scts))
        for pair in april_pairs
    ]
    nimbus.disqualified = False
    compliant_after = sum(1 for v in after if v.compliant)
    lines = [
        "Ablation: Chrome log-diversity policy vs log concentration",
        f"  April 2018 certificates evaluated: {len(verdicts)}",
        f"  compliant with Nimbus qualified:    {compliant} ({compliant / len(verdicts):.0%})",
        f"  compliant after Nimbus disqualified: {compliant_after} ({compliant_after / len(verdicts):.0%})",
        "  -> concentrating on few logs makes the ecosystem fragile (Section 2)",
    ]
    record_artifact("ablation_policy", "\n".join(lines))
    # Disqualifying the single overloaded log knocks out a large share
    # of fresh certificates — the fragility the paper warns about.
    assert compliant_after < compliant * 0.75
