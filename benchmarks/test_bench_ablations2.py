"""Further ablations: leak channels and countermeasures.

* **rDNS discipline (Section 6.1)** — the honeypot deliberately kept
  its unique IPv6 addresses out of the rDNS tree "to avoid discovery
  through rDNS walking".  We quantify the alternative channels: had
  PTRs been published, a tree walker finds every address in a few
  hundred queries; random IPv6 scanning never finds them; CT leaks
  them in ~90 seconds regardless.
* **Label redaction (Section 4)** — the countermeasure CT never
  standardized: how much of Table 2's leakage each policy removes, and
  how much of the Section 5 defender visibility it costs.
"""

from conftest import record_artifact

from repro.core.honeypot import CtHoneypotExperiment
from repro.ct.redaction import RedactionPolicy, leakage_reduction
from repro.dnscore.rdns import (
    ReverseZone,
    random_ipv6_scan_hit_probability,
    walk_rdns_tree,
)


def test_bench_ablation_rdns_discipline(benchmark):
    result = CtHoneypotExperiment(seed=66).run()
    domains = result.domains

    # The counterfactual: PTRs for every honeypot IPv6 address.
    zone = ReverseZone()
    for domain in domains:
        zone.add_ptr(domain.ipv6, domain.fqdn)

    walk = benchmark.pedantic(
        walk_rdns_tree, args=(zone, []), rounds=1, iterations=1
    )
    ct_latency = min(
        row.dns_delta_s for row in result.table4() if row.dns_delta_s
    )
    p_random = random_ipv6_scan_hit_probability(len(domains), prefix_bits=64)
    lines = [
        "Ablation: how could the honeypot's IPv6 endpoints be discovered?",
        f"  via CT (the actual leak):   first query {ct_latency:.0f}s after logging",
        f"  via rDNS walking (if PTRs existed): all {len(walk.discovered)}/{len(domains)} "
        f"addresses in {walk.queries_used} queries",
        f"  via random IPv6 scanning:   P(hit per probe) = {p_random:.1e} — hopeless",
        "  -> publishing PTRs would have opened a second leak; the paper's",
        "     discipline makes CT the *only* channel, which the zero non-CA",
        "     IPv6 traffic confirms.",
    ]
    record_artifact("ablation_rdns", "\n".join(lines))
    assert len(walk.discovered) == len(domains)
    assert walk.queries_used < 5_000
    assert p_random < 1e-15
    assert ct_latency < 300


def test_bench_ablation_redaction(benchmark, domain_corpus):
    policies = [
        ("no redaction", RedactionPolicy(redact_all_labels=False)),
        ("hide sensitive (vpn/dev/staging/admin)", RedactionPolicy(
            redact_all_labels=False,
            sensitive_labels=("vpn", "dev", "staging", "admin", "test", "intranet"),
        )),
        ("Deneb-style: hide all but www", RedactionPolicy(keep_labels=("www",))),
        ("hide everything", RedactionPolicy(keep_labels=())),
    ]

    def run():
        return [
            (name, leakage_reduction(domain_corpus.ct_fqdns, policy))
            for name, policy in policies
        ]

    impacts = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: label redaction — privacy gained vs monitoring lost"]
    for name, impact in impacts:
        lines.append(
            f"  {name:42s} labels hidden {impact.label_reduction:6.1%}   "
            f"names unmonitorable {impact.monitoring_loss:6.1%}"
        )
    lines.append(
        "  -> privacy and defender visibility move in lockstep; this tension"
    )
    lines.append("     is why redaction was never standardized (Section 4).")
    record_artifact("ablation_redaction", "\n".join(lines))

    by_name = dict(impacts)
    assert by_name["no redaction"].label_reduction == 0.0
    assert 0.0 < by_name["hide sensitive (vpn/dev/staging/admin)"].label_reduction < 0.1
    assert by_name["Deneb-style: hide all but www"].label_reduction > 0.3
    assert by_name["hide everything"].label_reduction == 1.0
    # Monitoring loss rises monotonically with privacy.
    losses = [impact.monitoring_loss for _, impact in impacts]
    assert losses == sorted(losses)
