"""Columnar corpus build cost and the fused-traversal payoff.

Measurements over the Figure 1 workload at benchmark scale:

* corpus construction throughput (records/s and resident bytes per
  record, straight from the ``dataset.*`` build metrics);
* the fused §2 traversal (growth + rates + matrix, the ``sec2``
  artifact) versus the three single-pass scans it replaces — same
  graph machinery either way, so the delta is traversal fusion itself;
* the same comparison with the §4 leakage pass added (reported, not
  gated: the PSL fold dominates per-record cost there, so fusion's
  saved traversals are a smaller share of the total).

The fused §2 pass must beat the summed per-section scans by
``FUSION_TARGET`` (outputs asserted identical first); every timing is
best-of-``TRIALS`` and the gate is skipped in benchmark-smoke mode
where timing is meaningless.
"""

import time

from conftest import EVOLUTION_SCALE, record_artifact

from repro.dataset import CertCorpus, section2_graph, sections_graph
from repro.dataset.sections import (
    corpus_growth,
    corpus_leakage,
    corpus_matrix,
    corpus_rates,
)
from repro.obs import MetricsRegistry

FUSION_TARGET = 1.5
TRIALS = 2


def _timed(fn):
    """(result, best-of-TRIALS seconds) — min damps scheduler noise."""
    best = float("inf")
    for _ in range(TRIALS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_bench_dataset_fused_traversal(evolution_run, request):
    metrics = MetricsRegistry()
    corpus, build_seconds = _timed(
        lambda: CertCorpus.from_logs(evolution_run.logs, metrics=metrics)
    )
    snapshot = metrics.snapshot()
    bytes_per_record = snapshot.gauge("dataset.bytes_per_record")

    sections = {
        "growth": corpus_growth,
        "rates": corpus_rates,
        "matrix": corpus_matrix,
        "leakage": corpus_leakage,
    }
    separate = {}
    separate_seconds = {}
    for name, section in sections.items():
        separate[name], separate_seconds[name] = _timed(
            lambda section=section: section(corpus)
        )

    sec2_graph = section2_graph()
    sec2, sec2_seconds = _timed(
        lambda: sec2_graph.run(corpus.iter_records())
    )
    all_graph = sections_graph()
    fused_all, all_seconds = _timed(
        lambda: all_graph.run(corpus.iter_records())
    )

    # Fusion must not change a bit of any section result.
    for result in (sec2, fused_all):
        assert result["growth"] == separate["growth"]
        assert result["rates"] == separate["rates"]
        assert result["matrix"].cells() == separate["matrix"].cells()
    assert fused_all["leakage"] == separate["leakage"]

    sec2_summed = sum(
        separate_seconds[name] for name in ("growth", "rates", "matrix")
    )
    all_summed = sum(separate_seconds.values())
    sec2_ratio = sec2_summed / sec2_seconds if sec2_seconds else 0.0
    all_ratio = all_summed / all_seconds if all_seconds else 0.0

    lines = [
        "Columnar corpus + fused traversal "
        f"(scale 1:{int(1 / EVOLUTION_SCALE)}, {len(corpus)} records)",
        f"  corpus build        {build_seconds:8.3f} s   "
        f"{len(corpus) / build_seconds:10.0f} records/s, "
        f"{bytes_per_record:.0f} B/record",
        *(
            f"  {name:<10} scan     {seconds:8.3f} s"
            for name, seconds in separate_seconds.items()
        ),
        f"  fused Sec2 (3 passes) {sec2_seconds:6.3f} s vs "
        f"{sec2_summed:.3f} s summed -> {sec2_ratio:.2f}x",
        f"  fused all  (4 passes) {all_seconds:6.3f} s vs "
        f"{all_summed:.3f} s summed -> {all_ratio:.2f}x",
    ]
    record_artifact(
        "dataset",
        "\n".join(lines),
        data={
            "records": len(corpus),
            "build_seconds": build_seconds,
            "bytes_per_record": bytes_per_record,
            "approx_bytes": corpus.approx_bytes(),
            "separate_seconds": separate_seconds,
            "sec2_summed_seconds": sec2_summed,
            "sec2_fused_seconds": sec2_seconds,
            "sec2_fusion_ratio": sec2_ratio,
            "all_summed_seconds": all_summed,
            "all_fused_seconds": all_seconds,
            "all_fusion_ratio": all_ratio,
            "metrics": snapshot.to_dict(),
        },
    )

    smoke = request.config.getoption("--benchmark-disable", default=False)
    if not smoke:
        assert sec2_ratio >= FUSION_TARGET, (
            f"fused Sec2 traversal must be >= {FUSION_TARGET}x the summed "
            f"per-section scans, measured {sec2_ratio:.2f}x"
        )
