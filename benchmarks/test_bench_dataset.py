"""Columnar corpus build cost and the fused-traversal payoff.

Measurements over the Figure 1 workload at benchmark scale:

* corpus construction throughput (records/s and resident bytes per
  record, straight from the ``dataset.*`` build metrics);
* the fused §2 traversal (growth + rates + matrix, the ``sec2``
  artifact) versus the three single-pass scans it replaces — same
  graph machinery either way, so the delta is traversal fusion itself;
* the same comparison with the §4 leakage pass added (reported, not
  gated: the PSL fold dominates per-record cost there, so fusion's
  saved traversals are a smaller share of the total).

The fused §2 pass must beat the summed per-section scans by
``FUSION_TARGET`` (outputs asserted identical first); every timing is
best-of-``TRIALS`` and the gate is skipped in benchmark-smoke mode
where timing is meaningless.
"""

import json
import threading
import time
import urllib.request
from datetime import timedelta

from conftest import EVOLUTION_SCALE, record_artifact

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.server import LogServer
from repro.dataset import CertCorpus, LiveAnalytics, section2_graph, sections_graph
from repro.dataset.sections import (
    corpus_growth,
    corpus_leakage,
    corpus_matrix,
    corpus_rates,
)
from repro.obs import MetricsRegistry, TelemetryServer
from repro.util.timeutil import utc_datetime
from repro.workloads.loadgen import LoadStormConfig, plan_storm, run_storm
from repro.x509.ca import CertificateAuthority, IssuanceRequest

FUSION_TARGET = 1.5
TRIALS = 2

#: The append path must beat per-poll full recomputes by this much.
APPEND_TARGET = 10.0
APPEND_BATCHES = 40
SCRAPE_EVERY = 8


def _timed(fn):
    """(result, best-of-TRIALS seconds) — min damps scheduler noise."""
    best = float("inf")
    for _ in range(TRIALS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_bench_dataset_fused_traversal(evolution_run, request):
    metrics = MetricsRegistry()
    corpus, build_seconds = _timed(
        lambda: CertCorpus.from_logs(evolution_run.logs, metrics=metrics)
    )
    snapshot = metrics.snapshot()
    bytes_per_record = snapshot.gauge("dataset.bytes_per_record")

    sections = {
        "growth": corpus_growth,
        "rates": corpus_rates,
        "matrix": corpus_matrix,
        "leakage": corpus_leakage,
    }
    separate = {}
    separate_seconds = {}
    for name, section in sections.items():
        separate[name], separate_seconds[name] = _timed(
            lambda section=section: section(corpus)
        )

    sec2_graph = section2_graph()
    sec2, sec2_seconds = _timed(
        lambda: sec2_graph.run(corpus.iter_records())
    )
    all_graph = sections_graph()
    fused_all, all_seconds = _timed(
        lambda: all_graph.run(corpus.iter_records())
    )

    # Fusion must not change a bit of any section result.
    for result in (sec2, fused_all):
        assert result["growth"] == separate["growth"]
        assert result["rates"] == separate["rates"]
        assert result["matrix"].cells() == separate["matrix"].cells()
    assert fused_all["leakage"] == separate["leakage"]

    sec2_summed = sum(
        separate_seconds[name] for name in ("growth", "rates", "matrix")
    )
    all_summed = sum(separate_seconds.values())
    sec2_ratio = sec2_summed / sec2_seconds if sec2_seconds else 0.0
    all_ratio = all_summed / all_seconds if all_seconds else 0.0

    lines = [
        "Columnar corpus + fused traversal "
        f"(scale 1:{int(1 / EVOLUTION_SCALE)}, {len(corpus)} records)",
        f"  corpus build        {build_seconds:8.3f} s   "
        f"{len(corpus) / build_seconds:10.0f} records/s, "
        f"{bytes_per_record:.0f} B/record",
        *(
            f"  {name:<10} scan     {seconds:8.3f} s"
            for name, seconds in separate_seconds.items()
        ),
        f"  fused Sec2 (3 passes) {sec2_seconds:6.3f} s vs "
        f"{sec2_summed:.3f} s summed -> {sec2_ratio:.2f}x",
        f"  fused all  (4 passes) {all_seconds:6.3f} s vs "
        f"{all_summed:.3f} s summed -> {all_ratio:.2f}x",
    ]
    record_artifact(
        "dataset",
        "\n".join(lines),
        data={
            "records": len(corpus),
            "build_seconds": build_seconds,
            "bytes_per_record": bytes_per_record,
            "approx_bytes": corpus.approx_bytes(),
            "separate_seconds": separate_seconds,
            "sec2_summed_seconds": sec2_summed,
            "sec2_fused_seconds": sec2_seconds,
            "sec2_fusion_ratio": sec2_ratio,
            "all_summed_seconds": all_summed,
            "all_fused_seconds": all_seconds,
            "all_fusion_ratio": all_ratio,
            "metrics": snapshot.to_dict(),
        },
    )

    smoke = request.config.getoption("--benchmark-disable", default=False)
    if not smoke:
        assert sec2_ratio >= FUSION_TARGET, (
            f"fused Sec2 traversal must be >= {FUSION_TARGET}x the summed "
            f"per-section scans, measured {sec2_ratio:.2f}x"
        )


def _poll_batches(logs, count):
    """The evolution entries as ``count`` ordered poll batches of pairs."""
    pairs = [
        (log.name, entry)
        for log in logs.values()
        for entry in log.entries
    ]
    size = max(1, -(-len(pairs) // count))
    return [pairs[i : i + size] for i in range(0, len(pairs), size)]


def _append_pass(batches, on_batch=None):
    """Fold every batch through the streaming path; timed.

    Returns ``(live, seconds)`` where ``seconds`` covers the full
    incremental pipeline: columnar append + per-delta graph fold.
    """
    corpus = CertCorpus.empty()
    live = LiveAnalytics()
    start = time.perf_counter()
    for index, batch in enumerate(batches):
        live.fold_delta(corpus.append_batch(batch, with_names=False))
        if on_batch is not None:
            on_batch(index)
    return live, time.perf_counter() - start


def _storm_log(entries=10):
    now = utc_datetime(2018, 5, 1, 10, 0)
    log = CTLog(
        name="Append Storm Log",
        operator="Bench",
        key=log_key("Append Storm Log", 256),
    )
    ca = CertificateAuthority("Append Storm CA", key_bits=256)
    for index in range(entries):
        ca.issue(
            IssuanceRequest((f"storm{index}.bench.org",)),
            [log],
            now + timedelta(seconds=index),
        )
    return log


def test_bench_dataset_append_path(evolution_run, request):
    """Streaming append+fold vs per-poll batch recompute, served live.

    The rebuild leg models a naive monitor: after every poll it
    rebuilds the corpus over the whole prefix and reruns the Section 2
    graph from scratch.  The append leg is the streaming path —
    ``append_batch`` plus ``LiveAnalytics.fold_delta`` per poll — and
    must come out ``APPEND_TARGET`` times cheaper over the same
    ``APPEND_BATCHES`` polls (results asserted identical first).

    The first append trial additionally runs "under fire": a telemetry
    server exposes the folding accumulator's ``GET /analytics`` while a
    seeded load storm hammers a ``LogServer`` in the background, and
    the benchmark scrapes the endpoint between folds — pinning that
    live serving works mid-storm.  Timing takes best-of-trials, so the
    gate compares clean runs.
    """
    batches = _poll_batches(evolution_run.logs, APPEND_BATCHES)

    # -- append leg, trial 1: folding while serving during a storm ----------
    registry = MetricsRegistry()
    scrapes = []
    served_live = {}

    def scrape(index):
        if (index + 1) % SCRAPE_EVERY:
            return
        url = served_live["url"] + "/analytics"
        with urllib.request.urlopen(url, timeout=5) as response:
            assert response.status == 200
            scrapes.append(json.loads(response.read().decode()))

    storm_log = _storm_log()
    plans = plan_storm(
        LoadStormConfig(
            seed=18,
            browsers=2,
            monitors=1,
            submitters=1,
            audits_per_browser=3,
            pages_per_monitor=2,
            page_size=4,
            submissions_per_submitter=3,
        ),
        storm_log,
    )
    storm_report = {}
    live = LiveAnalytics()
    with LogServer(
        storm_log, clock=lambda: utc_datetime(2018, 5, 1, 10, 5)
    ) as log_server, TelemetryServer(
        registry.snapshot, analytics_source=live.to_dict
    ) as telemetry:
        served_live["url"] = telemetry.url

        def storm():
            storm_report["report"] = run_storm(
                plans,
                log_server.log_url(storm_log.name),
                executor="thread",
                workers=4,
            )

        storm_thread = threading.Thread(target=storm)
        storm_thread.start()
        corpus = CertCorpus.empty()
        start = time.perf_counter()
        for index, batch in enumerate(batches):
            live.fold_delta(corpus.append_batch(batch, with_names=False))
            scrape(index)
        storm_seconds = time.perf_counter() - start
        storm_thread.join(timeout=60)
    live_storm = live
    report = storm_report["report"]
    assert report.transport_errors == 0
    assert report.verification_failures == 0
    # Every scrape is a well-formed version-1 snapshot; the folded
    # record count grows monotonically across them.
    assert len(scrapes) == APPEND_BATCHES // SCRAPE_EVERY
    assert all(snap["version"] == 1 for snap in scrapes)
    folded = [snap["records_folded"] for snap in scrapes]
    assert folded == sorted(folded)
    assert folded[-1] == live_storm.records_folded

    # -- append leg, trial 2: clean (no concurrent serving) -----------------
    live_clean, clean_seconds = _append_pass(batches)
    append_seconds = min(storm_seconds, clean_seconds)

    # -- rebuild leg: full recompute after every poll ------------------------
    graph = section2_graph()
    prefix = []
    rebuild_results = None
    start = time.perf_counter()
    for batch in batches:
        prefix.extend(batch)
        rebuilt = CertCorpus.empty()
        rebuilt.append_batch(prefix, with_names=False)
        rebuild_results = graph.run(rebuilt.iter_records())
    rebuild_seconds = time.perf_counter() - start

    # Identical outputs before any timing claim: both append trials and
    # the final rebuild agree bit-for-bit.
    for results in (live_storm.results(), live_clean.results()):
        assert results["growth"] == rebuild_results["growth"]
        assert list(results["growth"]) == list(rebuild_results["growth"])
        assert results["rates"] == rebuild_results["rates"]
        assert (
            results["matrix"].cells() == rebuild_results["matrix"].cells()
        )
    assert json.dumps(live_storm.to_dict(), sort_keys=True) == json.dumps(
        live_clean.to_dict(), sort_keys=True
    )

    speedup = rebuild_seconds / append_seconds if append_seconds else 0.0
    records = live_clean.records_folded
    lines = [
        "Streaming append path vs per-poll recompute "
        f"(scale 1:{int(1 / EVOLUTION_SCALE)}, {records} records, "
        f"{len(batches)} polls)",
        f"  append+fold (clean)   {clean_seconds:8.3f} s",
        f"  append+fold (storm)   {storm_seconds:8.3f} s   "
        f"{len(scrapes)} /analytics scrapes, "
        f"{report.reads_ok} storm reads served alongside",
        f"  rebuild every poll    {rebuild_seconds:8.3f} s",
        f"  speedup               {speedup:8.1f} x  (gate >= "
        f"{APPEND_TARGET}x)",
    ]
    record_artifact(
        "dataset_append",
        "\n".join(lines),
        data={
            "version": 1,
            "records": records,
            "batches": len(batches),
            "analytics_scrapes": len(scrapes),
            "storm_reads_ok": report.reads_ok,
            "storm_submissions_ok": report.submissions_ok,
            "append_seconds": append_seconds,
            "append_clean_seconds": clean_seconds,
            "append_storm_seconds": storm_seconds,
            "rebuild_seconds": rebuild_seconds,
            "speedup": speedup,
            "gate_min_speedup": APPEND_TARGET,
        },
    )

    smoke = request.config.getoption("--benchmark-disable", default=False)
    if not smoke:
        assert speedup >= APPEND_TARGET, (
            f"streaming append must be >= {APPEND_TARGET}x cheaper than "
            f"per-poll recompute, measured {speedup:.2f}x"
        )
