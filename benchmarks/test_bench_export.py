"""Cost of live telemetry export: events + interval flushing vs off.

Two identical end-to-end monitoring loops (issue certificates into a
pair of logs, poll the feed, fan entries out to a subscriber) run
round by round; one bare, one with the full live-export stack
attached — a metrics registry, a JSONL event log on disk (flushed per
line), and a zero-interval snapshot-delta flusher (one
``metrics_flush`` per poll, the worst case).  The gate: live export
must cost < ``OVERHEAD_CEILING`` over the bare loop.  The artifact
records the timings plus the event/flush volume.
"""

import time
from datetime import timedelta

from conftest import record_artifact

from repro.ct.feed import CertFeed
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.obs import EventLog, MetricsRegistry, replay_counters
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)
ROUNDS = 30
CERTS_PER_LOG = 4
REPEATS = 3
OVERHEAD_CEILING = 0.05


def _build_world(tag):
    logs = [
        CTLog(
            name=f"Bench {tag} {suffix}",
            operator="T",
            key=log_key(f"Bench {tag} {suffix}", 256),
        )
        for suffix in ("A", "B")
    ]
    ca = CertificateAuthority(f"Bench CA {tag}", key_bits=256)
    return logs, ca


def _run_loop(feed, logs, ca):
    """One full monitoring loop: issue, poll, fan out — all timed."""
    seen = []
    feed.subscribe("sink", lambda event: seen.append(len(event.dns_names)))
    started = time.perf_counter()
    for round_no in range(ROUNDS):
        when = NOW + timedelta(minutes=round_no)
        for log in logs:
            for cert_no in range(CERTS_PER_LOG):
                ca.issue(
                    IssuanceRequest(
                        (
                            f"r{round_no}c{cert_no}.bench.example",
                            f"www.r{round_no}c{cert_no}.bench.example",
                        )
                    ),
                    [log],
                    when,
                )
        feed.run_once(when)
    feed.flush_telemetry()
    spent = time.perf_counter() - started
    assert len(seen) == ROUNDS * CERTS_PER_LOG * len(logs)
    return spent


def test_bench_live_export_overhead(request, tmp_path):
    runs = []
    for repeat in range(REPEATS):
        base_logs, base_ca = _build_world(f"off{repeat}")
        bare = CertFeed(base_logs)
        bare_seconds = _run_loop(bare, base_logs, base_ca)

        live_logs, live_ca = _build_world(f"on{repeat}")
        metrics = MetricsRegistry()
        events = EventLog(tmp_path / f"bench-events-{repeat}.jsonl")
        live = CertFeed(
            live_logs,
            metrics=metrics,
            events=events,
            flush_interval_s=0.0,  # flush every poll: worst case
        )
        live_seconds = _run_loop(live, live_logs, live_ca)
        events.close()
        runs.append((bare_seconds, live_seconds, metrics, events))

    # The live stream is complete: replay == final snapshot counters.
    _, _, metrics, events = runs[-1]
    replayed = replay_counters(events.tail(100_000))
    counters = metrics.snapshot().counters
    assert {
        key: value
        for key, value in replayed.items()
        if key.startswith("feed.entries")
    } == {
        key: value
        for key, value in counters.items()
        if key.startswith("feed.entries")
    }
    assert events.emitted > ROUNDS  # per-poll events plus flushes

    # Min over repeats: scheduler noise only ever inflates a run.
    overhead = min(
        live_seconds / bare_seconds - 1.0
        for bare_seconds, live_seconds, _, _ in runs
    )
    bare_best = min(run[0] for run in runs)
    live_best = min(run[1] for run in runs)

    smoke = request.config.getoption("--benchmark-disable", default=False)
    if not smoke:
        assert overhead < OVERHEAD_CEILING, (
            f"live export overhead {overhead:.1%} exceeds the "
            f"{OVERHEAD_CEILING:.0%} ceiling"
        )

    entries = ROUNDS * CERTS_PER_LOG * 2
    lines = [
        f"Live telemetry export — {ROUNDS} poll rounds, {entries} entries, "
        f"flush every poll",
        f"  telemetry off  {bare_best * 1e3:8.2f} ms",
        f"  telemetry on   {live_best * 1e3:8.2f} ms   "
        f"({events.emitted} events, {overhead:+.1%})",
        f"  ceiling        {OVERHEAD_CEILING:.0%}",
    ]
    record_artifact(
        "export",
        "\n".join(lines),
        data={
            "rounds": ROUNDS,
            "entries": entries,
            "repeats": REPEATS,
            "bare_seconds": bare_best,
            "live_seconds": live_best,
            "overhead": overhead,
            "ceiling": OVERHEAD_CEILING,
            "events_emitted": events.emitted,
        },
    )
