"""Figure 1a — cumulative growth of logged precertificates per CA.

Paper shape targets: DigiCert dominates the cumulative count over the
long term; Let's Encrypt, starting only in March 2018 at >2M/day,
surges to a comparable magnitude within two months; StartCom and the
'Other' tail stay orders of magnitude below.
"""

from datetime import date

from conftest import EVOLUTION_SCALE, record_artifact

from repro.core import evolution, report


def test_bench_fig1a(benchmark, evolution_run):
    growth = benchmark.pedantic(
        evolution.cumulative_precert_growth,
        args=(evolution_run.logs,),
        rounds=1,
        iterations=1,
    )
    crossings = evolution.crossover_dates(growth)
    crossover_lines = ["", "crossovers (riser overtakes):"]
    for (riser, overtaken), day in sorted(crossings.items(), key=lambda kv: kv[1]):
        crossover_lines.append(f"  {day.isoformat()}  {riser} passes {overtaken}")
    text = report.render_figure1a(growth, weight=evolution_run.weight)
    record_artifact("fig1a", text + "\n".join(crossover_lines))

    totals = {ca: series[-1][1] for ca, series in growth.items()}
    # DigiCert leads the cumulative counts at harvest time.
    leader = max(totals, key=totals.get)
    assert leader == "DigiCert", totals
    # Let's Encrypt reaches the same order of magnitude in two months.
    assert totals["Let's Encrypt"] > totals["DigiCert"] * 0.3
    # Let's Encrypt's series only begins in March 2018.
    assert growth["Let's Encrypt"][0][0] >= date(2018, 3, 1)
    # Scaled back to real units, the ecosystem carries hundreds of
    # millions of precertificates.
    total_real = sum(totals.values()) / EVOLUTION_SCALE
    assert total_real > 1e8
    # Crossovers fall where the paper's figure shows them: Let's
    # Encrypt overtakes the smaller long-established CAs within weeks
    # of starting (March/April 2018).
    for overtaken in ("Symantec", "GlobalSign", "StartCom"):
        day = crossings[("Let's Encrypt", overtaken)]
        assert date(2018, 3, 8) <= day <= date(2018, 4, 30), (overtaken, day)


def test_bench_fig1a_workload_generation(benchmark):
    """Cost of the full CA->log pipeline itself, at a reduced scale."""
    from repro.workloads.ca_profiles import CaLoggingWorkload

    def run():
        return CaLoggingWorkload(
            scale=1 / 400_000, end=date(2018, 4, 30), seed=1
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.issued
