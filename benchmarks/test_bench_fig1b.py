"""Figure 1b — relative precertificate update rate per CA and day.

Paper shape targets: DigiCert dominates the daily rate over a long
period, with irregular additions by Comodo, GlobalSign, and StartCom;
after starting to log in March 2018, Let's Encrypt dominates.
"""

from datetime import date

from conftest import record_artifact

from repro.core import evolution, report


def test_bench_fig1b(benchmark, evolution_run):
    shares = benchmark.pedantic(
        evolution.relative_daily_rates,
        args=(evolution_run.logs,),
        rounds=1,
        iterations=1,
    )
    text = report.render_figure1b(shares)
    record_artifact("fig1b", text)

    def mean_share(ca, start, end):
        days = [d for d in shares if start <= d <= end]
        return sum(shares[d].get(ca, 0.0) for d in days) / max(1, len(days))

    # 2016-2017: DigiCert dominates the daily rate.
    assert mean_share("DigiCert", date(2016, 1, 1), date(2017, 12, 31)) > 0.4
    # April 2018: Let's Encrypt dominates.
    le_april = mean_share("Let's Encrypt", date(2018, 4, 1), date(2018, 4, 30))
    assert le_april > 0.45
    assert le_april > mean_share("DigiCert", date(2018, 4, 1), date(2018, 4, 30))
    # StartCom disappears after its distrust (no share after 2017-11).
    assert mean_share("StartCom", date(2018, 1, 1), date(2018, 4, 30)) == 0.0
    # Irregularity: Comodo's day-to-day share fluctuates strongly.
    comodo = [shares[d].get("Comodo", 0.0)
              for d in sorted(shares) if date(2016, 6, 1) <= d <= date(2017, 6, 1)]
    assert max(comodo) > 4 * (sum(comodo) / len(comodo))
