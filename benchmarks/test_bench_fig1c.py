"""Figure 1c — distribution of precertificate logging by CA over logs
(April 2018).

Paper shape targets: the CA x log matrix is *very sparsely populated*;
besides Google logs, the Cloudflare Nimbus log carries Let's Encrypt's
main load (leading to its overload incident); the five big CAs publish
only to a small selection of logs.
"""

from conftest import record_artifact

from repro.core import evolution, report


def test_bench_fig1c(benchmark, evolution_run):
    matrix = benchmark.pedantic(
        evolution.ca_log_matrix,
        args=(evolution_run.logs, "2018-04"),
        rounds=1,
        iterations=1,
    )
    text = report.render_figure1c(matrix)
    load = evolution.log_load_report(evolution_run.logs, "2018-04")
    plan = evolution.rebalancing_plan(evolution_run.logs, "2018-04")
    rebalance = (
        "The paper's recommendation, quantified — even spread across "
        "qualified logs:\n"
        f"  load Gini {plan.gini_before:.2f} -> {plan.gini_after:.2f} "
        f"({plan.gini_reduction:.0%} reduction), "
        f"top-log share {plan.top_share_before:.1%} -> {plan.top_share_after:.1%}"
    )
    record_artifact(
        "fig1c", text + "\n\n" + report.render_log_load(load) + "\n\n" + rebalance
    )

    # Sparsity: well under half the cells are populated.
    assert matrix.density() < 0.45
    # Nimbus2018's load comes almost entirely from Let's Encrypt.
    nimbus = "Cloudflare Nimbus2018 Log"
    assert matrix.get("Let's Encrypt", nimbus) / matrix.col_total(nimbus) > 0.9
    # Nimbus is among the top-3 loaded logs in April.
    top_logs = matrix.cols()[:3]
    assert nimbus in top_logs
    # Each big CA touches only a handful of the 15+ logs.
    for ca in ("Let's Encrypt", "DigiCert", "Comodo", "GlobalSign", "Symantec"):
        used = sum(1 for log in matrix.cols() if matrix.get(ca, log) > 0)
        assert used <= 8, (ca, used)
    # The concentration the paper warns about, and the overload it caused.
    assert load.gini_coefficient > 0.5
    assert "Cloudflare Nimbus2018 Log" in load.overloaded_logs
    # Top-5 CA share of April precerts: paper reports 99 %.
    assert evolution.top_ca_share(evolution_run.logs, "2018-04") > 0.97
