"""Figure 2 — percent of daily connections containing an SCT.

Paper shape targets: the share is roughly constant over the year
(~32 % total, ~21 % via certificate, ~11 % via TLS extension), with
occasional peaks caused by graph.facebook.com traffic, and no upward
jump right after the April 2018 Chrome enforcement date.
"""

from datetime import date

from conftest import record_artifact

from repro.core import adoption, report


def test_bench_fig2(benchmark, traffic_stats):
    days, series = benchmark.pedantic(
        adoption.figure2_series, args=(traffic_stats,), rounds=1, iterations=1
    )
    record_artifact("fig2", report.render_figure2(traffic_stats))

    assert days[0] == date(2017, 4, 26)
    assert days[-1] == date(2018, 5, 23)

    def mean(values):
        return sum(values) / len(values)

    assert abs(mean(series["Total_SCT"]) - 32.6) < 3.5
    assert abs(mean(series["SCT_in_Cert"]) - 21.4) < 2.5
    assert abs(mean(series["SCT_in_TLS"]) - 11.2) < 2.0

    # Roughly constant: April-May 2018 mean within a few points of the
    # 2017 mean (no enforcement jump).
    early = [v for d, v in zip(days, series["Total_SCT"]) if d < date(2017, 8, 1)]
    late = [v for d, v in zip(days, series["Total_SCT"]) if d > date(2018, 4, 18)]
    assert abs(mean(early) - mean(late)) < 6.0

    # The facebook peaks are present and pronounced.
    peaks = adoption.peak_days(traffic_stats, threshold_percent=45.0)
    assert len(peaks) >= 4
    assert date(2018, 5, 2) in peaks


def test_bench_fig2_projection(benchmark, traffic_stats):
    """The paper's forward-looking claim: adoption will rise with
    gradual certificate replacement after enforcement."""
    from repro.core.projection import project_adoption, render_projection

    share_at_enforcement = traffic_stats.share("with_any_sct")
    projection = benchmark.pedantic(
        project_adoption, args=(share_at_enforcement,), rounds=1, iterations=1
    )
    record_artifact("fig2_projection", render_projection(projection))
    # The S-curve rises: majority CT within a year of enforcement, the
    # long tail converting as two-year certificates roll over.
    d50 = projection.date_reaching(0.5)
    assert d50 is not None and d50 < date(2019, 4, 18)
    assert projection.projected_sct_share[-1] > 0.9
