"""Verifiable light-weight monitoring vs replay, over real HTTP.

Two equal-coverage monitor swarms track the same growing served log:

* **lightweight** — :class:`repro.ct.monitor.LightweightMonitor`
  members walk signed batch digests and download *only* the entry
  bodies matching their domain subscriptions (plus inclusion proofs);
* **replay** — the control population of
  :class:`repro.ct.monitor.BatchMonitor` members that download every
  entry, the cost every §5/§6-style monitor pays today.

The gates are the paper-level claim made concrete: the light-weight
swarm must move **>= 10x fewer entry bodies and bytes** over the wire
while missing **zero** subscribed-domain certificates.  A second
benchmark closes the gossip loop end to end: a seeded storm against a
split-view server must surface a gossip-detected
:class:`~repro.workloads.incidents.SplitViewIncident`.

Both workloads are deterministic (seeded subscriptions, explicit
sequencer merges, pinned clocks), so the entry-count keys in the
recorded artifacts are regression-exact; only byte/ratio/timing keys
may drift.
"""

import time

from conftest import record_artifact

from repro.ct.auditor import GossipPool, make_split_view_log
from repro.ct.log import CTLog
from repro.ct.sequencer import LogSequencer
from repro.ct.server import LogServer, SplitView
from repro.util.timeutil import utc_datetime
from repro.workloads.incidents import split_view_incidents
from repro.workloads.loadgen import (
    LoadStormConfig,
    MonitorSwarm,
    MonitorSwarmConfig,
    gossip_storm_sths,
    plan_storm,
    plan_swarm_subscriptions,
    run_storm,
)
from repro.x509 import crypto
from repro.x509.ca import CertificateAuthority, IssuanceRequest

SEED_ENTRIES = 60
GROWTH_ENTRIES = 20
SWARM = MonitorSwarmConfig(
    seed=2018, monitors=100, domains_per_monitor=2, workers=16
)
MERGE_BATCH = 10  # growth lands as two merge batches (two digests)
MIN_WIRE_RATIO = 10.0
NOW = utc_datetime(2018, 5, 1, 9, 0)


def _seeded_log(name="Bench Monitor Log", entries=SEED_ENTRIES):
    log = CTLog(
        name=name,
        operator="Repro",
        key=crypto.KeyPair.generate(name.lower().replace(" ", "-"), 256),
    )
    ca = CertificateAuthority("Bench Monitor CA", key_bits=256)
    for index in range(entries):
        ca.issue(
            IssuanceRequest((f"site{index}.bench.example",)), [log], NOW
        )
    return log


def _growth_precerts(count):
    """Fresh precertificates reusing seeded names (new certs, same domains)."""
    ca = CertificateAuthority("Bench Growth CA", key_bits=256)
    scratch = CTLog(
        name="bench-monitor-scratch",
        operator="Repro",
        key=crypto.KeyPair.generate("bench-monitor-scratch", 256),
    )
    pairs = [
        ca.issue(
            IssuanceRequest((f"site{index}.bench.example",)), [scratch], NOW
        )
        for index in range(count)
    ]
    return [pair.precertificate for pair in pairs], ca.issuer_key_hash


def test_bench_lightweight_swarm_wire_efficiency():
    log = _seeded_log()
    domain_pool = [
        name for entry in log.entries
        for name in entry.certificate.dns_names()
    ]
    subscriptions = plan_swarm_subscriptions(SWARM, domain_pool)
    sequencer = LogSequencer(log, max_batch=MERGE_BATCH)

    started = time.perf_counter()
    with LogServer(sequencer) as server:
        url = server.log_url(log.name)
        light = MonitorSwarm(
            url, log.name, subscriptions, mode="lightweight",
            key=log.key, workers=SWARM.workers,
            page_size=SWARM.page_size,
        )
        replay = MonitorSwarm(
            url, log.name, subscriptions, mode="replay",
            workers=SWARM.workers, page_size=SWARM.page_size,
        )
        # Round 1: both swarms catch up on the seeded tree.
        matched_light = light.poll(utc_datetime(2018, 5, 1, 10, 0))
        matched_replay = replay.poll(utc_datetime(2018, 5, 1, 10, 0))
        # The log grows by two explicit merge batches …
        precerts, issuer_key_hash = _growth_precerts(GROWTH_ENTRIES)
        for precert in precerts:
            sequencer.submit_pre_chain(precert, issuer_key_hash)
        merge_results = sequencer.run_merges(
            GROWTH_ENTRIES, utc_datetime(2018, 5, 1, 11, 0)
        )
        merges = len(merge_results)
        assert merges == GROWTH_ENTRIES // MERGE_BATCH
        # … and round 2 tracks the growth.
        matched_light += light.poll(utc_datetime(2018, 5, 1, 12, 0))
        matched_replay += replay.poll(utc_datetime(2018, 5, 1, 12, 0))
    wall = time.perf_counter() - started

    light_wire = light.wire_totals()
    replay_wire = replay.wire_totals()
    tree_size = SEED_ENTRIES + GROWTH_ENTRIES
    assert log.size == tree_size

    # Zero-miss: every subscribed-domain entry reached its subscriber,
    # in both populations, and every proof verified.
    assert light.missed_subscribed(log) == 0
    assert replay.missed_subscribed(log) == 0
    assert light.findings() == []
    assert matched_light == matched_replay

    # The control population replays everything; the light-weight one
    # downloads only what it subscribed to — >= 10x cheaper on entry
    # bodies and on raw bytes (these ratios are workload-determined,
    # not machine-dependent, so they gate in every mode).
    assert replay_wire["entries"] == SWARM.monitors * tree_size
    entries_ratio = replay_wire["entries"] / max(1, light_wire["entries"])
    bytes_ratio = replay_wire["bytes"] / max(1, light_wire["bytes"])
    assert entries_ratio >= MIN_WIRE_RATIO, (
        f"light-weight swarm fetched {light_wire['entries']} entry bodies "
        f"vs replay's {replay_wire['entries']} — only "
        f"{entries_ratio:.1f}x better, needs >= {MIN_WIRE_RATIO:.0f}x"
    )
    assert bytes_ratio >= MIN_WIRE_RATIO, (
        f"light-weight swarm moved {light_wire['bytes']} bytes vs replay's "
        f"{replay_wire['bytes']} — only {bytes_ratio:.1f}x better, "
        f"needs >= {MIN_WIRE_RATIO:.0f}x"
    )

    lines = [
        f"Light-weight monitor swarm — {SWARM.monitors} monitors x "
        f"{SWARM.domains_per_monitor} domains over a {tree_size}-entry "
        f"served log ({SEED_ENTRIES} seeded + {GROWTH_ENTRIES} merged), "
        f"{wall:.2f}s wall",
        f"  lightweight  {light_wire['entries']:6d} entry bodies  "
        f"{light_wire['bytes']:10d} bytes  "
        f"{light_wire['requests']:6d} requests",
        f"  replay       {replay_wire['entries']:6d} entry bodies  "
        f"{replay_wire['bytes']:10d} bytes  "
        f"{replay_wire['requests']:6d} requests",
        f"  efficiency   {entries_ratio:.1f}x fewer bodies, "
        f"{bytes_ratio:.1f}x fewer bytes, {matched_light} matches, "
        f"0 missed, 0 findings",
        f"  gates        >= {MIN_WIRE_RATIO:.0f}x on entries and bytes, "
        f"zero subscribed-domain misses",
    ]
    record_artifact(
        "monitor_swarm",
        "\n".join(lines),
        data={
            "monitors": SWARM.monitors,
            "domains_per_monitor": SWARM.domains_per_monitor,
            "seed_entries": SEED_ENTRIES,
            "growth_entries": GROWTH_ENTRIES,
            "tree_size": tree_size,
            "merge_batches": merges,
            "matched_observations": matched_light,
            "missed_subscribed": 0,
            "findings": 0,
            "light_entries": light_wire["entries"],
            "replay_entries": replay_wire["entries"],
            "light_bytes": light_wire["bytes"],
            "replay_bytes": replay_wire["bytes"],
            "light_requests": light_wire["requests"],
            "replay_requests": replay_wire["requests"],
            "entries_ratio": entries_ratio,
            "bytes_ratio": bytes_ratio,
            "wall_seconds": wall,
            "gate_min_wire_ratio": MIN_WIRE_RATIO,
        },
    )


GOSSIP_CONFIG = LoadStormConfig(
    seed=2018,
    browsers=8,
    monitors=3,
    submitters=0,
    audits_per_browser=4,
    pages_per_monitor=4,
    page_size=8,
)


def test_bench_storm_gossip_detects_split_view():
    log = _seeded_log(name="Bench Gossip Log", entries=24)
    twin = make_split_view_log(log, fork_at=log.size // 2, pad_to=log.size)
    plans = plan_storm(GOSSIP_CONFIG, log)

    started = time.perf_counter()
    with LogServer(SplitView(log, twin)) as server:
        report = run_storm(
            plans,
            server.log_url(log.name),
            executor="thread",
            workers=8,
        )
    wall = time.perf_counter() - started

    # The wire stayed healthy: the equivocation is served, not broken.
    assert report.transport_errors == 0

    pool = GossipPool()
    findings = gossip_storm_sths(report, pool, log.name)
    incidents = split_view_incidents(pool)
    assert findings, "storm clients gossiping their STHs must expose the fork"
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.tree_size == log.size
    assert {incident.first_root, incident.second_root} == {
        log.tree.root().hex(), twin.tree.root().hex()
    }

    lines = [
        f"Split-view gossip under storm — {GOSSIP_CONFIG.clients} clients "
        f"against a partitioned {log.size}-entry log "
        f"(fork at {log.size // 2}), {wall:.2f}s wall",
        report.render(),
        f"  gossip       {pool.sths_gossiped} STHs pooled, "
        f"{len(incidents)} split-view incident at size "
        f"{incident.tree_size}",
        "  gates        0 transport errors, exactly 1 detected incident",
    ]
    record_artifact(
        "monitor_gossip",
        "\n".join(lines),
        data={
            "clients": GOSSIP_CONFIG.clients,
            "tree_size": log.size,
            "fork_at": log.size // 2,
            "sths_gossiped": pool.sths_gossiped,
            "split_view_incidents": len(incidents),
            "transport_errors": report.transport_errors,
            "reads_ok": report.reads_ok,
            "wall_seconds": wall,
        },
    )
