"""Serial vs sharded-parallel throughput for the hottest passes.

Times the Table 2 FQDN pass (the heaviest per-item work) serially, on
a 4-worker process pool, and on the same pool with metrics/span
instrumentation attached, at the benchmark's elevated scale.  All
three outputs must be identical; the instrumented run must stay
within ``OVERHEAD_CEILING`` of the bare parallel run.  The >= 2x
speedup bar (and the overhead bar) only applies where the hardware
can deliver it (>= 4 CPUs) and timing is meaningful (not
benchmark-smoke mode).
"""

import os
import time

from conftest import DOMAIN_SCALE, record_artifact

from repro.core import leakage
from repro.obs import MetricsRegistry, SpanTracer
from repro.pipeline import PipelineEngine, leakage_names

BENCH_WORKERS = 4
SPEEDUP_TARGET = 2.0
OVERHEAD_CEILING = 0.05


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_bench_pipeline_table2(domain_corpus, request):
    names = domain_corpus.ct_fqdns
    psl = domain_corpus.psl

    serial_stats, serial_seconds = _timed(
        lambda: leakage.analyze_names(names, psl)
    )
    shard_size = max(1, len(names) // (BENCH_WORKERS * 4))
    engine = PipelineEngine(workers=BENCH_WORKERS, shard_size=shard_size)
    parallel_stats, parallel_seconds = _timed(
        lambda: leakage_names(names, engine, psl)
    )

    registry = MetricsRegistry()
    instrumented = PipelineEngine(
        workers=BENCH_WORKERS,
        shard_size=shard_size,
        metrics=registry,
        tracer=SpanTracer(),
    )
    instrumented_stats, instrumented_seconds = _timed(
        lambda: leakage_names(names, instrumented, psl)
    )
    snapshot = registry.snapshot()

    # The point of the exercise: sharding must not change a single bit —
    # and neither must turning the instrumentation on.
    assert parallel_stats == serial_stats
    assert parallel_stats.top_labels(20) == serial_stats.top_labels(20)
    assert instrumented_stats == serial_stats
    assert snapshot.counter("pipeline.shards_completed") == snapshot.counter(
        "pipeline.shards_planned"
    )

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    overhead = (
        instrumented_seconds / parallel_seconds - 1.0
        if parallel_seconds
        else 0.0
    )
    lines = [
        "Pipeline throughput — Table 2 FQDN pass "
        f"(scale 1:{int(1 / DOMAIN_SCALE)}, {len(names)} names, "
        f"{os.cpu_count()} CPUs)",
        f"  serial            {serial_seconds:8.3f} s   "
        f"{len(names) / serial_seconds:10.0f} names/s",
        f"  {BENCH_WORKERS} workers         {parallel_seconds:8.3f} s   "
        f"{len(names) / parallel_seconds:10.0f} names/s",
        f"  + metrics/spans   {instrumented_seconds:8.3f} s   "
        f"({overhead:+.1%} overhead)",
        f"  speedup           {speedup:8.2f}x",
        f"  outputs identical: {parallel_stats == serial_stats}",
    ]
    record_artifact(
        "pipeline",
        "\n".join(lines),
        data={
            "names": len(names),
            "workers": BENCH_WORKERS,
            "shard_size": shard_size,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "instrumented_seconds": instrumented_seconds,
            "speedup": speedup,
            "instrumentation_overhead": overhead,
            "metrics": snapshot.to_dict(),
        },
    )

    smoke = request.config.getoption("--benchmark-disable", default=False)
    cpus = os.cpu_count() or 1
    if cpus >= BENCH_WORKERS and not smoke:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x with {BENCH_WORKERS} workers "
            f"on {cpus} CPUs, measured {speedup:.2f}x"
        )
        assert overhead < OVERHEAD_CEILING, (
            f"instrumentation cost {overhead:.1%} exceeds the "
            f"{OVERHEAD_CEILING:.0%} ceiling"
        )


def test_bench_pipeline_checkpoint_resume(tmp_path, fresh_harvest_log):
    """Resuming from a checkpoint re-runs zero shards."""
    from repro.ct.storage import dump_log
    from repro.pipeline import analyze_harvest_names

    path = tmp_path / "harvest.jsonl"
    dump_log(fresh_harvest_log, path)
    engine = PipelineEngine(workers=2, shard_size=8)

    _, cold_seconds = _timed(
        lambda: analyze_harvest_names(path, engine, checkpoint=True)
    )
    registry = MetricsRegistry()
    warm_engine = PipelineEngine(workers=2, shard_size=8, metrics=registry)
    resumed, warm_seconds = _timed(
        lambda: analyze_harvest_names(path, warm_engine, checkpoint=True)
    )
    assert resumed == analyze_harvest_names(path)
    snapshot = registry.snapshot()
    hit_rate = snapshot.gauge("pipeline.checkpoint_hit_rate")
    assert hit_rate == 1.0  # every shard came from the sidecar
    record_artifact(
        "pipeline_checkpoint",
        "Checkpointed harvest re-analysis\n"
        f"  cold run   {cold_seconds:8.3f} s\n"
        f"  resumed    {warm_seconds:8.3f} s "
        f"(checkpoint hit rate {hit_rate:.0%})",
        data={
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "checkpoint_hit_rate": hit_rate,
            "metrics": snapshot.to_dict(),
        },
    )
