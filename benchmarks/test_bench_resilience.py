"""Cost of fault tolerance: flaky harvesting vs the fault-free run.

Runs the live-log FQDN pass three ways over the same 40-entry log:
fault-free, through a seeded :class:`FlakyLog` failing 20% of fetches
under a retry budget (output must stay bit-identical), and degraded
(tail shards permanently dead, run completes with a report).  The
artifact records the retry/degradation overhead.
"""

import time

from conftest import record_artifact

from repro.core import leakage
from repro.pipeline import PipelineEngine, analyze_log_names
from repro.pipeline.harvest import log_entry_names
from repro.resilience import DegradedResult, FlakyLog, RetryPolicy
from repro.util.rng import SeededRng

SHARD_SIZE = 8
FAILURE_RATE = 0.2


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _dead_tail(method, args):
    """Permanently fail fetches in the last two shards (index >= 24)."""
    return method == "get_entries" and args[0] >= 24


def test_bench_degraded_harvest(fresh_harvest_log):
    log = fresh_harvest_log
    retry = RetryPolicy(max_attempts=4, base_delay_s=0.0)

    baseline, clean_seconds = _timed(
        lambda: analyze_log_names(
            log, PipelineEngine(workers=1, shard_size=SHARD_SIZE)
        )
    )

    flaky = FlakyLog(
        log,
        SeededRng(17, "bench-faults"),
        failure_rate=FAILURE_RATE,
        max_consecutive=2,
        methods=("get_entries",),
    )
    retried, flaky_seconds = _timed(
        lambda: analyze_log_names(
            flaky,
            PipelineEngine(workers=1, shard_size=SHARD_SIZE, retry=retry),
        )
    )
    assert retried == baseline  # faults + retries change nothing
    assert flaky.faults_injected > 0

    dead = FlakyLog(
        log, SeededRng(18, "bench-dead"), failure_rate=0.0,
        fail_when=_dead_tail,
    )
    degraded, degraded_seconds = _timed(
        lambda: analyze_log_names(
            dead,
            PipelineEngine(
                workers=1,
                shard_size=SHARD_SIZE,
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
                on_error="degrade",
            ),
        )
    )
    assert isinstance(degraded, DegradedResult)
    assert degraded.report.failed_indices == [3, 4]
    assert degraded.value == leakage.analyze_names(
        log_entry_names(log, 0, 24)
    )

    overhead = flaky_seconds / clean_seconds if clean_seconds else 0.0
    lines = [
        f"Fault-tolerant harvest — live-log FQDN pass ({log.size} entries, "
        f"shard size {SHARD_SIZE})",
        f"  fault-free        {clean_seconds * 1e3:8.2f} ms",
        f"  {FAILURE_RATE:.0%} flaky + retry  {flaky_seconds * 1e3:8.2f} ms   "
        f"({flaky.faults_injected} faults injected, {overhead:.2f}x)",
        f"  degraded tail     {degraded_seconds * 1e3:8.2f} ms   "
        f"({degraded.report.summary()})",
        f"  retried output identical: {retried == baseline}",
    ]
    record_artifact(
        "resilience",
        "\n".join(lines),
        data={
            "entries": log.size,
            "shard_size": SHARD_SIZE,
            "failure_rate": FAILURE_RATE,
            "clean_seconds": clean_seconds,
            "flaky_seconds": flaky_seconds,
            "degraded_seconds": degraded_seconds,
            "faults_injected": flaky.faults_injected,
            "failed_shards": degraded.report.failed_indices,
            "degraded_retries": degraded.report.retries,
        },
    )
