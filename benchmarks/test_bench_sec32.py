"""Section 3.2 — aggregate CT adoption in passive traffic.

Paper targets: 26.5G connections; 32.61 % with any SCT; 21.40 % via
certificate; 11.21 % via TLS extension; ~2M via stapled OCSP; rare
channel overlaps (30.8K cert+TLS, 29 cert+OCSP, 1.5M TLS+OCSP);
66.76 % of clients signal SCT support.
"""

import pytest
from conftest import record_artifact

from repro.core import report


def test_bench_sec32(benchmark, traffic_stats):
    text = benchmark.pedantic(
        report.render_section32, args=(traffic_stats,), rounds=1, iterations=1
    )
    record_artifact("sec32", text)

    stats = traffic_stats
    assert stats.total == pytest.approx(26.5e9, rel=0.02)
    assert stats.share("with_any_sct") == pytest.approx(0.3261, abs=0.01)
    assert stats.share("with_cert_sct") == pytest.approx(0.2140, abs=0.01)
    assert stats.share("with_tls_sct") == pytest.approx(0.1121, abs=0.01)
    assert stats.with_ocsp_sct == pytest.approx(2e6, rel=0.5)
    assert stats.share("client_support") == pytest.approx(0.6676, abs=0.01)

    # Channel overlaps: rare, in the paper's order of magnitude.
    assert stats.overlap_cert_tls == pytest.approx(30_800, rel=0.5)
    assert stats.overlap_cert_ocsp <= 100  # paper: 29 connections
    assert stats.overlap_tls_ocsp == pytest.approx(1.5e6, rel=0.5)
    # TLS+OCSP overlap is far more common than cert+OCSP, as observed.
    assert stats.overlap_tls_ocsp > 100 * stats.overlap_cert_ocsp
