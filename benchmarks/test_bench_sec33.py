"""Section 3.3 — server-side CT support from the active scan.

Paper targets: 68.7 % of 42.8M unique certificates carry an embedded
SCT; ~336k certs send one via TLS extension, ~1.2k via stapled OCSP;
3.7M IPs serve an SCT with ~12-fold SNI multiplexing; the per-cert
log distribution is led by Cloudflare Nimbus2018 (74 %) and Google
Icarus (71 %) — the inverse of the traffic view.
"""

import pytest
from conftest import HOSTING_SCALE, record_artifact

from repro.core import report, serversupport


def test_bench_sec33(benchmark, hosting_scan, traffic_stats):
    stats = hosting_scan
    text = benchmark.pedantic(
        report.render_section33,
        args=(stats,),
        kwargs={"weight": 1.0 / HOSTING_SCALE},
        rounds=1,
        iterations=1,
    )
    record_artifact("sec33", text)

    assert stats.embedded_share == pytest.approx(0.687, abs=0.015)
    assert stats.unique_certificates * (1 / HOSTING_SCALE) == pytest.approx(
        42.8e6, rel=0.05
    )
    assert stats.certs_with_tls_ext_sct > 0
    assert stats.certs_with_ocsp_sct > 0
    assert stats.certs_per_sct_ip == pytest.approx(12.0, abs=1.5)

    shares = stats.per_cert_log_shares
    assert shares["Cloudflare Nimbus2018 Log"] == pytest.approx(0.74, abs=0.05)
    assert shares["Google Icarus log"] == pytest.approx(0.71, abs=0.05)
    assert shares["Google Rocketeer log"] == pytest.approx(0.19, abs=0.05)
    assert shares["Comodo Sabre CT log"] == pytest.approx(0.125, abs=0.04)

    # The paper's punchline: traffic view vs certificate-population view.
    cert_total = sum(traffic_stats.cert_log_observations.values())
    traffic_shares = {
        name: count / cert_total
        for name, count in traffic_stats.cert_log_observations.items()
    }
    contrast = serversupport.passive_vs_active_contrast(traffic_shares, stats)
    lines = ["Passive (per-connection) vs active (per-certificate) log shares:"]
    for name, in_traffic, in_certs in contrast[:6]:
        lines.append(f"  {name:30s} traffic {in_traffic*100:6.2f}%   certs {in_certs*100:6.2f}%")
    record_artifact("sec33_contrast", "\n".join(lines))
    nimbus = next(row for row in contrast if "Nimbus2018" in row[0])
    assert nimbus[2] > 0.5 and nimbus[1] < 0.01
