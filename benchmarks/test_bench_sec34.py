"""Section 3.4 — certificates with invalid embedded SCTs.

Paper targets: 16 certificates from 4 CAs; TeliaSonera (1, reused SCT
from a re-issuance), GlobalSign (12, SAN reorder with mixed DNS/IP),
D-Trust (2, extension-order change), NetLock (1, different SANs and
issuer).
"""

from conftest import record_artifact

from repro.core import misissuance, report
from repro.workloads.incidents import MisissuanceWorkload


def test_bench_sec34(benchmark):
    corpus = MisissuanceWorkload(healthy_certificates=400, seed=34).build()

    audit = benchmark.pedantic(
        misissuance.audit_certificates,
        args=(
            [pair.final_certificate for pair in corpus.pairs],
            corpus.issuer_key_hashes(),
            corpus.logs,
        ),
        rounds=1,
        iterations=1,
    )
    record_artifact("sec34", report.render_section34(audit))

    assert audit.invalid_certificate_count == 16
    assert audit.affected_cas == ["D-Trust", "GlobalSign", "NetLock", "TeliaSonera"]
    by_ca = {ca: len(findings) for ca, findings in audit.by_ca().items()}
    assert by_ca == {
        "TeliaSonera": 1,
        "GlobalSign": 12,
        "D-Trust": 2,
        "NetLock": 1,
    }
    # Every GlobalSign incident involved mixed DNS+IP SANs.
    for finding in audit.by_ca()["GlobalSign"]:
        assert finding.certificate.ip_addresses()
        assert "SAN entry order" in finding.root_cause[0]
    # No false positives among the healthy population.
    found = {(f.ca_name, f.certificate.serial) for f in audit.findings}
    assert found == set(corpus.injected)
