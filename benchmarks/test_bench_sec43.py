"""Section 4.3 — constructing and verifying FQDNs from CT data.

Paper targets: subbrute/dnsrecon wordlists cover almost nothing of the
CT label population (16 of 101k, 12 of 1.9k); the construction keeps
only labels with >= 100k occurrences and each label's top-10 suffixes
(excluding com/net/org); verification with massdns + pseudorandom
controls + routing-table filtering yields 80.3M answers, 61.5M control
answers, 18.8M genuine discoveries (38.1 % / 29.2 % / 8.9 % of the
210.7M candidates), of which 17.7M (94 %) are unknown to Sonar.
"""

import pytest
from conftest import ENUM_DOMAIN_SCALE, record_artifact

from repro.core import enumeration, leakage, report
from repro.workloads.wordlists import dnsrecon_wordlist, subbrute_wordlist


def test_bench_sec43(benchmark, enum_corpus):
    stats = leakage.analyze_names(enum_corpus.ct_fqdns, enum_corpus.psl)

    # Wordlist comparison (the paper's motivation for CT-driven recon).
    subbrute = subbrute_wordlist(stats.label_counts)
    dnsrecon = dnsrecon_wordlist(stats.label_counts)
    sb_overlap = len(leakage.wordlist_overlap(subbrute, stats))
    dr_overlap = len(leakage.wordlist_overlap(dnsrecon, stats))
    assert sb_overlap == 16
    assert dr_overlap == 12

    def run():
        return enumeration.run_enumeration_experiment(
            stats, enum_corpus, seed=99, with_ablations=False
        )

    plan, truth, result = benchmark.pedantic(run, rounds=1, iterations=1)
    header = (
        f"wordlist coverage: subbrute {sb_overlap}/{len(subbrute)} labels in CT "
        f"(paper 16/101k), dnsrecon {dr_overlap}/{len(dnsrecon)} (paper 12/1.9k)\n"
    )
    record_artifact(
        "sec43", header + report.render_section43(result, ENUM_DOMAIN_SCALE)
    )

    # All Table 2 labels pass the >=100k filter; tail labels do not.
    assert len(result.eligible_labels) == 20
    assert "ftp" not in result.eligible_labels

    # Verification rates land on the paper's.
    assert result.rate("answered") == pytest.approx(0.381, abs=0.03)
    assert result.rate("control_answered") == pytest.approx(0.292, abs=0.03)
    assert result.rate("discovered") == pytest.approx(0.089, abs=0.015)

    # Discovery arithmetic holds and Sonar knows almost none of it.
    assert result.answered - result.control_answered == pytest.approx(
        result.discovered, rel=0.25
    )
    assert result.new_unknown / result.discovered > 0.88  # paper: 94 %
