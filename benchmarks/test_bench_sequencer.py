"""Batched write pipeline throughput: the MMD sequencer under storm.

Same seeded client population as ``test_bench_server.py``, but the
server mounts the log behind a :class:`repro.ct.sequencer.LogSequencer`
(``merge_interval`` background merges, batched Merkle appends).  The
write path no longer holds the read lock across RSA signing or
per-entry tree updates, so accepted submissions/sec must clear **twice
the per-entry baseline's committed floor** while read p99 stays under
the same ceiling — and the batching must be real: fewer merges than
submissions, every SCT's leaf proven included after the storm.

Submitters keep ``await_inclusion`` on here: the recorded artifact
reports SCT latency (time-to-promise) separately from merge lag
(time-to-inclusion), the split that defines MMD semantics.
"""

from conftest import record_artifact

from repro.ct.log import CTLog
from repro.ct.server import LogServer
from repro.util.timeutil import utc_datetime
from repro.workloads.loadgen import LoadStormConfig, plan_storm, run_storm
from repro.x509 import crypto
from repro.x509.ca import CertificateAuthority, IssuanceRequest

SEED_ENTRIES = 48
#: Same reader population as the per-entry benchmark, but a heavier
#: submission burst: the batched pipeline's whole point is sustaining
#: write volume (Section 2's storm) without starving readers.
CONFIG = LoadStormConfig(
    seed=2018,
    browsers=8,
    monitors=3,
    submitters=4,
    audits_per_browser=10,
    pages_per_monitor=8,
    page_size=8,
    submissions_per_submitter=24,
    await_inclusion=True,
)
WORKERS = 8
MERGE_INTERVAL_S = 0.02
MAX_BATCH = 512

#: The per-entry baseline gates >= 20 accepted submissions/sec
#: (test_bench_server.py); the batched pipeline must double it.
PER_ENTRY_BASELINE_SUBS_PER_SEC = 20.0
MIN_SUBMISSIONS_PER_SEC = 2.0 * PER_ENTRY_BASELINE_SUBS_PER_SEC
MAX_READ_P99_S = 2.0


def _seeded_log():
    log = CTLog(
        name="Bench Batched Log",
        operator="Repro",
        key=crypto.KeyPair.generate("bench-batched-log", 256),
    )
    ca = CertificateAuthority("Bench Batch CA", key_bits=256)
    now = utc_datetime(2018, 5, 1, 9, 0)
    for index in range(SEED_ENTRIES):
        ca.issue(
            IssuanceRequest(
                (f"seed{index}.batch.example", f"www.seed{index}.batch.example")
            ),
            [log],
            now,
        )
    return log


def test_bench_batched_write_pipeline(request):
    log = _seeded_log()
    plans = plan_storm(CONFIG, log)
    with LogServer(
        log, merge_interval=MERGE_INTERVAL_S, max_batch=MAX_BATCH
    ) as server:
        report = run_storm(
            plans,
            server.log_url(log.name),
            executor="thread",
            workers=WORKERS,
        )
        server.drain_writes()
        stats = server.sequencer_stats()[next(iter(server.slugs))]

    # Correctness invariants hold in every mode: every submission was
    # accepted, every read verified, and every submitter saw all of its
    # leaves merged and proven included before giving up.
    assert report.transport_errors == 0
    assert report.verification_failures == 0
    assert report.submissions_ok == CONFIG.planned_submissions
    assert report.inclusions_verified == CONFIG.submitters
    assert log.size == SEED_ENTRIES + CONFIG.planned_submissions

    # The batching must be real, not per-entry merges in disguise.
    assert stats["entries_merged"] == CONFIG.planned_submissions
    assert stats["merges"] < CONFIG.planned_submissions
    assert stats["max_batch_merged"] >= 2
    assert stats["pending"] == 0 and stats["queued"] == 0

    smoke = request.config.getoption("--benchmark-disable", default=False)
    if not smoke:
        assert report.submissions_per_sec >= MIN_SUBMISSIONS_PER_SEC, (
            f"batched path sustained {report.submissions_per_sec:.1f} "
            f"submissions/s — under 2x the per-entry baseline floor "
            f"({MIN_SUBMISSIONS_PER_SEC:.0f}/s)"
        )
        assert report.read_p99 < MAX_READ_P99_S, (
            f"read p99 {report.read_p99:.3f}s exceeds the "
            f"{MAX_READ_P99_S:.1f}s ceiling during the write storm"
        )

    lines = [
        f"Batched write pipeline under storm — {CONFIG.clients} clients "
        f"({CONFIG.browsers} browsers, {CONFIG.monitors} monitors, "
        f"{CONFIG.submitters} submitters), {SEED_ENTRIES}-entry seed, "
        f"merges every {MERGE_INTERVAL_S * 1e3:.0f} ms",
        report.render(),
        f"  sequencer    {stats['merges']:.0f} merges, "
        f"max batch {stats['max_batch_merged']:.0f}, "
        f"{stats['dedup_hits']:.0f} dedup hits",
        f"  gates        >= {MIN_SUBMISSIONS_PER_SEC:.0f} subs/s "
        f"(2x per-entry floor), p99 < {MAX_READ_P99_S:.1f}s",
    ]
    record_artifact(
        "server_batched",
        "\n".join(lines),
        data={
            "clients": CONFIG.clients,
            "seed_entries": SEED_ENTRIES,
            "workers": WORKERS,
            "merge_interval_s": MERGE_INTERVAL_S,
            "max_batch": MAX_BATCH,
            "reads_ok": report.reads_ok,
            "reads_per_sec": report.reads_per_sec,
            "read_p50_s": report.read_p50,
            "read_p99_s": report.read_p99,
            "submissions_ok": report.submissions_ok,
            "submissions_per_sec": report.submissions_per_sec,
            "sct_p50_s": report.sct_p50,
            "sct_p99_s": report.sct_p99,
            "merge_lag_max_s": report.merge_lag_max_s,
            "merge_lag_mean_s": report.merge_lag_mean_s,
            "inclusions_verified": report.inclusions_verified,
            "merge_count": stats["merges"],
            "max_batch_merged": stats["max_batch_merged"],
            "gate_min_submissions_per_sec": MIN_SUBMISSIONS_PER_SEC,
            "gate_max_read_p99_s": MAX_READ_P99_S,
        },
    )
