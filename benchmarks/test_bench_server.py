"""Served-log throughput and latency under a seeded client storm.

Boots a real :class:`repro.ct.server.LogServer` on an ephemeral port,
seeds it with precertificates, and drives the deterministic
:mod:`repro.workloads.loadgen` population over real sockets: auditing
browsers, tailing monitors, and bursty CA submitters racing on a
thread pool.  Two gates (hard outside smoke mode):

* sustained accepted submissions/sec >= ``MIN_SUBMISSIONS_PER_SEC``;
* read p99 latency < ``MAX_READ_P99_S``.

Both thresholds are deliberately loose for shared CI runners — the
gate exists to catch order-of-magnitude regressions (an accidental
per-request tree rebuild, a lock held across a socket write), not to
benchmark the host.  The artifact also records the server's STH/proof
memo hit rate, which must be doing real work under a read-heavy storm.
"""

from conftest import record_artifact

from repro.ct.log import CTLog
from repro.ct.server import LogServer
from repro.util.timeutil import utc_datetime
from repro.workloads.loadgen import LoadStormConfig, plan_storm, run_storm
from repro.x509 import crypto
from repro.x509.ca import CertificateAuthority, IssuanceRequest

SEED_ENTRIES = 48
CONFIG = LoadStormConfig(
    seed=2018,
    browsers=8,
    monitors=3,
    submitters=3,
    audits_per_browser=10,
    pages_per_monitor=8,
    page_size=8,
    submissions_per_submitter=12,
    # The per-entry write path merges synchronously; inclusion polling
    # would only re-measure request latency.  The batched pipeline's
    # benchmark (test_bench_sequencer.py) keeps it on.
    await_inclusion=False,
)
WORKERS = 8
MIN_SUBMISSIONS_PER_SEC = 20.0
MAX_READ_P99_S = 2.0
MIN_MEMO_HIT_RATE = 0.25


def _seeded_log():
    log = CTLog(
        name="Bench Served Log",
        operator="Repro",
        key=crypto.KeyPair.generate("bench-served-log", 256),
    )
    ca = CertificateAuthority("Bench Serve CA", key_bits=256)
    now = utc_datetime(2018, 5, 1, 9, 0)
    for index in range(SEED_ENTRIES):
        ca.issue(
            IssuanceRequest(
                (f"seed{index}.bench.example", f"www.seed{index}.bench.example")
            ),
            [log],
            now,
        )
    return log


def test_bench_log_server_storm(request):
    log = _seeded_log()
    plans = plan_storm(CONFIG, log)
    with LogServer(log) as server:
        report = run_storm(
            plans,
            server.log_url(log.name),
            executor="thread",
            workers=WORKERS,
        )
        memo = server.memo_stats()[next(iter(server.slugs))]

    # Correctness invariants hold in every mode: each planned request
    # completed, every proof verified, every submission was accepted.
    assert report.transport_errors == 0
    assert report.verification_failures == 0
    assert report.submissions_ok == CONFIG.planned_submissions
    assert report.reads_ok == sum(plan.reads for plan in plans)

    lookups = memo["hits"] + memo["misses"]
    hit_rate = memo["hits"] / lookups if lookups else 0.0

    smoke = request.config.getoption("--benchmark-disable", default=False)
    if not smoke:
        assert report.submissions_per_sec >= MIN_SUBMISSIONS_PER_SEC, (
            f"sustained {report.submissions_per_sec:.1f} submissions/s "
            f"under the {MIN_SUBMISSIONS_PER_SEC:.0f}/s floor"
        )
        assert report.read_p99 < MAX_READ_P99_S, (
            f"read p99 {report.read_p99:.3f}s exceeds the "
            f"{MAX_READ_P99_S:.1f}s ceiling"
        )
        assert hit_rate >= MIN_MEMO_HIT_RATE, (
            f"memo hit rate {hit_rate:.1%} under {MIN_MEMO_HIT_RATE:.0%} — "
            "the proof/STH cache is not absorbing the read storm"
        )

    lines = [
        f"Served log under storm — {CONFIG.clients} clients "
        f"({CONFIG.browsers} browsers, {CONFIG.monitors} monitors, "
        f"{CONFIG.submitters} submitters), {SEED_ENTRIES}-entry seed",
        report.render(),
        f"  memo         {memo['hits']} hits / {memo['misses']} misses "
        f"({hit_rate:.0%} hit rate)",
        f"  gates        >= {MIN_SUBMISSIONS_PER_SEC:.0f} subs/s, "
        f"p99 < {MAX_READ_P99_S:.1f}s, memo >= {MIN_MEMO_HIT_RATE:.0%}",
    ]
    record_artifact(
        "server",
        "\n".join(lines),
        data={
            "clients": CONFIG.clients,
            "seed_entries": SEED_ENTRIES,
            "workers": WORKERS,
            "reads_ok": report.reads_ok,
            "reads_per_sec": report.reads_per_sec,
            "read_p50_s": report.read_p50,
            "read_p99_s": report.read_p99,
            "submissions_ok": report.submissions_ok,
            "submissions_per_sec": report.submissions_per_sec,
            "memo_hits": memo["hits"],
            "memo_misses": memo["misses"],
            "memo_hit_rate": hit_rate,
            "gate_min_submissions_per_sec": MIN_SUBMISSIONS_PER_SEC,
            "gate_max_read_p99_s": MAX_READ_P99_S,
            "gate_min_memo_hit_rate": MIN_MEMO_HIT_RATE,
        },
    )
