"""Substrate micro-benchmarks (multi-round timing, no paper artifact).

These measure the throughput of the hot paths every experiment leans
on: Merkle operations, signature crypto, issuance, resolution, PSL
parsing, and the passive analyzer.  Useful for catching performance
regressions when extending the library.
"""


from repro.ct.merkle import MerkleTree, verify_inclusion_proof
from repro.ct.loglist import build_default_logs
from repro.dnscore.psl import default_psl
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import DnsUniverse, RecursiveResolver
from repro.dnscore.zone import Zone
from repro.util.timeutil import utc_datetime
from repro.x509.crypto import KeyPair, sign, verify
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 4, 18)


def test_bench_merkle_append(benchmark):
    leaves = [f"leaf-{i}".encode() for i in range(1_000)]

    def build():
        tree = MerkleTree()
        for leaf in leaves:
            tree.append(leaf)
        return tree.root()

    root = benchmark(build)
    assert len(root) == 32


def test_bench_merkle_inclusion_proof(benchmark):
    tree = MerkleTree()
    leaves = [f"leaf-{i}".encode() for i in range(2_048)]
    for leaf in leaves:
        tree.append(leaf)
    root = tree.root()

    def prove_and_verify():
        proof = tree.inclusion_proof(1_000)
        return verify_inclusion_proof(leaves[1_000], 1_000, 2_048, proof, root)

    assert benchmark(prove_and_verify)


def test_bench_rsa_sign(benchmark):
    key = KeyPair.generate("bench", 256)
    message = b"x" * 128
    signature = benchmark(sign, key, message)
    assert verify(key, message, signature)


def test_bench_rsa_verify(benchmark):
    key = KeyPair.generate("bench", 256)
    message = b"x" * 128
    signature = sign(key, message)
    assert benchmark(verify, key, message, signature)


def test_bench_issuance(benchmark):
    logs = build_default_logs(with_capacities=False, key_bits=256)
    chosen = [logs["Google Pilot log"], logs["Google Icarus log"]]
    ca = CertificateAuthority("Bench CA", key_bits=256)
    counter = iter(range(10_000_000))

    def issue():
        return ca.issue(
            IssuanceRequest((f"b{next(counter)}.example",)), chosen, NOW
        )

    pair = benchmark(issue)
    assert pair.final_certificate.has_embedded_scts


def test_bench_resolver(benchmark):
    universe = DnsUniverse()
    zone = Zone("bench.example")
    for i in range(1_000):
        zone.add_simple(f"h{i}.bench.example", RecordType.A, "192.0.2.1")
    universe.add_zone(zone)
    resolver = RecursiveResolver("bench", universe)
    universe.servers[0].log_queries = False

    def resolve():
        return resolver.resolve("h500.bench.example", RecordType.A, now=NOW)

    result = benchmark(resolve)
    assert result.addresses


def test_bench_psl_split(benchmark):
    psl = default_psl()

    def split():
        return psl.split("dev.api.internal.some-company.co.uk")

    labels, registrable, suffix = benchmark(split)
    assert registrable == "some-company.co.uk"


def test_bench_analyzer_throughput(benchmark):
    from repro.bro.analyzer import BroSctAnalyzer
    from repro.tls.connection import TlsConnection

    logs = build_default_logs(with_capacities=False, key_bits=256)
    ca = CertificateAuthority("Analyzer CA", key_bits=256)
    pair = ca.issue(
        IssuanceRequest(("a.example",)),
        [logs["Google Pilot log"], logs["Google Icarus log"]],
        NOW,
    )
    connections = [
        TlsConnection(
            time=NOW,
            server_name="a.example",
            server_ip="192.0.2.1",
            certificate=pair.final_certificate,
            weight=1,
        )
        for _ in range(1_000)
    ]
    analyzer = BroSctAnalyzer(logs)

    def analyze_all():
        return sum(1 for _ in analyzer.analyze_stream(connections))

    assert benchmark(analyze_all) == 1_000
