"""Table 1 — top 15 CT logs by number of observed connections.

Paper shape targets (shares of per-channel SCT observations):
Google Pilot leads the certificate channel with 28.69 %, followed by
Symantec (18.40 %) and Rocketeer (17.33 %); the TLS-extension channel
is led by Symantec (40.19 %); the Nimbus/Icarus logs that dominate the
*certificate population* (Section 3.3) are nearly invisible here.
"""

import pytest
from conftest import record_artifact

from repro.core import adoption, report

#: (log, cert-share, tls-share) from the paper's Table 1.
PAPER_TABLE1 = {
    "Google Pilot log": (0.2869, 0.2603),
    "Symantec log": (0.1840, 0.4019),
    "Google Rocketeer log": (0.1733, 0.2330),
    "DigiCert Log Server": (0.1001, 0.0),
    "Google Skydiver log": (0.0597, 0.0089),
    "Google Aviator log": (0.0594, 0.0),
    "Venafi log": (0.0558, 0.0245),
    "DigiCert Log Server 2": (0.0377, 0.0021),
    "Symantec Vega log": (0.0371, 0.0002),
    "Comodo Mammoth CT log": (0.0044, 0.0371),
}


def test_bench_table1(benchmark, traffic_stats):
    rows = benchmark.pedantic(
        adoption.table1, args=(traffic_stats,), rounds=1, iterations=1
    )
    record_artifact("table1", report.render_table1(rows))

    shares = {row.log_name: (row.cert_share, row.tls_share) for row in rows}
    for log, (paper_cert, paper_tls) in PAPER_TABLE1.items():
        sim_cert, sim_tls = shares[log]
        assert sim_cert == pytest.approx(paper_cert, abs=0.04), log
        assert sim_tls == pytest.approx(paper_tls, abs=0.04), log

    # Ranking of the top three matches the paper.
    assert [row.log_name for row in rows[:3]] == [
        "Google Pilot log", "Symantec log", "Google Rocketeer log",
    ]
    # Nimbus2018 — dominant per certificate (Section 3.3) — is a
    # rounding error per connection.
    nimbus = next(r for r in rows if "Nimbus2018" in r.log_name)
    assert nimbus.cert_share < 0.01
