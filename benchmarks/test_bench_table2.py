"""Table 2 — top 20 subdomain labels in CT-logged certificates.

Paper targets: the exact ranking www (61.1M) .. smtp (140k); the top
10 labels cover ~99 % of occurrences; per-suffix signature labels
(git/tech, autoconfig/email, api/cloud, ftp/design, sip/gov,
dialin/gov.uk); webdisk/cpanel/whm point at management interfaces.
"""

import pytest
from conftest import DOMAIN_SCALE, record_artifact

from repro.core import leakage, report
from repro.workloads.domains import TABLE2_LABEL_COUNTS


def test_bench_table2(benchmark, domain_corpus):
    stats = benchmark.pedantic(
        leakage.analyze_names,
        args=(domain_corpus.ct_fqdns, domain_corpus.psl),
        rounds=1,
        iterations=1,
    )
    extra = "\nper-suffix signature labels:\n" + "\n".join(
        f"  {suffix:8s} -> {label}"
        for suffix, label in sorted(stats.top_label_per_suffix().items())
        if suffix in ("tech", "email", "cloud", "design", "gov", "gov.uk")
    )
    record_artifact(
        "table2", report.render_table2(stats, weight=1.0 / DOMAIN_SCALE) + extra
    )

    # Exact Table 2 ranking at the reference scale.
    got = [label for label, _ in stats.top_labels(20)]
    assert got == [label for label, _ in TABLE2_LABEL_COUNTS]

    # Scaled counts match the paper's numbers.
    counts = dict(stats.top_labels(20))
    for label, real in TABLE2_LABEL_COUNTS:
        assert counts[label] * (1 / DOMAIN_SCALE) == pytest.approx(real, rel=0.02)

    # Concentration: the top-10 labels cover (nearly) everything.
    assert stats.top_k_share(10) > 0.95
    assert stats.label_share("www") > 0.5

    # Per-suffix signatures.
    tops = stats.top_label_per_suffix()
    assert tops["tech"] == "git"
    assert tops["email"] == "autoconfig"
    assert tops["cloud"] == "api"
    assert tops["design"] == "ftp"
    assert tops["gov"] == "sip"
    assert tops["gov.uk"] == "dialin"

    # Management interfaces are leaked at scale.
    management = stats.management_interface_counts()
    assert all(count > 0 for count in management.values())

    # The invalid-name filter had work to do (Section 4.1).
    assert stats.invalid_names > 0
