"""Table 3 — potential phishing domains identified in CT.

Paper targets: Apple 63k, PayPal 58k, Microsoft 4k, Google 1k,
eBay <1k (126k+ total); 2/3 of Apple phish under com/ga/info/tk/ml;
28 % of eBay phish under bid/review; 4 % of Microsoft phish under
live; plus government-taxation impersonations (ATO, HMRC, IRS).
"""

import pytest
from conftest import PHISHING_SCALE, record_artifact

from repro.core import report
from repro.core.phishdetect import PhishingDetector
from repro.workloads.phishing import PhishingWorkload

PAPER_COUNTS = {
    "Apple": 63_000,
    "PayPal": 58_000,
    "Microsoft": 4_000,
    "Google": 1_000,
    "eBay": 800,
}


def test_bench_table3(benchmark):
    corpus = PhishingWorkload(scale=PHISHING_SCALE, seed=5).build()
    detector = PhishingDetector()

    result = benchmark.pedantic(
        detector.scan, args=(corpus.names,), rounds=1, iterations=1
    )
    record_artifact("table3", report.render_table3(result, weight=1 / PHISHING_SCALE))

    # Scaled counts and ranking match the paper.
    for service, real in PAPER_COUNTS.items():
        assert result.count(service) / PHISHING_SCALE == pytest.approx(
            real, rel=0.05
        ), service
    assert [service for service, _, _ in result.table3()] == [
        "Apple", "PayPal", "Microsoft", "Google", "eBay",
    ]

    # Suffix affinities.
    apple = result.suffix_affinity("Apple")
    assert sum(apple.get(s, 0) for s in ("com", "ga", "info", "tk", "ml")) > 0.5
    ebay = result.suffix_affinity("eBay")
    assert ebay.get("bid", 0) + ebay.get("review", 0) > 0.15
    microsoft = result.suffix_affinity("Microsoft")
    assert 0 < microsoft.get("live", 0) < 0.15

    # Exclusions work: legitimate service domains and benign names are
    # never flagged.
    flagged = {n for names in result.matches.values() for n in names}
    assert not flagged & {n.lower() for n in corpus.legitimate_names}
    assert not flagged & {n.lower() for n in corpus.benign_names}

    # Government-taxation impersonations found, including the paper's
    # verbatim examples.
    assert "ato.gov.au.eng-atorefund.com" in result.government_matches
    assert "hmrc.gov.uk-refund.cf" in result.government_matches
    assert "refund.irs.gov.my-irs.com" in result.government_matches
