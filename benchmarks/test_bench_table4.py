"""Table 4 — the CT honeypot timeline.

Paper targets: first DNS queries 73 s - ~3 min after the CT log entry
for all 11 subdomains; Google (AS 15169) always queries first, with
1&1, Deteque, Petersburg Internet, and Amazon close behind; tens of
queries from 10-32 ASes and up to 7 EDNS client subnets per domain;
HTTP(S) from DigitalOcean/Amazon after ~1-2 hours (19 days and 5+
days for two domains); 169 ECS queries over 12 unique /24 subnets
(top three used 115/25/10 times); one Quasi Networks host scanning
30 ports; zero IPv6 traffic beyond the CA's validation.
"""

from conftest import record_artifact

from repro.core.honeypot import CtHoneypotExperiment, render_table4


def test_bench_table4(benchmark):
    result = benchmark.pedantic(
        lambda: CtHoneypotExperiment(seed=66).run(), rounds=1, iterations=1
    )
    rows = result.table4()
    companion = [
        "",
        f"ECS queries: {result.ecs_query_count()} over "
        f"{len(result.unique_ecs_subnets())} unique /24 subnets "
        f"(top 3: {[c for _, c in result.unique_ecs_subnets()[:3]]})",
        f"port scanners: {result.port_scanners()}",
        f"IPv6 inbound ASNs: {sorted({c.src_asn for c in result.ipv6_inbound()})} "
        "(the CA's validation only)",
    ]
    record_artifact("table4", render_table4(rows) + "\n".join(companion))

    assert len(rows) == 11

    # First DNS within the paper's 73 s - 3 min regime, every domain.
    deltas = [row.dns_delta_s for row in rows]
    assert all(60 <= delta <= 300 for delta in deltas)
    assert min(deltas) < 130

    # Google first on every domain; the follow-up set matches the cast.
    for row in rows:
        assert row.first3_asns[0] == 15169
        assert set(row.first3_asns[1:]) <= {8560, 54054, 44050, 16509, 36692}

    # Query/AS/subnet count ranges bracket the paper's (30-81 / 10-32 / 2-7).
    assert all(20 <= row.query_count <= 110 for row in rows)
    assert all(8 <= row.as_count <= 40 for row in rows)
    assert all(row.subnet_count <= 8 for row in rows)

    # HTTP(S): ~1-2 h for most domains, days for C and G, from
    # DigitalOcean and Amazon.
    by_letter = {row.letter: row for row in rows}
    for letter, row in by_letter.items():
        if letter in ("C", "G"):
            assert row.http_delta_s > 4 * 86_400
        else:
            assert 45 * 60 <= row.http_delta_s <= 3.5 * 3600
        assert 14061 in row.http_asns
        assert row.http_asns[-1] in (16509, 14618)

    # Companion findings.
    subnets = result.unique_ecs_subnets()
    assert len(subnets) == 12
    assert [count for _, count in subnets[:3]] == [115, 25, 10]
    scanners = result.port_scanners()
    assert list(scanners.values()) == [30]
    assert next(iter(scanners))[1] == 29073  # Quasi Networks
    assert {c.src_asn for c in result.ipv6_inbound()} == {64501}
