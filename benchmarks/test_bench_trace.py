"""Cost of distributed tracing on the live storm path: on vs off.

Two identical seeded storms run serially against a live
sequencer-backed :class:`~repro.ct.server.LogServer`; one bare, one
fully traced — client root spans per op, the trace context crossing
the wire in ``X-Repro-Traceparent``, server + sequencer spans, and
every span serialized into an in-memory event log.  Two gates:

* the storm's trace-independent output (op kinds, statuses, verify
  verdicts, errors) must be **byte-identical** between the runs —
  tracing observes the storm, it never changes it;
* tracing must cost < ``OVERHEAD_CEILING`` over the bare storm.

Overhead is measured in **process CPU time**, not wall clock: client
and server share one process, tracing cost is pure CPU, and on shared
CI runners wall-clock per-request latency swings far more than the
ceiling this gate enforces.  Bare and traced storms in a pair reuse
the same log name (hence the same deterministically derived key), so
signing work is identical and only tracing differs; the gate takes the
minimum ratio over up to ``MAX_REPEATS`` interleaved pairs, stopping
at the first pair under the ceiling.  Logs and CAs use the repo's
default 512-bit keys (tests shrink to 256 for speed) so per-op signing
cost is the realistic denominator.
"""

import json
import time
from datetime import timedelta

from conftest import record_artifact

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.server import LogServer
from repro.obs import EventLog, SpanTracer, TraceStore
from repro.util.timeutil import utc_datetime
from repro.workloads.loadgen import LoadStormConfig, plan_storm, run_storm
from repro.x509.ca import CertificateAuthority, IssuanceRequest

SEED = 2018
#: Upper bound on bare/traced storm pairs; the gate takes the best
#: (minimum) ratio and stops as soon as one pair lands under the
#: ceiling, so a clean machine runs a single pair.
MAX_REPEATS = 6
OVERHEAD_CEILING = 0.05


def _seeded_log(tag):
    log = CTLog(
        name=f"Trace Bench {tag}",
        operator="T",
        key=log_key(f"Trace Bench {tag}"),
    )
    ca = CertificateAuthority(f"Trace Bench CA {tag}")
    base = utc_datetime(2018, 5, 1, 12, 0)
    for i in range(4):
        ca.issue(
            IssuanceRequest((f"seed{i}.trace.example",)), [log],
            base + timedelta(minutes=i),
        )
    return log


def _stable_view(report):
    """The storm's trace-independent output, as canonical JSON."""
    return json.dumps(
        [
            {
                "client": result.name,
                "kind": result.kind,
                "errors": result.errors,
                "ops": [
                    {
                        "kind": op.kind,
                        "status": op.status,
                        "verified": op.verified,
                    }
                    for op in result.ops
                ],
            }
            for result in report.results
        ],
        sort_keys=True,
    )


def _run_storm(tag, traced):
    log = _seeded_log(tag)
    # ``await_inclusion=False``: inclusion polling races the background
    # merge worker and its sleeps would swamp the tracing signal.  The
    # timed section is pure request/response work; merges drain after.
    config = LoadStormConfig(
        seed=SEED,
        browsers=2,
        monitors=1,
        submitters=4,
        await_inclusion=False,
    )
    plans = plan_storm(config, log)
    events = EventLog(tail_size=65536) if traced else None
    tracer = (
        SpanTracer(seed=SEED, name="bench", events=events) if traced else None
    )
    with LogServer(
        log, merge_interval=60.0, events=events, tracer=tracer
    ) as server:
        started = time.process_time()
        report = run_storm(
            plans,
            server.log_url(log.name),
            executor="serial",
            trace_seed=SEED if traced else None,
        )
        spent = time.process_time() - started
        server.drain_writes()
    spans = 0
    if traced:
        for result in report.results:
            for record in result.spans:
                tracer.record_remote(record)
        store = TraceStore()
        store.add_many(tracer.to_records())
        assert store.orphan_spans() == []
        spans = len(store)
    return spent, report, spans


def test_bench_tracing_overhead(request):
    smoke = request.config.getoption("--benchmark-disable", default=False)
    runs = []
    for repeat in range(1 if smoke else MAX_REPEATS):
        # Same tag both sides: identical derived keys, identical
        # signing work — the pair differs only in tracing.
        bare_seconds, bare_report, _ = _run_storm("pair", False)
        traced_seconds, traced_report, spans = _run_storm("pair", True)
        # Tracing-off output stays byte-identical to tracing-on.
        assert _stable_view(bare_report) == _stable_view(traced_report)
        runs.append((bare_seconds, traced_seconds, spans))
        if traced_seconds / bare_seconds - 1.0 < OVERHEAD_CEILING:
            break

    # Min over repeats: shared-runner noise only ever inflates a pair.
    overhead = min(t / b - 1.0 for b, t, _ in runs)
    bare_best = min(run[0] for run in runs)
    traced_best = min(run[1] for run in runs)
    spans = runs[-1][2]

    if not smoke:
        assert overhead < OVERHEAD_CEILING, (
            f"tracing overhead {overhead:.1%} exceeds the "
            f"{OVERHEAD_CEILING:.0%} ceiling after {len(runs)} pairs"
        )

    ops = sum(len(result.ops) for result in bare_report.results)
    lines = [
        f"Distributed tracing — seed {SEED}, serial storm, {ops} ops",
        f"  tracing off  {bare_best * 1e3:8.2f} ms CPU",
        f"  tracing on   {traced_best * 1e3:8.2f} ms CPU   "
        f"({spans} spans, {overhead:+.1%})",
        f"  ceiling      {OVERHEAD_CEILING:.0%}",
    ]
    record_artifact(
        "trace",
        "\n".join(lines),
        data={
            "seed": SEED,
            "max_repeats": MAX_REPEATS,
            "ops": ops,
            "bare_seconds": bare_best,
            "traced_seconds": traced_best,
            "overhead": overhead,
            "ceiling": OVERHEAD_CEILING,
        },
    )
