#!/usr/bin/env python3
"""A CertStream-style phishing monitor built on CT logs (Section 5).

The paper notes that Facebook and CertSpotter offer notification
services for operators but keep their methods closed.  This example is
an open equivalent: a streaming monitor follows the logs, and each new
certificate's names run through the Section 5 phishing detector.

It demonstrates the same double-edged sword the paper measures — the
very mechanism defenders use here is what the honeypot (Section 6)
shows attackers using for target acquisition.

Run:  python examples/ct_phishing_monitor.py
"""

from datetime import timedelta

from repro.core.phishdetect import PhishingDetector
from repro.ct import build_default_logs
from repro.ct.monitor import StreamingMonitor
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.workloads.phishing import PhishingWorkload
from repro.x509.ca import CertificateAuthority, IssuanceRequest


def main() -> None:
    logs = build_default_logs(key_bits=256)
    log = logs["Cloudflare Nimbus2018 Log"]
    ca = CertificateAuthority("Budget CA", key_bits=256)

    # A day of issuance: mostly legitimate, some phishing registrations.
    corpus = PhishingWorkload(scale=1 / 2000, benign_count=120,
                              government_count=6).build()
    now = utc_datetime(2018, 5, 2, 8, 0)
    for index, name in enumerate(corpus.names):
        ca.issue(IssuanceRequest((name,)), [log],
                 now + timedelta(seconds=30 * index))

    # The defender's side: stream the log, classify every new name.
    monitor = StreamingMonitor("defender-stream", SeededRng(1, "monitor"))
    detector = PhishingDetector()
    alerts = []
    for obs in monitor.observe(log):
        for name in obs.dns_names:
            service = detector.classify(name)
            if service is not None:
                alerts.append((obs.observed_at, obs.latency_seconds, name, service))
            elif detector.is_government_impersonation(name):
                alerts.append((obs.observed_at, obs.latency_seconds, name, "Gov/Tax"))

    print(f"processed {log.size} log entries, raised {len(alerts)} alerts\n")
    for observed_at, latency, name, service in alerts[:12]:
        print(f"  [{observed_at:%H:%M:%S}] +{latency:5.1f}s  {service:10s} {name}")
    if len(alerts) > 12:
        print(f"  ... and {len(alerts) - 12} more")

    truth = len(corpus.truth) + len(corpus.government_names)
    benign = set(corpus.benign_names)
    false_alarms = sum(1 for _, _, name, _ in alerts if name in benign)
    print(f"\nground truth: {truth} malicious registrations; "
          f"detector flagged {len(alerts)}; "
          f"false alarms among {len(benign)} benign names: {false_alarms}")


if __name__ == "__main__":
    main()
