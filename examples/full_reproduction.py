#!/usr/bin/env python3
"""Reproduce the entire paper in one run.

Runs Sections 2-6 end to end at moderate scales (a minute or two) and
prints every table and figure in paper order.  For shape-asserted
versions of these artifacts, see the benchmark harness
(`pytest benchmarks/ --benchmark-only`).

Run:  python examples/full_reproduction.py
"""

from repro.paper import reproduce_paper


def main() -> None:
    results = reproduce_paper(seed=7, progress=True)
    print()
    print(results.render())


if __name__ == "__main__":
    main()
