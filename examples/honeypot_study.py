#!/usr/bin/env python3
"""The CT honeypot: who watches the logs? (Section 6)

Creates 11 unguessable subdomains, leaks them only through CT, and
watches the authoritative DNS server and the honeypot machines.  The
output is the paper's Table 4 plus the companion findings: EDNS Client
Subnet exposure, the Quasi Networks port scanner, and the silence on
the unique IPv6 addresses.

Run:  python examples/honeypot_study.py
"""

from repro.core.honeypot import CtHoneypotExperiment, render_table4
from repro.util.format import duration_human


def main() -> None:
    result = CtHoneypotExperiment().run()

    rows = result.table4()
    print(render_table4(rows))

    deltas = [row.dns_delta_s for row in rows if row.dns_delta_s is not None]
    print(f"\nfirst DNS query {duration_human(min(deltas))} - "
          f"{duration_human(max(deltas))} after the CT log entry: "
          "CT logs are clearly being monitored.")

    print(f"\nEDNS Client Subnet: {result.ecs_query_count()} queries carried "
          f"ECS data, {len(result.unique_ecs_subnets())} unique /24 subnets")
    for subnet, count in result.unique_ecs_subnets()[:3]:
        print(f"  {subnet:20s} used {count} times")

    print("\nsuspicious connections:")
    for (ip, asn), ports in result.port_scanners().items():
        print(f"  {ip} (AS{asn}) probed {ports} ports across the "
              "honeypot machines — likely malicious target acquisition")

    v6 = result.ipv6_inbound()
    v6_asns = {conn.src_asn for conn in v6}
    print(f"\nIPv6 inbound: {len(v6)} packets, all from AS(es) {v6_asns} "
          "(the CA's validation server) — nobody guesses IPv6 addresses;"
          " only CT leaks them.")


if __name__ == "__main__":
    main()
