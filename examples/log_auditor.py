#!/usr/bin/env python3
"""Auditing CT logs: append-only proofs, gossip, and split views.

CT's security story (paper Section 2) rests on logs being append-only
Merkle trees whose misbehaviour is *detectable*.  This example shows
the detection actually working:

1. an auditor follows a log across growth, verifying STH signatures
   and consistency proofs;
2. SCT inclusion promises are audited against the maximum merge delay;
3. two vantage points gossip their observed STHs and catch a log that
   equivocates (shows different histories to different clients);
4. a log harvest is persisted to disk and restored with its Merkle
   root verified.

Run:  python examples/log_auditor.py
"""

from datetime import timedelta
from pathlib import Path
import tempfile

from repro.ct.auditor import GossipPool, LogAuditor, make_split_view_log
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.storage import dump_log, load_log
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


def main() -> None:
    log = CTLog(name="Audited Log", operator="Demo", key=log_key("Audited Log", 256))
    ca = CertificateAuthority("Demo CA", key_bits=256)
    start = utc_datetime(2018, 4, 1, 8, 0)

    # 1. Follow the log while it grows.
    auditor = LogAuditor(log)
    pair = None
    for hour in range(4):
        for i in range(5):
            pair = ca.issue(
                IssuanceRequest((f"h{hour}-{i}.example",)), [log],
                start + timedelta(hours=hour, minutes=i),
            )
        sth = auditor.poll(start + timedelta(hours=hour, minutes=30))
        print(f"poll {hour}: tree size {sth.tree_size}, "
              f"findings so far: {len(auditor.report.findings)}")
    print(f"consistency checks passed: {auditor.report.consistency_checks}, "
          f"clean: {auditor.report.clean}")

    # 2. Audit the last SCT's inclusion promise.
    ok = auditor.audit_sct_inclusion(
        pair.precertificate, pair.scts[0], ca.issuer_key_hash,
        start + timedelta(hours=5),
    )
    print(f"SCT inclusion promise kept: {ok}")

    # 3. Split-view detection via gossip.
    pool = GossipPool()
    honest_sth = log.get_sth(start + timedelta(hours=6))
    evil = make_split_view_log(log, fork_at=10)
    while evil.tree.size < honest_sth.tree_size:
        evil.tree.append(b"fabricated")
    evil_sth = evil.get_sth(start + timedelta(hours=6))
    pool.submit(log.name, honest_sth, "vantage-berkeley")
    finding = pool.submit(log.name, evil_sth, "vantage-sydney")
    print(f"gossip finding: {finding.kind} — {finding.detail}")

    # 4. Persist and restore the harvest, root-verified.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "harvest.jsonl"
        count = dump_log(log, path)
        restored = CTLog(name=log.name, operator=log.operator, key=log.key)
        load_log(path, restored)
        print(f"harvest of {count} entries restored; roots match: "
              f"{restored.tree.root() == log.tree.root()}")


if __name__ == "__main__":
    main()
