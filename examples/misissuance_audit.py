#!/usr/bin/env python3
"""Auditing embedded SCTs for CA pipeline bugs (Section 3.4).

Issues a certificate population that includes faithful re-creations of
the four documented CA incidents (TeliaSonera, GlobalSign, D-Trust,
NetLock), then runs the auditor: reconstruct each precertificate from
the final certificate, verify every embedded SCT, and root-cause the
failures by comparing against the logged precertificates.

Run:  python examples/misissuance_audit.py
"""

from repro.core import misissuance
from repro.core.report import render_section34
from repro.workloads.incidents import MisissuanceWorkload


def main() -> None:
    corpus = MisissuanceWorkload(healthy_certificates=300).build()
    report = misissuance.audit_certificates(
        (pair.final_certificate for pair in corpus.pairs),
        corpus.issuer_key_hashes(),
        corpus.logs,
    )
    print(render_section34(report))

    print("\nper-certificate detail:")
    for finding in report.findings:
        cert = finding.certificate
        invalid = finding.validation.invalid_count
        total = len(finding.validation.verdicts)
        print(f"  {cert.issuer_org:12s} serial {cert.serial:4d}  "
              f"{cert.subject_cn:35s} {invalid}/{total} SCTs invalid")

    # Cross-check against the injected ground truth.
    found = {(f.ca_name, f.certificate.serial) for f in report.findings}
    expected = set(corpus.injected)
    print(f"\nground truth: {len(expected)} injected incidents; "
          f"audit found {len(found)}; "
          f"missed: {sorted(expected - found)}; "
          f"spurious: {sorted(found - expected)}")


if __name__ == "__main__":
    main()
