#!/usr/bin/env python3
"""Quickstart: the Certificate Transparency machinery end to end.

Walks the full RFC 6962 flow on the public API:

1. build the trusted log set (the logs of the paper's Table 1);
2. issue a certificate through a CA — precertificate, SCTs, final
   certificate with the SCT list embedded;
3. validate the embedded SCTs the way an auditor (or Section 3.4 of
   the paper) does: reconstruct the precertificate and verify the log
   signatures;
4. check the certificate against Chrome's CT policy;
5. fetch and verify Merkle inclusion and consistency proofs.

Run:  python examples/quickstart.py
"""

from repro.ct import build_default_logs
from repro.ct.merkle import verify_consistency_proof, verify_inclusion_proof
from repro.ct.policy import ChromeCTPolicy
from repro.ct.verification import validate_embedded_scts
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


def main() -> None:
    logs = build_default_logs()
    ca = CertificateAuthority("Example CA")
    now = utc_datetime(2018, 4, 18, 12, 0)

    # Chrome's policy wants one Google and one non-Google log.
    chosen = [logs["Google Pilot log"], logs["Cloudflare Nimbus2018 Log"]]
    pair = ca.issue(
        IssuanceRequest(("example.org", "www.example.org")), chosen, now
    )
    print("issued:", pair.final_certificate.subject_cn)
    print("  precertificate poisoned:", pair.precertificate.is_precertificate)
    print("  embedded SCTs:", len(pair.scts), "from", ", ".join(pair.log_names))

    # Auditor-side validation from the final certificate alone.
    log_keys = {log.log_id: log.key for log in logs.values()}
    log_names = {log.log_id: log.name for log in logs.values()}
    result = validate_embedded_scts(
        pair.final_certificate, ca.issuer_key_hash, log_keys, log_names
    )
    print("  embedded SCTs valid:", result.all_valid)

    # Chrome CT policy.
    policy = ChromeCTPolicy(logs)
    verdict = policy.evaluate(pair.final_certificate, list(pair.scts))
    print("  Chrome CT policy compliant:", verdict.compliant)

    # Merkle proofs against the signed tree head.
    log = chosen[0]
    sth = log.get_sth(now)
    print(f"  {log.name}: tree size {sth.tree_size}, STH verifies:",
          sth.verify(log.key))
    entry = log.entries[-1]
    proof = log.get_proof_by_hash(entry.index, sth.tree_size)
    print("  inclusion proof verifies:",
          verify_inclusion_proof(entry.leaf_input, entry.index,
                                 sth.tree_size, proof, sth.root_hash))

    # Append more and prove append-only consistency.
    old_size, old_root = sth.tree_size, sth.root_hash
    for i in range(5):
        ca.issue(IssuanceRequest((f"more{i}.example.org",)), [log],
                 utc_datetime(2018, 4, 18, 13, i))
    new_sth = log.get_sth(utc_datetime(2018, 4, 18, 14, 0))
    consistency = log.get_consistency(old_size, new_sth.tree_size)
    print("  consistency proof verifies:",
          verify_consistency_proof(old_size, new_sth.tree_size,
                                   old_root, new_sth.root_hash, consistency))


if __name__ == "__main__":
    main()
