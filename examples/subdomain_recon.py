#!/usr/bin/env python3
"""Bulk subdomain reconnaissance from CT data (Section 4).

Reproduces the paper's Section 4 pipeline at a small scale:

1. extract FQDNs from a CT-logged certificate corpus;
2. rank subdomain labels (Table 2) and compare against the wordlists
   hacking tools ship (subbrute / dnsrecon);
3. construct candidate FQDNs from frequent labels and verify them with
   a massdns-style bulk resolver using pseudorandom control names and
   a border-router routing filter;
4. diff the discoveries against a Sonar-like forward-DNS list.

Run:  python examples/subdomain_recon.py
"""

from repro.core import enumeration, leakage
from repro.workloads.domains import DomainWorkload
from repro.workloads.wordlists import dnsrecon_wordlist, subbrute_wordlist


def main() -> None:
    corpus = DomainWorkload(scale=1 / 20_000).build()
    print(f"domain list: {len(corpus.registrable_domains)} registrable domains")
    print(f"CT corpus:   {len(corpus.ct_fqdns)} names from CN/SAN fields\n")

    stats = leakage.analyze_names(corpus.ct_fqdns, corpus.psl)
    print("top 10 subdomain labels leaked via CT:")
    for rank, (label, count) in enumerate(stats.top_labels(10), start=1):
        print(f"  {rank:2d}. {label:14s} {count}")
    print(f"  (invalid names filtered: {stats.invalid_names})\n")

    print("per-suffix signature labels:")
    tops = stats.top_label_per_suffix()
    for suffix in ("tech", "email", "cloud", "design", "gov", "gov.uk"):
        if suffix in tops:
            print(f"  {suffix:8s} -> {tops[suffix]}")

    # Would the classic wordlists have found these labels?
    sb = subbrute_wordlist(stats.label_counts)
    dr = dnsrecon_wordlist(stats.label_counts)
    print(f"\nwordlist coverage of CT labels:")
    print(f"  subbrute ({len(sb)} words): "
          f"{len(leakage.wordlist_overlap(sb, stats))} occur in CT")
    print(f"  dnsrecon ({len(dr)} words): "
          f"{len(leakage.wordlist_overlap(dr, stats))} occur in CT")

    # Construct + verify new FQDNs.
    plan, truth, report = enumeration.run_enumeration_experiment(
        stats, corpus, with_ablations=True
    )
    print(f"\nconstructed {report.candidate_count} candidate FQDNs "
          f"from {len(report.eligible_labels)} frequent labels")
    print(f"  candidates answering: {report.answered} "
          f"({report.rate('answered') * 100:.1f}%)")
    print(f"  controls answering:   {report.control_answered} "
          f"({report.rate('control_answered') * 100:.1f}%)  <- wildcard zones")
    print(f"  genuine discoveries:  {report.discovered} "
          f"({report.rate('discovered') * 100:.1f}%)")
    print(f"  new vs Sonar:         {report.new_unknown}")
    print(f"  [ablation] no controls: {report.discovered_without_controls} "
          f"(inflated by wildcard/default-A zones)")
    print(f"  [ablation] no routing filter: "
          f"{report.discovered_without_routing_filter} "
          f"(inflated by misconfigured servers)")


if __name__ == "__main__":
    main()
