#!/usr/bin/env python3
"""Running a CT watchlist service, with and without label redaction.

Combines two threads of the paper:

* Section 5's defender story — notification services (Facebook,
  CertSpotter) that advise operators about issuance for, and
  impersonation of, their domains;
* Section 4's countermeasure discussion — label redaction (Symantec's
  Deneb log, the CABForum redaction draft) hides subdomains from
  everyone, including those defenders.

The demo registers two operators, streams a day of issuance through
the watchlist, then measures what a Deneb-style redaction policy would
have done to both the attacker's view (Table 2 leakage) and the
defender's view (advisory precision).

Run:  python examples/watchlist_service.py
"""

from datetime import timedelta

from repro.core.watchlist import WatchEntry, WatchlistService
from repro.ct.loglist import build_default_logs
from repro.ct.redaction import RedactionPolicy, leakage_reduction, redact_name
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


def main() -> None:
    logs = build_default_logs(key_bits=256)
    log = logs["Google Icarus log"]
    now = utc_datetime(2018, 5, 3, 7, 0)

    service = WatchlistService(seed=11)
    service.watch(WatchEntry("paypal.com", "paypal-secops",
                             expected_issuers=("DigiCert",)))
    service.watch(WatchEntry("bigbank.example", "bigbank-cert-team"))

    digicert = CertificateAuthority("DigiCert", key_bits=256)
    rogue = CertificateAuthority("Rogue CA", key_bits=256)
    budget = CertificateAuthority("Budget CA", key_bits=256)

    issuance = [
        (digicert, ("www.paypal.com", "paypal.com")),        # expected
        (rogue, ("login.paypal.com",)),                      # unauthorized!
        (budget, ("paypal.com-account-verify.gq",)),         # lookalike
        (budget, ("secure-bigbank.example-login.tk",)),      # lookalike
        (digicert, ("vpn.bigbank.example",)),                # expected
        (budget, ("completely-unrelated.shop",)),            # noise
    ]
    for index, (ca, names) in enumerate(issuance):
        ca.issue(IssuanceRequest(names), [log],
                 now + timedelta(minutes=3 * index))

    advisories = service.process([log])
    print(f"{len(advisories)} advisories raised:")
    for advisory in advisories:
        print(f"  -> {advisory.operator:18s} [{advisory.kind:22s}] "
              f"{advisory.certificate_name}  ({advisory.detail})")

    # What would redaction have changed?
    policy = RedactionPolicy(keep_labels=("www",))
    leaked = [
        name
        for entry in log.entries
        for name in entry.certificate.dns_names()
    ]
    impact = leakage_reduction(leaked, policy)
    print(f"\nunder a Deneb-style redaction policy (keep only 'www'):")
    print(f"  subdomain labels hidden: {impact.labels_hidden}/{impact.labels_total} "
          f"({impact.label_reduction:.0%})")
    print(f"  names no longer precisely monitorable: "
          f"{impact.unmonitorable_names}/{impact.names_total} "
          f"({impact.monitoring_loss:.0%})")
    example = "login.paypal.com"
    print(f"  e.g. the unauthorized {example!r} would appear in logs as "
          f"{redact_name(example, policy)!r} — the defender can no longer "
          "tell which host was targeted.")


if __name__ == "__main__":
    main()
