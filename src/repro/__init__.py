"""repro — a reproduction of "The Rise of Certificate Transparency and
Its Implications on the Internet Ecosystem" (Scheitle et al., IMC 2018).

The package is organized in three layers:

* **substrates** — real implementations of everything the paper's
  measurements run on: RFC 6962 CT logs (:mod:`repro.ct`), an
  X.509/CA pipeline (:mod:`repro.x509`), DNS (:mod:`repro.dnscore`),
  TLS endpoints and scanners (:mod:`repro.tls`), a Bro-style passive
  analyzer (:mod:`repro.bro`), and a simulated Internet topology
  (:mod:`repro.inet`);
* **workloads** — calibrated synthetic datasets standing in for the
  paper's live inputs (:mod:`repro.workloads`);
* **core** — the analyses of Sections 2-6, one module per paper
  artifact (:mod:`repro.core`).

Quickstart::

    from repro import ct, x509
    from repro.util.timeutil import utc_datetime

    logs = ct.build_default_logs()
    ca = x509.CertificateAuthority("Example CA")
    pair = ca.issue(
        x509.IssuanceRequest(("example.org", "www.example.org")),
        [logs["Google Pilot log"], logs["Google Icarus log"]],
        utc_datetime(2018, 4, 18),
    )
    assert pair.final_certificate.has_embedded_scts

See ``examples/`` for full experiment walk-throughs and
``benchmarks/`` for the per-table/figure reproduction harness.
"""

__version__ = "1.0.0"

from repro import bro, ct, dnscore, inet, tls, util, x509

__all__ = [
    "__version__",
    "bro",
    "ct",
    "dnscore",
    "inet",
    "tls",
    "util",
    "x509",
]
