"""Bro/Zeek-style passive analysis.

The paper extended the Bro Network Security Monitor to extract and
validate Signed Certificate Timestamps from live TLS traffic, over all
three transmission channels.  :mod:`repro.bro.analyzer` is that
analyzer: it consumes :class:`~repro.tls.connection.TlsConnection`
streams and emits per-connection SCT observations that the Section 3
analyses aggregate.
"""

from repro.bro.analyzer import BroSctAnalyzer, SctObservation

__all__ = ["BroSctAnalyzer", "SctObservation"]
