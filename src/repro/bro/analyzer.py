"""SCT extraction and validation from connection streams.

For every connection the analyzer records which channels carried SCTs
(certificate / TLS extension / stapled OCSP), which logs issued them,
whether each signature verifies against the trusted log list, and
whether the client advertised SCT support — everything Sections 3.2
and 3.4 aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.ct.log import CTLog
from repro.ct.sct import SCT_LIST_EXTENSION_OID, SignedCertificateTimestamp
from repro.ct.verification import validate_embedded_scts
from repro.tls.connection import SctPresence, TlsConnection
from repro.x509.certificate import Certificate


@dataclass(frozen=True)
class AnalyzerConfig:
    """The plain-data state of a :class:`BroSctAnalyzer`.

    Everything a worker needs to rebuild an equivalent analyzer —
    name/key tables and flags only, no caches, no log objects — so
    shard payloads ship this instead of the analyzer itself (see
    :meth:`BroSctAnalyzer.config` / :meth:`BroSctAnalyzer.from_config`).
    """

    log_names: Dict[bytes, str]
    log_keys: Dict[bytes, object]
    issuer_key_hashes: Dict[str, bytes]
    validate_signatures: bool


@dataclass(frozen=True)
class SctObservation:
    """Per-connection result of the SCT analyzer."""

    day: date
    server_name: str
    weight: int
    presence: SctPresence
    #: Log names seen per channel (cert / tls / ocsp).
    cert_sct_logs: Tuple[str, ...] = ()
    tls_sct_logs: Tuple[str, ...] = ()
    ocsp_sct_logs: Tuple[str, ...] = ()
    client_support: bool = True
    #: False when any embedded SCT failed signature validation.
    embedded_scts_valid: bool = True
    certificate: Optional[Certificate] = None


class BroSctAnalyzer:
    """The extended-Bro pipeline of the paper (see [1] in the text).

    Parameters
    ----------
    logs:
        The trusted log list; used both to name logs in output and to
        verify SCT signatures.
    issuer_key_hashes:
        CA name -> issuer key hash, needed to reconstruct
        precertificates when validating embedded SCTs.  Connections
        from unknown issuers skip cryptographic validation (the live
        system faces the same limit for unknown roots).
    """

    def __init__(
        self,
        logs: Dict[str, CTLog],
        issuer_key_hashes: Optional[Dict[str, bytes]] = None,
        *,
        validate_signatures: bool = False,
    ) -> None:
        self._log_names: Dict[bytes, str] = {
            log.log_id: log.name for log in logs.values()
        }
        self._log_keys = {log.log_id: log.key for log in logs.values()}
        self._issuer_key_hashes = issuer_key_hashes or {}
        self._validate_signatures = validate_signatures
        # Uplink streams repeat the same certificate object across many
        # connections; cache per-certificate work by object identity.
        self._embedded_names_cache: Dict[int, Tuple[str, ...]] = {}
        self._embedded_valid_cache: Dict[int, bool] = {}

    def config(self) -> AnalyzerConfig:
        """This analyzer's rebuildable plain-data configuration."""
        return AnalyzerConfig(
            log_names=dict(self._log_names),
            log_keys=dict(self._log_keys),
            issuer_key_hashes=dict(self._issuer_key_hashes),
            validate_signatures=self._validate_signatures,
        )

    @classmethod
    def from_config(cls, config: AnalyzerConfig) -> "BroSctAnalyzer":
        """Rebuild an equivalent analyzer (fresh caches) from a config."""
        analyzer = cls(
            {},
            dict(config.issuer_key_hashes),
            validate_signatures=config.validate_signatures,
        )
        analyzer._log_names = dict(config.log_names)
        analyzer._log_keys = dict(config.log_keys)
        return analyzer

    def __getstate__(self) -> dict:
        # The memo caches are keyed by object identity; in another
        # process (e.g. a pipeline worker) ids are reassigned and a
        # stale key could collide with a different certificate, so
        # pickled copies start with empty caches.
        state = self.__dict__.copy()
        state["_embedded_names_cache"] = {}
        state["_embedded_valid_cache"] = {}
        return state

    def analyze(self, connection: TlsConnection) -> SctObservation:
        """Process one connection."""
        cert = connection.certificate
        cert_logs: Tuple[str, ...] = ()
        embedded_valid = True
        has_cert_sct = False
        if cert is not None and cert.has_embedded_scts:
            has_cert_sct = True
            key = id(cert)
            cached = self._embedded_names_cache.get(key)
            if cached is None:
                cached = self._embedded_names_cache[key] = (
                    self._embedded_log_names(cert)
                )
            cert_logs = cached
            if self._validate_signatures:
                valid = self._embedded_valid_cache.get(key)
                if valid is None:
                    valid = self._embedded_valid_cache[key] = (
                        self._check_embedded(cert)
                    )
                embedded_valid = valid
        tls_logs = tuple(
            self._name_for(sct) for sct in connection.tls_extension_scts
        )
        ocsp_logs = tuple(self._name_for(sct) for sct in connection.ocsp_scts)
        presence = SctPresence(
            certificate=has_cert_sct,
            tls_extension=bool(connection.tls_extension_scts),
            ocsp_staple=bool(connection.ocsp_scts),
        )
        return SctObservation(
            day=connection.time.date(),
            server_name=connection.server_name,
            weight=connection.weight,
            presence=presence,
            cert_sct_logs=cert_logs,
            tls_sct_logs=tls_logs,
            ocsp_sct_logs=ocsp_logs,
            client_support=connection.client_signals_sct_support,
            embedded_scts_valid=embedded_valid,
            certificate=cert,
        )

    def analyze_stream(
        self, connections: Iterable[TlsConnection]
    ) -> Iterator[SctObservation]:
        """Process a stream lazily (uplink captures are large)."""
        for connection in connections:
            yield self.analyze(connection)

    # -- internals ---------------------------------------------------------

    def _embedded_log_names(self, cert: Certificate) -> Tuple[str, ...]:
        extension = cert.get_extension(SCT_LIST_EXTENSION_OID)
        if extension is None:
            return ()
        return tuple(
            self._name_for(sct)
            for sct in SignedCertificateTimestamp.decode_list(extension.value)
        )

    def _name_for(self, sct: SignedCertificateTimestamp) -> str:
        return self._log_names.get(sct.log_id, "unknown log")

    def _check_embedded(self, cert: Certificate) -> bool:
        issuer_key_hash = self._issuer_key_hashes.get(cert.issuer_org)
        if issuer_key_hash is None:
            return True
        result = validate_embedded_scts(
            cert, issuer_key_hash, self._log_keys, self._log_names
        )
        return result.all_valid
