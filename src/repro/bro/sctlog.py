"""Persistence helpers for SCT observation streams.

The real deployment wrote Bro logs to disk and post-processed them;
these helpers serialize observation streams to a compact line format
and read them back, so long captures can be analyzed out-of-core.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.bro.analyzer import SctObservation
from repro.tls.connection import SctPresence


def observation_to_line(obs: SctObservation) -> str:
    """One observation as a JSON line (certificate object omitted)."""
    return json.dumps(
        {
            "day": obs.day.isoformat(),
            "server": obs.server_name,
            "weight": obs.weight,
            "cert": obs.presence.certificate,
            "tls": obs.presence.tls_extension,
            "ocsp": obs.presence.ocsp_staple,
            "cert_logs": list(obs.cert_sct_logs),
            "tls_logs": list(obs.tls_sct_logs),
            "ocsp_logs": list(obs.ocsp_sct_logs),
            "client_support": obs.client_support,
            "valid": obs.embedded_scts_valid,
        },
        separators=(",", ":"),
    )


def line_to_observation(line: str) -> SctObservation:
    """Inverse of :func:`observation_to_line`."""
    data = json.loads(line)
    return SctObservation(
        day=date.fromisoformat(data["day"]),
        server_name=data["server"],
        weight=data["weight"],
        presence=SctPresence(
            certificate=data["cert"],
            tls_extension=data["tls"],
            ocsp_staple=data["ocsp"],
        ),
        cert_sct_logs=tuple(data["cert_logs"]),
        tls_sct_logs=tuple(data["tls_logs"]),
        ocsp_sct_logs=tuple(data["ocsp_logs"]),
        client_support=data["client_support"],
        embedded_scts_valid=data["valid"],
    )


def write_observations(
    path: Union[str, Path], observations: Iterable[SctObservation]
) -> int:
    """Stream observations to a log file; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for obs in observations:
            handle.write(observation_to_line(obs))
            handle.write("\n")
            count += 1
    return count


def read_observations(path: Union[str, Path]) -> Iterator[SctObservation]:
    """Stream observations back from a log file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield line_to_observation(line)
