"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro list
    python -m repro fig1a [--scale 1e-5] [--seed 7]
    python -m repro table4
    python -m repro sec43 --ablations

Each artifact command runs the corresponding workload + analysis and
prints the rendered table/figure (the same renderings the benchmark
harness writes to ``benchmarks/output/``).
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import date
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.core import adoption, enumeration, evolution, misissuance
from repro.core import report as rpt
from repro.core import serversupport
from repro.core.honeypot import CtHoneypotExperiment, render_table4
from repro.core.phishdetect import PhishingDetector
from repro.core.threatintel import build_threat_report, render_threat_report


def _write_json_artifact(path, payload) -> Path:
    """The one JSON-artifact writer behind ``--metrics-out``,
    ``--trace-out``, ``--status-out``: sorted keys, 2-space indent,
    trailing newline (byte-identical to
    :meth:`repro.obs.MetricsSnapshot.write`)."""
    path = Path(path)
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


def _engine(args):
    """Build the execution engine from the parallelism/resilience flags.

    ``--workers 1`` (the default) is the serial fallback: analyses run
    the original single-threaded code and parallel runs are guaranteed
    to produce the same bytes.  ``--retries``/``--backoff`` attach a
    seeded :class:`~repro.resilience.RetryPolicy` so transient shard
    failures are retried inside the workers, and ``--on-error degrade``
    lets a run whose retries are exhausted complete with partial
    results plus a degradation report instead of aborting.

    When ``--metrics-out``/``--trace`` are active, :func:`main` stashes
    a registry/tracer on ``args`` and the engine (plus retry policy)
    records into them; artifact outputs are unaffected either way.
    """
    from repro.pipeline import DEFAULT_SHARD_SIZE, PipelineEngine
    from repro.resilience import RetryPolicy
    from repro.util.rng import SeededRng

    metrics = getattr(args, "metrics", None)
    tracer = getattr(args, "tracer", None)
    events = getattr(args, "events", None)
    retry = None
    if args.retries > 0:
        retry = RetryPolicy(
            max_attempts=args.retries + 1,
            base_delay_s=args.backoff,
            rng=SeededRng(args.seed, "cli-retry"),
            metrics=metrics,
        )
    return PipelineEngine(
        workers=args.workers,
        shard_size=args.shard_size or DEFAULT_SHARD_SIZE,
        retry=retry,
        on_error=args.on_error,
        metrics=metrics,
        tracer=tracer,
        events=events,
    )


def _evolution_run(args):
    from repro.workloads.ca_profiles import CaLoggingWorkload

    scale = args.scale or 1e-5
    return CaLoggingWorkload(
        scale=scale, end=date(2018, 4, 30), seed=args.seed
    ).run()


def cmd_fig1a(args) -> str:
    from repro.pipeline import evolution_growth

    run = _evolution_run(args)
    growth = evolution_growth(run.logs, _engine(args))
    return rpt.render_figure1a(growth, weight=run.weight)


def cmd_fig1b(args) -> str:
    from repro.pipeline import evolution_rates

    run = _evolution_run(args)
    return rpt.render_figure1b(evolution_rates(run.logs, _engine(args)))


def cmd_fig1c(args) -> str:
    from repro.pipeline import evolution_matrix

    run = _evolution_run(args)
    matrix = evolution_matrix(run.logs, "2018-04", _engine(args))
    load = evolution.log_load_report(run.logs, "2018-04", matrix=matrix)
    return rpt.render_figure1c(matrix) + "\n\n" + rpt.render_log_load(load)


def cmd_sec2(args) -> str:
    """Figures 1a-1c (plus log load) from one fused corpus traversal.

    Renders the same bytes as running ``fig1a``, ``fig1b`` and
    ``fig1c`` separately, but the underlying analysis walks each
    corpus shard exactly once for all three passes (see
    :func:`repro.pipeline.evolution_sections`).
    """
    from repro.pipeline import evolution_sections

    run = _evolution_run(args)
    sections = evolution_sections(run.logs, "2018-04", _engine(args))
    load = evolution.log_load_report(
        run.logs, "2018-04", matrix=sections["matrix"]
    )
    return "\n\n".join(
        [
            rpt.render_figure1a(sections["growth"], weight=run.weight),
            rpt.render_figure1b(sections["rates"]),
            rpt.render_figure1c(sections["matrix"]),
            rpt.render_log_load(load),
        ]
    )


def _traffic_stats(args):
    from repro.bro.analyzer import BroSctAnalyzer
    from repro.pipeline import traffic_adoption
    from repro.workloads.traffic import UplinkTrafficWorkload

    per_day = int(args.scale * 26.5e9 / 393) if args.scale else 400
    workload = UplinkTrafficWorkload(
        connections_per_day=max(50, per_day), seed=args.seed
    )
    analyzer = BroSctAnalyzer(workload.logs)
    return traffic_adoption(workload.stream(), analyzer, _engine(args))


def cmd_fig2(args) -> str:
    return rpt.render_figure2(_traffic_stats(args))


def cmd_table1(args) -> str:
    return rpt.render_table1(adoption.table1(_traffic_stats(args)))


def cmd_sec32(args) -> str:
    return rpt.render_section32(_traffic_stats(args))


def cmd_sec33(args) -> str:
    from repro.tls.scanner import TlsScanner
    from repro.util.timeutil import utc_datetime
    from repro.workloads.hosting import HostingWorkload

    scale = args.scale or 1 / 20_000
    population = HostingWorkload(scale=scale, seed=args.seed).build()
    scanner = TlsScanner(population.resolver(), population.endpoints)
    records = scanner.scan(population.domains, utc_datetime(2018, 5, 18))
    names = {log.log_id: log.name for log in population.logs.values()}
    stats = serversupport.analyze_scan(records, names)
    return rpt.render_section33(stats, weight=1.0 / scale)


def cmd_sec34(args) -> str:
    from repro.workloads.incidents import MisissuanceWorkload

    corpus = MisissuanceWorkload(healthy_certificates=200, seed=args.seed).build()
    audit = misissuance.audit_certificates(
        (pair.final_certificate for pair in corpus.pairs),
        corpus.issuer_key_hashes(),
        corpus.logs,
    )
    return rpt.render_section34(audit)


def _domain_corpus(args, default_scale=1 / 2_000):
    from repro.workloads.domains import DomainWorkload

    return DomainWorkload(scale=args.scale or default_scale, seed=args.seed).build()


def cmd_table2(args) -> str:
    from repro.pipeline import leakage_names

    corpus = _domain_corpus(args, 1 / 1_000)
    stats = leakage_names(corpus.ct_fqdns, _engine(args), corpus.psl)
    return rpt.render_table2(stats, weight=1.0 / corpus.scale)


def cmd_sec43(args) -> str:
    from repro.pipeline import leakage_names

    corpus = _domain_corpus(args, 1 / 10_000)
    stats = leakage_names(corpus.ct_fqdns, _engine(args), corpus.psl)
    _, _, result = enumeration.run_enumeration_experiment(
        stats, corpus, seed=args.seed, with_ablations=args.ablations
    )
    return rpt.render_section43(result, corpus.scale)


def cmd_table3(args) -> str:
    from repro.workloads.phishing import PhishingWorkload

    scale = args.scale or 1 / 100
    corpus = PhishingWorkload(scale=scale, seed=args.seed).build()
    result = PhishingDetector().scan(corpus.names)
    return rpt.render_table3(result, weight=1.0 / scale)


def cmd_table4(args) -> str:
    result = CtHoneypotExperiment(seed=args.seed).run()
    return render_table4(result.table4())


def cmd_threatintel(args) -> str:
    result = CtHoneypotExperiment(seed=args.seed).run()
    return render_threat_report(build_threat_report(result))


def cmd_status(args) -> str:
    """Per-log SLO verdicts from a short live monitoring session.

    Runs a deterministic feed loop over four known logs — two healthy,
    one flaky-but-recovering (``degraded``: every fetch needs a retry),
    one with a permanently dead read API (``failing`` once the
    consecutive-failure streak crosses the policy threshold) — and
    renders the same per-log health table a
    :class:`~repro.obs.export.TelemetryServer` serves at ``/health``
    for a real loop.  A second, equally deterministic exercise covers
    the *write path*: two MMD sequencers merging under injected clocks
    (one within the merge-lag budget, one far past it) and a
    capacity-limited served log shedding submissions with 429s, folded
    into verdicts by :func:`repro.obs.evaluate_write_path`.
    ``--status-out FILE`` writes both reports as machine-readable JSON
    (the write-path verdicts under a ``write_path`` key);
    ``--events-out`` captures the per-poll ``feed_poll`` events live.
    """
    import base64
    from datetime import timedelta

    from repro.ct.feed import CertFeed
    from repro.ct.log import CTLog
    from repro.ct.loglist import build_default_logs
    from repro.ct.sequencer import LogSequencer
    from repro.ct.server import LogServer
    from repro.ct.storage import certificate_to_dict
    from repro.obs import MetricsRegistry, evaluate_write_path
    from repro.resilience import FlakyLog, RetryPolicy
    from repro.util.rng import SeededRng
    from repro.util.timeutil import utc_datetime
    from repro.x509 import crypto
    from repro.x509.ca import CertificateAuthority, IssuanceRequest

    rng = SeededRng(args.seed, "cli-status")
    known = build_default_logs(with_capacities=False, key_bits=256)
    degraded = FlakyLog(
        known["DigiCert Log Server"],
        rng,
        failure_rate=1.0,
        max_consecutive=1,
        methods=("get_entries",),
    )
    failing = FlakyLog(
        known["Symantec log"],
        rng,
        failure_rate=0.0,
        methods=("get_entries",),
        fail_when=lambda method, call: method == "get_entries",
    )
    logs = [
        known["Google Pilot log"],
        known["Google Rocketeer log"],
        degraded,
        failing,
    ]
    metrics = args.metrics if args.metrics is not None else MetricsRegistry()
    feed = CertFeed(
        logs,
        retry=RetryPolicy(
            max_attempts=2,
            base_delay_s=0.0,
            rng=rng.fork("retry"),
            metrics=metrics,
        ),
        metrics=metrics,
        events=args.events,
        flush_interval_s=0.0 if args.events is not None else None,
    )
    feed.subscribe("status", lambda event: None)
    ca = CertificateAuthority(name="Status CA", key_bits=256)
    rounds = 6
    start = utc_datetime(2018, 5, 1)
    for round_no in range(rounds):
        now = start + timedelta(minutes=10 * round_no)
        for log in logs:
            ca.issue(
                IssuanceRequest(dns_names=(f"round{round_no}.status.example",)),
                [log],
                now,
            )
        feed.run_once(now)
    feed.flush_telemetry()
    report = feed.health_report()
    delivered, _, _ = feed.stats("status")

    # Write-path exercise, fully clock-injected so the verdicts (and
    # the rendered bytes) are deterministic: two sequencers merging the
    # same submissions with very different lags, and one served log
    # shedding over-capacity submissions as 429s through the real
    # request middleware (handle_request called in-process).
    t0 = utc_datetime(2018, 5, 1, 12, 0)
    wp_ca = CertificateAuthority(name="Status Write CA", key_bits=256)
    scratch = CTLog(
        name="status-scratch",
        operator="Repro",
        key=crypto.KeyPair.generate(f"status-scratch:{args.seed}", 256),
    )
    pairs = [
        wp_ca.issue(
            IssuanceRequest(dns_names=(f"merge{n}.status.example",)),
            [scratch],
            t0,
        )
        for n in range(3)
    ]
    for seq_name, lag_s in (("Sequenced Fast", 0.5), ("Sequenced Slow", 150.0)):
        seq_log = CTLog(
            name=seq_name,
            operator="Repro",
            key=crypto.KeyPair.generate(f"status-wp:{args.seed}:{seq_name}", 256),
        )
        sequencer = LogSequencer(seq_log, metrics=metrics, events=args.events)
        for pair in pairs:
            sequencer.submit_pre_chain(
                pair.precertificate, wp_ca.issuer_key_hash, now=t0
            )
        sequencer.merge(now=t0 + timedelta(seconds=lag_s))
    shed_log = CTLog(
        name="Status Shed",
        operator="Repro",
        key=crypto.KeyPair.generate(f"status-shed:{args.seed}", 256),
        capacity_per_day=1,
        strict_capacity=True,
    )
    shed_server = LogServer(
        shed_log, metrics=metrics, events=args.events, clock=lambda: t0
    )
    for _ in range(2):
        shed_server.handle_request("GET", "/ct/v1/get-sth", "", b"")
    for pair in pairs:  # capacity 1: first lands, the rest shed as 429
        body = json.dumps(
            {
                "chain": [certificate_to_dict(pair.precertificate)],
                "issuer_key_hash": base64.b64encode(
                    wp_ca.issuer_key_hash
                ).decode("ascii"),
            }
        ).encode("utf-8")
        shed_server.handle_request("POST", "/ct/v1/add-pre-chain", "", body)
    write_report = evaluate_write_path(metrics.snapshot())

    if args.status_out:
        payload = report.to_dict()
        payload["write_path"] = write_report.to_dict()
        _write_json_artifact(args.status_out, payload)
    return "\n".join(
        [
            f"CT monitoring status — seed {args.seed}, {rounds} poll rounds",
            "",
            report.render(),
            "",
            write_report.render(),
            "",
            f"feed: {feed.events_emitted} events emitted, "
            f"{delivered} delivered to 1 subscriber",
        ]
    )


def cmd_watch(args) -> str:
    """Live Fig 1a/1b/Table 1 aggregates from a streaming feed loop.

    Starts three empty logs, issues seeded precertificates into them
    day by day, and lets ``CertFeed.poll`` fold every batch into a
    :class:`~repro.dataset.LiveAnalytics` accumulator — the streaming
    path a real CT monitor runs, no corpus rebuild anywhere.  After
    the last round the folded aggregates are cross-checked against a
    batch recompute over the same entries (they must match exactly).
    ``--analytics-out FILE`` writes the version-1 JSON snapshot — the
    same payload a :class:`~repro.obs.export.TelemetryServer` serves
    at ``/analytics`` for a real loop.
    """
    from datetime import timedelta

    from repro.ct.feed import CertFeed
    from repro.ct.log import CTLog
    from repro.dataset import CertCorpus, LiveAnalytics, section2_graph
    from repro.util.timeutil import utc_datetime
    from repro.x509 import crypto
    from repro.x509.ca import CertificateAuthority, IssuanceRequest

    logs = [
        CTLog(
            name=f"Watch Log {i}",
            operator="Repro",
            key=crypto.KeyPair.generate(f"watch-log:{args.seed}:{i}", 256),
        )
        for i in range(3)
    ]
    cas = [
        CertificateAuthority(name=f"Watch CA {i}", key_bits=256)
        for i in range(3)
    ]
    live = LiveAnalytics(section2_graph(month="2018-04"), metrics=args.metrics)
    feed = CertFeed(
        logs, metrics=args.metrics, events=args.events, analytics=live
    )
    rounds = 6
    start = utc_datetime(2018, 4, 1, 9, 0)
    for round_no in range(rounds):
        now = start + timedelta(days=round_no)
        for c, ca in enumerate(cas):
            for n in range(c + 1):  # CA volumes differ -> visible shares
                ca.issue(
                    IssuanceRequest(
                        dns_names=(f"r{round_no}n{n}.watch{c}.example",)
                    ),
                    [logs[(round_no + n + c) % len(logs)]],
                    now + timedelta(minutes=n),
                )
        feed.poll(now)
    batch = LiveAnalytics(section2_graph(month="2018-04"))
    batch.fold_records(
        CertCorpus.from_logs(logs, with_names=False).iter_records()
    )
    snapshot = live.to_dict()
    if snapshot["sections"] != batch.to_dict()["sections"]:
        raise AssertionError(
            "incremental fold diverged from the batch recompute"
        )
    if args.analytics_out:
        _write_json_artifact(args.analytics_out, snapshot)
    return "\n".join(
        [
            f"CT live analytics — seed {args.seed}, {rounds} poll rounds",
            "",
            live.render(),
            "",
            "cross-check: incremental fold == batch recompute over "
            f"{live.records_folded} records in {live.batches_folded} batches",
        ]
    )


def cmd_projection(args) -> str:
    from repro.core.projection import project_adoption, render_projection

    share = args.scale if args.scale is not None else 0.3261
    return render_projection(project_adoption(share))


def _seeded_ct_log(seed: int, entries: int):
    """A CT log pre-populated with ``entries`` deterministic precerts."""
    from datetime import timedelta

    from repro.ct.log import CTLog
    from repro.util.timeutil import utc_datetime
    from repro.x509 import crypto
    from repro.x509.ca import CertificateAuthority, IssuanceRequest

    log = CTLog(
        name="Repro Serve Log",
        operator="Repro",
        key=crypto.KeyPair.generate(f"serve-log:{seed}", 256),
    )
    ca = CertificateAuthority(name="Serve Seed CA", key_bits=256)
    start = utc_datetime(2018, 5, 1, 12, 0)
    for i in range(entries):
        ca.issue(
            IssuanceRequest((f"seed{i}.serve.example",)),
            [log],
            start + timedelta(seconds=i),
        )
    return log


def cmd_serve(args) -> str:
    """Serve a seeded CT log over RFC 6962 HTTP endpoints.

    Boots a :class:`~repro.ct.server.LogServer` on ``--host``/``--port``
    (port 0 picks an ephemeral port), prints the endpoint URLs
    immediately, then serves for ``--duration-s`` seconds (0 = until
    interrupted).  ``--metrics-out``/``--events-out`` attach the
    observability layer: every request lands in per-endpoint latency
    histograms, status counters, and ``log_server_request`` events.
    """
    import time as _time

    from repro.ct.server import LogServer

    log = _seeded_ct_log(args.seed, args.log_entries)
    server = LogServer(
        log,
        host=args.host,
        port=args.port,
        metrics=args.metrics,
        events=args.events,
        merge_interval=args.merge_interval,
        max_batch=args.max_batch,
    )
    server.start()
    base = server.log_url(log.name)
    mode = (
        f"batched writes, merge every {args.merge_interval}s"
        if args.merge_interval is not None
        else "per-entry writes"
    )
    print(
        f"serving {log.name!r} ({log.size} entries, {mode}) at {server.url}",
        flush=True,
    )
    for endpoint in (
        "get-sth",
        "get-entries",
        "get-proof-by-hash",
        "get-sth-consistency",
        "add-pre-chain",
    ):
        print(f"  {base}/ct/v1/{endpoint}", flush=True)
    try:
        if args.duration_s > 0:
            _time.sleep(args.duration_s)
        else:
            print("press Ctrl-C to stop", flush=True)
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    memo = server.memo_stats()
    hits = sum(int(stats["hits"]) for stats in memo.values())
    misses = sum(int(stats["misses"]) for stats in memo.values())
    lookups = hits + misses
    # A server stopped before any memoized request has zero lookups;
    # the rate is defined as 0.0 then, never a division by zero.
    hit_rate = hits / lookups if lookups else 0.0
    summary = (
        f"served {log.name!r}: tree size {log.size}, "
        f"memo hits {hits}, misses {misses}, hit rate {hit_rate:.0%}"
    )
    for slug, stats in sorted(server.sequencer_stats().items()):
        summary += (
            f"\nsequencer {slug}: {stats['merges']} merges, "
            f"{stats['entries_merged']} entries merged, "
            f"max batch {stats['max_batch_merged']}, "
            f"{stats['dedup_hits']} dedup hits"
        )
    return summary


def cmd_loadstorm(args) -> str:
    """Boot a served log and drive a seeded client storm against it.

    Seeds a log with ``--log-entries`` precertificates, serves it on an
    ephemeral port, expands the ``--browsers``/``--monitors``/
    ``--submitters`` population into deterministic plans, and runs them
    concurrently over real sockets with ``--executor`` workers.  Prints
    the storm report (reads/sec, p50/p99, submissions/sec); with
    ``--storm-out FILE`` also writes it as JSON.

    ``--lightweight-monitors N`` additionally runs a swarm of N
    verifiable light-weight monitors (proof subscription via
    ``get-batch-digest``) against the served log after the storm
    settles, reporting their wire cost and zero-miss coverage;
    ``--swarm-out FILE`` writes that report as JSON.
    """
    from datetime import datetime, timezone

    from repro.ct.server import LogServer
    from repro.workloads.loadgen import (
        LoadStormConfig,
        MonitorSwarm,
        MonitorSwarmConfig,
        plan_storm,
        plan_swarm_subscriptions,
        run_storm,
    )

    log = _seeded_ct_log(args.seed, args.log_entries)
    config = LoadStormConfig(
        seed=args.seed,
        browsers=args.browsers,
        monitors=args.monitors,
        submitters=args.submitters,
    )
    plans = plan_storm(config, log)
    swarm_summary = None
    with LogServer(
        log,
        host=args.host,
        metrics=args.metrics,
        events=args.events,
        merge_interval=args.merge_interval,
        max_batch=args.max_batch,
    ) as server:
        report = run_storm(
            plans,
            server.log_url(log.name),
            executor=args.executor,
            workers=args.workers if args.workers > 1 else 8,
        )
        server.drain_writes()
        if args.lightweight_monitors > 0:
            swarm_config = MonitorSwarmConfig(
                seed=args.seed, monitors=args.lightweight_monitors
            )
            domain_pool = [
                name
                for entry in log.entries
                for name in entry.certificate.dns_names()
            ]
            swarm = MonitorSwarm(
                server.log_url(log.name),
                log.name,
                plan_swarm_subscriptions(swarm_config, domain_pool),
                key=log.key,
            )
            matched = swarm.poll(datetime.now(timezone.utc))
            totals = swarm.wire_totals()
            swarm_summary = {
                "monitors": args.lightweight_monitors,
                "tree_size": log.size,
                "matched_observations": matched,
                "missed_subscribed": swarm.missed_subscribed(log),
                "findings": len(swarm.findings()),
                "wire_requests": totals["requests"],
                "wire_entries": totals["entries"],
                "wire_bytes": totals["bytes"],
            }
    if args.storm_out:
        _write_json_artifact(args.storm_out, report.to_dict())
    rendered = report.render()
    if swarm_summary is not None:
        if args.swarm_out:
            _write_json_artifact(args.swarm_out, swarm_summary)
        rendered += (
            f"\nLight-weight swarm — {swarm_summary['monitors']} monitors "
            f"over tree size {swarm_summary['tree_size']}:"
            f"\n  matched      {swarm_summary['matched_observations']:6d} "
            f"observations   {swarm_summary['missed_subscribed']} missed   "
            f"{swarm_summary['findings']} findings"
            f"\n  wire cost    {swarm_summary['wire_requests']:6d} requests   "
            f"{swarm_summary['wire_entries']} entry bodies   "
            f"{swarm_summary['wire_bytes']} bytes"
        )
    return rendered


def cmd_lifecycle(args) -> str:
    """Per-certificate lifecycle timelines reconstructed from spans.

    Boots a sequencer-backed :class:`~repro.ct.server.LogServer` with a
    seeded tracer, drives a seeded client storm against it with tracing
    on (every hop propagates the trace context through the
    ``X-Repro-Traceparent`` header), then polls a traced light-weight
    monitor subscribed to every submitted domain.  The resulting span
    events are assembled into a :class:`~repro.obs.TraceStore` and
    decomposed into the paper's Sec. 6 timeline — submit → SCT signed →
    merge/STH published → inclusion verified → first monitor detection
    — **from spans alone**.  The assembly is checked end to end: zero
    orphan spans (every server span's parent resolves to a recorded
    client span across the process boundary) and the replayed event log
    rebuilds an identical store.  ``--lifecycle-out FILE`` writes the
    timelines as JSON.
    """
    from datetime import datetime, timezone

    from repro.ct.monitor import HttpTransport, LightweightMonitor
    from repro.ct.server import LogServer
    from repro.ct.storage import certificate_from_dict
    from repro.obs import (
        EventLog,
        SpanTracer,
        TraceStore,
        certificate_lifecycles,
        read_events,
        render_lifecycles,
    )
    from repro.workloads.loadgen import LoadStormConfig, plan_storm, run_storm

    events = args.events if args.events is not None else EventLog(tail_size=16384)
    tracer = SpanTracer(seed=args.seed, name="lifecycle", events=events)
    log = _seeded_ct_log(args.seed, args.log_entries)
    merge_interval = (
        args.merge_interval if args.merge_interval is not None else 0.05
    )
    config = LoadStormConfig(
        seed=args.seed,
        browsers=args.browsers,
        monitors=args.monitors,
        submitters=args.submitters,
    )
    plans = plan_storm(config, log)
    submitted_domains = sorted(
        {
            name
            for plan in plans
            for op in plan.ops
            if op.kind == "add_pre_chain" and op.chain
            for name in certificate_from_dict(dict(op.chain[0])).dns_names()
        }
    )
    with LogServer(
        log,
        host=args.host,
        metrics=args.metrics,
        events=events,
        merge_interval=merge_interval,
        max_batch=args.max_batch,
        tracer=tracer,
    ) as server:
        report = run_storm(
            plans,
            server.log_url(log.name),
            executor=args.executor,
            workers=args.workers if args.workers > 1 else 8,
            trace_seed=args.seed,
        )
        server.drain_writes()
        monitor = LightweightMonitor(
            "lifecycle-monitor",
            submitted_domains or ("none.example",),
            key=log.key,
            tracer=tracer,
        )
        transport = HttpTransport(
            server.log_url(log.name),
            log.name,
            timeout=30.0,
            client_id="lifecycle-monitor",
            tracer=tracer,
        )
        monitor.poll(transport, datetime.now(timezone.utc))
    # Ship every storm worker's client spans home: record_remote files
    # them on the coordinating tracer *and* re-emits them as ``span``
    # events, so the event log is the complete cross-process record.
    for result in report.results:
        for record in result.spans:
            tracer.record_remote(record)
    store = TraceStore()
    store.add_many(tracer.to_records())
    orphans = store.orphan_spans()
    if args.events_out:
        replayed = TraceStore.from_events(read_events(args.events_out))
    else:
        replayed = TraceStore.from_events(events.tail(events.emitted))
    replay_identical = replayed == store
    lifecycles = certificate_lifecycles(store)
    complete = sum(1 for item in lifecycles if item["complete"])
    if args.lifecycle_out:
        _write_json_artifact(
            args.lifecycle_out,
            {
                "version": 1,
                "seed": args.seed,
                "certificates": lifecycles,
                "complete": complete,
                "traces": len(store.trace_ids()),
                "spans": len(store),
                "orphan_spans": len(orphans),
                "replay_identical": replay_identical,
            },
        )
    lines = [
        f"Certificate lifecycle — seed {args.seed}, "
        f"{config.clients} clients, merge every {merge_interval}s",
        "",
        render_lifecycles(lifecycles),
        "",
        f"traces: {len(store.trace_ids())}  spans: {len(store)}  "
        f"orphans: {len(orphans)}  "
        f"replay: {'identical' if replay_identical else 'DIVERGED'}",
    ]
    if orphans or not replay_identical:
        raise AssertionError(
            f"trace assembly broken: {len(orphans)} orphan spans, "
            f"replay identical={replay_identical}"
        )
    return "\n".join(lines)


def cmd_gossip(args) -> str:
    """Demonstrate wire-level STH gossip catching a split-view log.

    Seeds a log, builds a fully servable equivocating twin (same size,
    diverging tail), and mounts both as one
    :class:`~repro.ct.server.SplitView`: clients on one side of the
    partition read the honest view, clients on the other side the twin.
    A read-only seeded storm (browsers + monitors, no submitters) then
    hits the server, every client's fetched STH is gossiped into a
    :class:`~repro.ct.auditor.GossipPool`, and the detected
    equivocation surfaces as split-view incidents.  ``--gossip-out
    FILE`` writes the storm report plus the incidents as JSON.
    """
    from repro.ct.auditor import GossipPool, make_split_view_log
    from repro.ct.server import LogServer, SplitView
    from repro.workloads.incidents import split_view_incidents
    from repro.workloads.loadgen import (
        LoadStormConfig,
        gossip_storm_sths,
        plan_storm,
        run_storm,
    )

    log = _seeded_ct_log(args.seed, args.log_entries)
    twin = make_split_view_log(log, fork_at=log.size // 2, pad_to=log.size)
    config = LoadStormConfig(
        seed=args.seed,
        browsers=args.browsers,
        monitors=args.monitors,
        submitters=0,
    )
    plans = plan_storm(config, log)
    with LogServer(
        SplitView(log, twin),
        host=args.host,
        metrics=args.metrics,
        events=args.events,
    ) as server:
        report = run_storm(
            plans,
            server.log_url(log.name),
            executor=args.executor,
            workers=args.workers if args.workers > 1 else 8,
        )
    pool = GossipPool(metrics=args.metrics, events=args.events)
    gossip_storm_sths(report, pool, log.name)
    incidents = split_view_incidents(pool)
    if args.gossip_out:
        _write_json_artifact(
            args.gossip_out,
            {
                "storm": report.to_dict(),
                "sths_gossiped": pool.sths_gossiped,
                "split_view_incidents": [
                    incident.to_dict() for incident in incidents
                ],
            },
        )
    lines = [
        report.render(),
        f"Gossip — {pool.sths_gossiped} STHs gossiped by "
        f"{config.clients} clients:",
    ]
    if incidents:
        for incident in incidents:
            lines.append(
                f"  SPLIT VIEW detected on {incident.log_name!r} at tree "
                f"size {incident.tree_size}: {incident.first_reporter} saw "
                f"{incident.first_root[:16]}…, {incident.second_reporter} "
                f"saw {incident.second_root[:16]}…"
            )
    else:
        lines.append("  no equivocation detected")
    return "\n".join(lines)


COMMANDS: Dict[str, Callable] = {
    "fig1a": cmd_fig1a,
    "fig1b": cmd_fig1b,
    "fig1c": cmd_fig1c,
    "sec2": cmd_sec2,
    "fig2": cmd_fig2,
    "table1": cmd_table1,
    "sec32": cmd_sec32,
    "sec33": cmd_sec33,
    "sec34": cmd_sec34,
    "table2": cmd_table2,
    "sec43": cmd_sec43,
    "table3": cmd_table3,
    "table4": cmd_table4,
    "threatintel": cmd_threatintel,
    "projection": cmd_projection,
    "status": cmd_status,
    "watch": cmd_watch,
    "serve": cmd_serve,
    "loadstorm": cmd_loadstorm,
    "lifecycle": cmd_lifecycle,
    "gossip": cmd_gossip,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of the IMC'18 CT paper.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(COMMANDS) + ["list"],
        help="which table/figure/section to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="simulated:real ratio (artifact-specific default)",
    )
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sharded analysis passes "
        "(1 = serial fallback; outputs are identical either way)",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="entries per shard for parallel analysis (default 4096)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retries per failed shard before giving up (0 disables; "
        "transient faults like log overloads are retried with "
        "exponential backoff, seeded jitter)",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base backoff delay in seconds between shard retries "
        "(doubles per attempt; default 0.05)",
    )
    parser.add_argument(
        "--on-error",
        choices=["raise", "degrade"],
        default="raise",
        help="what to do when a shard exhausts its retries: abort with "
        "the failing shard named (raise) or finish on partial results "
        "with a degradation report (degrade)",
    )
    parser.add_argument(
        "--ablations",
        action="store_true",
        help="include methodology ablations where supported (sec43)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write a JSON metrics snapshot (counters, gauges, "
        "histograms from the pipeline/retry layer) to FILE after the "
        "artifact is rendered; stdout is unchanged",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record spans around the run and print the span tree to "
        "stderr (stdout is unchanged)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record spans around the run and write the span tree as "
        "JSON to FILE (combinable with --trace; stdout is unchanged)",
    )
    parser.add_argument(
        "--events-out",
        metavar="FILE",
        default=None,
        help="append a structured JSONL event log (run/shard lifecycle, "
        "retries, degradation, per-log fetch outcomes) to FILE, "
        "flushed line-by-line while the run is live; stdout is "
        "unchanged",
    )
    parser.add_argument(
        "--status-out",
        metavar="FILE",
        default=None,
        help="(status only) also write the health report as JSON to "
        "FILE — the same payload the telemetry server serves at "
        "/health",
    )
    parser.add_argument(
        "--analytics-out",
        metavar="FILE",
        default=None,
        help="(watch only) also write the live-analytics snapshot as "
        "JSON to FILE — the same payload the telemetry server serves "
        "at /analytics",
    )
    server_group = parser.add_argument_group(
        "log server / load storm options (serve, loadstorm)"
    )
    server_group.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for the served log (default 127.0.0.1)",
    )
    server_group.add_argument(
        "--port",
        type=int,
        default=0,
        help="port for `serve` (0 = ephemeral; loadstorm always uses "
        "an ephemeral port)",
    )
    server_group.add_argument(
        "--duration-s",
        type=float,
        default=0.0,
        help="(serve only) seconds to serve before exiting "
        "(0 = run until Ctrl-C)",
    )
    server_group.add_argument(
        "--log-entries",
        type=int,
        default=32,
        help="precertificates to seed the served log with (default 32)",
    )
    server_group.add_argument(
        "--browsers",
        type=int,
        default=6,
        help="(loadstorm) SCT-auditing browser clients (default 6)",
    )
    server_group.add_argument(
        "--monitors",
        type=int,
        default=2,
        help="(loadstorm) tailing monitor clients (default 2)",
    )
    server_group.add_argument(
        "--submitters",
        type=int,
        default=2,
        help="(loadstorm) bursty CA submitter clients (default 2)",
    )
    server_group.add_argument(
        "--executor",
        choices=["thread", "process", "serial"],
        default="thread",
        help="(loadstorm) client concurrency mode (default thread)",
    )
    server_group.add_argument(
        "--merge-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="(serve, loadstorm) batch writes through the MMD sequencer, "
        "merging pending submissions every SECONDS (default: per-entry "
        "writes, no sequencer)",
    )
    server_group.add_argument(
        "--max-batch",
        type=int,
        default=256,
        metavar="N",
        help="(serve, loadstorm) max submissions folded into the Merkle "
        "tree per merge when --merge-interval is set (default 256)",
    )
    server_group.add_argument(
        "--storm-out",
        metavar="FILE",
        default=None,
        help="(loadstorm) also write the storm report as JSON to FILE",
    )
    server_group.add_argument(
        "--lightweight-monitors",
        type=int,
        default=0,
        metavar="N",
        help="(loadstorm) after the storm, run N verifiable light-weight "
        "monitors (get-batch-digest proof subscription) against the "
        "served log and report their wire cost (default 0 = off)",
    )
    server_group.add_argument(
        "--swarm-out",
        metavar="FILE",
        default=None,
        help="(loadstorm) also write the light-weight swarm report as "
        "JSON to FILE",
    )
    server_group.add_argument(
        "--lifecycle-out",
        metavar="FILE",
        default=None,
        help="(lifecycle) also write the per-certificate lifecycle "
        "timelines (reconstructed from span events) as JSON to FILE",
    )
    server_group.add_argument(
        "--gossip-out",
        metavar="FILE",
        default=None,
        help="(gossip) also write the storm report + detected split-view "
        "incidents as JSON to FILE",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    from repro.obs import EventLog, MetricsRegistry, SpanTracer, maybe_span

    args = build_parser().parse_args(argv)
    args.metrics = MetricsRegistry() if args.metrics_out else None
    args.events = EventLog(args.events_out) if args.events_out else None
    # Seeded IDs + the shared event log make traced runs reproducible
    # and let ``--events-out`` carry ``span`` events for later replay.
    args.tracer = (
        SpanTracer(seed=args.seed, name="cli", events=args.events)
        if (args.trace or args.trace_out)
        else None
    )
    try:
        if args.artifact == "list":
            print("available artifacts:")
            for name in sorted(COMMANDS):
                print(f"  {name}")
            return 0
        if args.events is not None:
            args.events.emit(
                "run_start",
                artifact=args.artifact,
                seed=args.seed,
                workers=args.workers,
            )
        try:
            with maybe_span(args.tracer, f"cli.{args.artifact}", seed=args.seed):
                rendered = COMMANDS[args.artifact](args)
        except Exception as exc:
            if args.events is not None:
                args.events.emit(
                    "run_finish", artifact=args.artifact, ok=False, error=repr(exc)
                )
            raise
        print(rendered)
        if args.events is not None:
            args.events.emit("run_finish", artifact=args.artifact, ok=True)
        if args.metrics is not None:
            _write_json_artifact(args.metrics_out, args.metrics.snapshot().to_dict())
        if args.trace_out:
            _write_json_artifact(args.trace_out, args.tracer.to_dicts())
        if args.trace:
            print(args.tracer.render(), file=sys.stderr)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0
    finally:
        if args.events is not None:
            args.events.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
