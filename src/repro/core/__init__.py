"""Core analyses: one module per paper section/artifact.

=====================  ==============================================
Module                 Paper artifact
=====================  ==============================================
evolution              Section 2, Figures 1a / 1b / 1c, rebalancing
adoption               Section 3.2, Figure 2, Table 1
serversupport          Section 3.3
misissuance            Section 3.4
leakage                Section 4.2, Table 2
enumeration            Section 4.3
phishdetect            Section 5, Table 3
honeypot               Section 6, Table 4
projection             Figure 2's anticipated continuation
watchlist              Section 5's (undisclosed) advisory services
threatintel            Section 6's countermeasure direction
report                 text renderings of all of the above
=====================  ==============================================
"""

from repro.core import (
    adoption,
    enumeration,
    evolution,
    honeypot,
    leakage,
    misissuance,
    phishdetect,
    projection,
    report,
    serversupport,
    threatintel,
    watchlist,
)

__all__ = [
    "adoption",
    "enumeration",
    "evolution",
    "honeypot",
    "leakage",
    "misissuance",
    "phishdetect",
    "projection",
    "report",
    "serversupport",
    "threatintel",
    "watchlist",
]
