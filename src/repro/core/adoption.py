"""Section 3.2: CT adoption as seen in passive traffic.

Aggregates the Bro analyzer's per-connection observations into the
paper's reported statistics:

* total / per-channel SCT connection shares (32.61 % / 21.40 % /
  11.21 % / ~0.01 %),
* channel overlap counts (cert+TLS, cert+OCSP, TLS+OCSP),
* client-side SCT support (66.76 %),
* Figure 2's per-day percentage series,
* Table 1's per-log observation counts split by channel.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from datetime import date
from typing import Dict, Iterable, List, Tuple

from repro.bro.analyzer import SctObservation


@dataclass
class DailyAdoption:
    """One day's weighted connection counts."""

    total: int = 0
    with_any_sct: int = 0
    with_cert_sct: int = 0
    with_tls_sct: int = 0
    with_ocsp_sct: int = 0

    def percent(self, attribute: str) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * getattr(self, attribute) / self.total


@dataclass
class AdoptionStats:
    """Weighted aggregates over the whole capture."""

    total: int = 0
    with_any_sct: int = 0
    with_cert_sct: int = 0
    with_tls_sct: int = 0
    with_ocsp_sct: int = 0
    overlap_cert_tls: int = 0
    overlap_cert_ocsp: int = 0
    overlap_tls_ocsp: int = 0
    client_support: int = 0
    invalid_embedded: int = 0
    daily: Dict[date, DailyAdoption] = field(default_factory=dict)
    #: Per-log weighted observation counts by channel.
    cert_log_observations: Dict[str, int] = field(default_factory=dict)
    tls_log_observations: Dict[str, int] = field(default_factory=dict)
    ocsp_log_observations: Dict[str, int] = field(default_factory=dict)

    def share(self, attribute: str) -> float:
        """An aggregate as a fraction of all connections."""
        if self.total == 0:
            return 0.0
        return getattr(self, attribute) / self.total


class AdoptionAccumulator:
    """Incremental form of :func:`aggregate`: one observation at a time.

    The fused corpus traversal folds observations record-by-record, so
    the accumulation loop lives here and both entry points share it.
    :meth:`finish` snapshots the per-log defaultdicts into the plain
    dicts :class:`AdoptionStats` carries across process boundaries.
    """

    __slots__ = ("stats", "_cert_logs", "_tls_logs", "_ocsp_logs")

    def __init__(self) -> None:
        self.stats = AdoptionStats()
        self._cert_logs: Dict[str, int] = defaultdict(int)
        self._tls_logs: Dict[str, int] = defaultdict(int)
        self._ocsp_logs: Dict[str, int] = defaultdict(int)

    def add(self, obs: SctObservation) -> None:
        """Fold one connection's observation into the aggregates."""
        stats = self.stats
        weight = obs.weight
        stats.total += weight
        day = stats.daily.get(obs.day)
        if day is None:
            day = stats.daily[obs.day] = DailyAdoption()
        day.total += weight
        presence = obs.presence
        if presence.any:
            stats.with_any_sct += weight
            day.with_any_sct += weight
        if presence.certificate:
            stats.with_cert_sct += weight
            day.with_cert_sct += weight
            for log in obs.cert_sct_logs:
                self._cert_logs[log] += weight
        if presence.tls_extension:
            stats.with_tls_sct += weight
            day.with_tls_sct += weight
            for log in obs.tls_sct_logs:
                self._tls_logs[log] += weight
        if presence.ocsp_staple:
            stats.with_ocsp_sct += weight
            day.with_ocsp_sct += weight
            for log in obs.ocsp_sct_logs:
                self._ocsp_logs[log] += weight
        if presence.certificate and presence.tls_extension:
            stats.overlap_cert_tls += weight
        if presence.certificate and presence.ocsp_staple:
            stats.overlap_cert_ocsp += weight
        if presence.tls_extension and presence.ocsp_staple:
            stats.overlap_tls_ocsp += weight
        if obs.client_support:
            stats.client_support += weight
        if not obs.embedded_scts_valid:
            stats.invalid_embedded += weight

    def finish(self) -> AdoptionStats:
        """Snapshot the per-log counts and return the aggregate."""
        self.stats.cert_log_observations = dict(self._cert_logs)
        self.stats.tls_log_observations = dict(self._tls_logs)
        self.stats.ocsp_log_observations = dict(self._ocsp_logs)
        return self.stats


def aggregate(observations: Iterable[SctObservation]) -> AdoptionStats:
    """Fold an observation stream into :class:`AdoptionStats`."""
    accumulator = AdoptionAccumulator()
    for obs in observations:
        accumulator.add(obs)
    return accumulator.finish()


def merge_stats(partials: Iterable[AdoptionStats]) -> AdoptionStats:
    """Merge per-shard :class:`AdoptionStats` into one aggregate.

    Every field is a weighted sum, so merging chunk aggregates (in any
    grouping of the same observations) reproduces :func:`aggregate`
    over the full stream exactly.  Key insertion order follows the
    partial order, matching a serial fold over the concatenated
    stream.
    """
    merged = AdoptionStats()
    for partial in partials:
        merged.total += partial.total
        merged.with_any_sct += partial.with_any_sct
        merged.with_cert_sct += partial.with_cert_sct
        merged.with_tls_sct += partial.with_tls_sct
        merged.with_ocsp_sct += partial.with_ocsp_sct
        merged.overlap_cert_tls += partial.overlap_cert_tls
        merged.overlap_cert_ocsp += partial.overlap_cert_ocsp
        merged.overlap_tls_ocsp += partial.overlap_tls_ocsp
        merged.client_support += partial.client_support
        merged.invalid_embedded += partial.invalid_embedded
        for day, daily in partial.daily.items():
            into = merged.daily.get(day)
            if into is None:
                into = merged.daily[day] = DailyAdoption()
            into.total += daily.total
            into.with_any_sct += daily.with_any_sct
            into.with_cert_sct += daily.with_cert_sct
            into.with_tls_sct += daily.with_tls_sct
            into.with_ocsp_sct += daily.with_ocsp_sct
        for field_name in (
            "cert_log_observations",
            "tls_log_observations",
            "ocsp_log_observations",
        ):
            into_counts = getattr(merged, field_name)
            for name, count in getattr(partial, field_name).items():
                into_counts[name] = into_counts.get(name, 0) + count
    return merged


def figure2_series(
    stats: AdoptionStats,
) -> Tuple[List[date], Dict[str, List[float]]]:
    """Figure 2: percent of daily connections with an SCT, by channel.

    Returns the ordered day axis and three series named as in the
    figure legend (``SCT_in_Cert``, ``SCT_in_TLS``, ``Total_SCT``).
    OCSP is omitted "due to their rarity", as in the paper.
    """
    days = sorted(stats.daily)
    series = {
        "SCT_in_Cert": [stats.daily[d].percent("with_cert_sct") for d in days],
        "SCT_in_TLS": [stats.daily[d].percent("with_tls_sct") for d in days],
        "Total_SCT": [stats.daily[d].percent("with_any_sct") for d in days],
    }
    return days, series


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    log_name: str
    cert_scts: int
    cert_share: float
    tls_scts: int
    tls_share: float


def table1(stats: AdoptionStats, top: int = 15) -> List[Table1Row]:
    """Table 1: top logs by certificate-SCT observations.

    Shares are of the respective channel's total observations, matching
    the paper's percentages (e.g. Google Pilot 28.69 % of all cert-SCT
    observations).
    """
    cert_total = sum(stats.cert_log_observations.values())
    tls_total = sum(stats.tls_log_observations.values())
    names = sorted(
        set(stats.cert_log_observations) | set(stats.tls_log_observations),
        key=lambda name: -stats.cert_log_observations.get(name, 0),
    )
    rows = []
    for name in names[:top]:
        cert = stats.cert_log_observations.get(name, 0)
        tls = stats.tls_log_observations.get(name, 0)
        rows.append(
            Table1Row(
                log_name=name,
                cert_scts=cert,
                cert_share=cert / cert_total if cert_total else 0.0,
                tls_scts=tls,
                tls_share=tls / tls_total if tls_total else 0.0,
            )
        )
    return rows


def peak_days(stats: AdoptionStats, threshold_percent: float = 45.0) -> List[date]:
    """Days where total SCT share spikes (the graph.facebook.com peaks)."""
    return [
        day
        for day in sorted(stats.daily)
        if stats.daily[day].percent("with_any_sct") >= threshold_percent
    ]
