"""Section 4.3: constructing and verifying new FQDNs from CT data.

The paper's methodology, step by step:

1. keep subdomain labels occurring >= 100k times in the CT corpus;
2. for each label, keep the 10 public suffixes it occurs in most,
   disregarding the too-generic com/net/org;
3. prepend the label to every known registrable domain in those
   suffixes -> 210.7M candidate FQDNs;
4. resolve each candidate **and** a control (the label replaced by a
   16-character pseudorandom string) with massdns, following CNAMEs up
   to 10 hops, and discard answers outside the border router's
   routing table;
5. count a discovery only when the candidate answers and its control
   does not (ruling out wildcard/default-A zones);
6. compare the discoveries against the Sonar forward-DNS list.

Paper results: 80.3M candidate answers, 61.5M control answers, 18.8M
discoveries, of which 17.7M unknown to Sonar.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Set, Tuple

from repro.core.leakage import LeakageStats
from repro.dnscore.massdns import BulkResolver
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import DnsUniverse, RecursiveResolver
from repro.dnscore.zone import Zone
from repro.inet.routing import RoutingTable
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.workloads.domains import DomainCorpus
from repro.workloads.sonar import SonarDataset


@dataclass(frozen=True)
class EnumerationConfig:
    """Methodology parameters (paper defaults)."""

    #: Real-world label-frequency threshold; scaled by the corpus scale.
    min_label_occurrences: int = 100_000
    top_suffixes_per_label: int = 10
    excluded_suffixes: Tuple[str, ...] = ("com", "net", "org")
    #: Ground-truth knobs, calibrated to the paper's reply rates.
    wildcard_zone_share: float = 0.29
    unroutable_zone_share: float = 0.02
    genuine_hit_rate: float = 0.135
    cname_share: float = 0.20
    broken_cname_share: float = 0.03
    deep_cname_share: float = 0.01
    #: Share of otherwise-genuine records whose A answer points outside
    #: routed space (misconfigured servers) — what the routing-table
    #: filter of Section 4.3 exists to discard.
    unroutable_record_share: float = 0.05


@dataclass
class CandidatePlan:
    """Output of the construction stage."""

    eligible_labels: List[str]
    suffixes_per_label: Dict[str, List[str]]
    candidates: List[str]
    #: candidate -> (label, registrable domain)
    origin: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def construct_candidates(
    stats: LeakageStats,
    corpus: DomainCorpus,
    config: EnumerationConfig = EnumerationConfig(),
) -> CandidatePlan:
    """Steps 1-3: build the candidate FQDN list."""
    threshold = max(1, int(config.min_label_occurrences * corpus.scale))
    eligible = [
        label
        for label, count in stats.label_counts.items()
        if count >= threshold
    ]
    # Invert the per-suffix counters: label -> suffix -> occurrences.
    label_suffix_counts: Dict[str, Dict[str, int]] = defaultdict(dict)
    for suffix, counter in stats.per_suffix_labels.items():
        if suffix in config.excluded_suffixes:
            continue
        for label, count in counter.items():
            label_suffix_counts[label][suffix] = count
    per_suffix_domains: Dict[str, List[str]] = defaultdict(list)
    for domain, suffix in corpus.domain_suffix.items():
        per_suffix_domains[suffix].append(domain)

    known = {name.lower() for name in corpus.ct_fqdns}
    plan = CandidatePlan(
        eligible_labels=sorted(eligible),
        suffixes_per_label={},
        candidates=[],
    )
    for label in plan.eligible_labels:
        ranked = sorted(
            label_suffix_counts.get(label, {}).items(),
            key=lambda kv: -kv[1],
        )
        suffixes = [sfx for sfx, _ in ranked[: config.top_suffixes_per_label]]
        plan.suffixes_per_label[label] = suffixes
        for suffix in suffixes:
            for domain in per_suffix_domains.get(suffix, ()):
                fqdn = f"{label}.{domain}"
                if fqdn in known:
                    continue  # not a *new* FQDN
                plan.candidates.append(fqdn)
                plan.origin[fqdn] = (label, domain)
    return plan


@dataclass
class GroundTruth:
    """The simulated DNS reality behind the candidate list."""

    universe: DnsUniverse
    routing_table: RoutingTable
    #: Candidates that genuinely exist and resolve to routed space.
    existing: Set[str]
    wildcard_domains: Set[str]
    unroutable_domains: Set[str]


def build_ground_truth(
    plan: CandidatePlan,
    config: EnumerationConfig = EnumerationConfig(),
    seed: int = 4343,
) -> GroundTruth:
    """Step-4 substrate: zones for every candidate registrable domain.

    A calibrated share of zones answers *anything* (wildcard records or
    default-A misconfigurations — what the controls catch); a small
    share answers with unroutable addresses (what the routing-table
    filter catches); the rest carry genuine records for a calibrated
    fraction of candidate names, some behind CNAME chains.
    """
    rng = SeededRng(seed, "ground-truth")
    universe = DnsUniverse()
    routing = RoutingTable()
    routing.add_prefix((185, 199))  # the hosting space genuine answers use
    routing.add_prefix((185, 200))
    unroutable_ip = "203.0.113.66"  # intentionally NOT in the table

    by_domain: Dict[str, List[str]] = defaultdict(list)
    for fqdn in plan.candidates:
        label, domain = plan.origin[fqdn]
        by_domain[domain].append(fqdn)

    truth = GroundTruth(
        universe=universe,
        routing_table=routing,
        existing=set(),
        wildcard_domains=set(),
        unroutable_domains=set(),
    )
    host_counter = 0
    for domain, fqdns in by_domain.items():
        droll = rng.fork(f"zone:{domain}")
        zone = Zone(domain)
        roll = droll.random()
        if roll < config.unroutable_zone_share:
            zone.default_a = unroutable_ip
            truth.unroutable_domains.add(domain)
            universe.add_zone(zone)
            continue
        if roll < config.unroutable_zone_share + config.wildcard_zone_share:
            truth.wildcard_domains.add(domain)
            if droll.chance(0.5):
                zone.default_a = f"185.200.{droll.randint(0, 249)}.{droll.randint(1, 249)}"
            else:
                zone.add_simple(
                    f"*.{domain}",
                    RecordType.A,
                    f"185.200.{droll.randint(0, 249)}.{droll.randint(1, 249)}",
                )
            universe.add_zone(zone)
            continue
        zone_used = False
        for fqdn in fqdns:
            if not droll.chance(config.genuine_hit_rate):
                continue
            host_counter += 1
            address = f"185.199.{(host_counter // 250) % 250}.{host_counter % 250 + 1}"
            kind = droll.random()
            if kind < config.broken_cname_share:
                # CNAME pointing nowhere: chased, then NXDOMAIN.
                zone.add_simple(fqdn, RecordType.CNAME, f"gone.{domain}")
            elif kind < config.broken_cname_share + config.deep_cname_share:
                # A chain longer than the 10-hop budget: never resolves.
                for hop in range(12):
                    zone.add_simple(
                        f"hop{hop}.{fqdn}" if hop else fqdn,
                        RecordType.CNAME,
                        f"hop{hop + 1}.{fqdn}",
                    )
            elif kind < config.broken_cname_share + config.deep_cname_share + config.unroutable_record_share:
                # A record pointing outside routed space: answers, but
                # the border-router filter discards it.
                zone.add_simple(fqdn, RecordType.A, unroutable_ip)
            elif kind < config.broken_cname_share + config.deep_cname_share + config.unroutable_record_share + config.cname_share:
                hops = droll.randint(1, 3)
                previous = fqdn
                for hop in range(hops):
                    target = f"cdn{hop}.{domain}"
                    zone.add_simple(previous, RecordType.CNAME, target)
                    previous = target
                zone.add_simple(previous, RecordType.A, address)
                truth.existing.add(fqdn)
            else:
                zone.add_simple(fqdn, RecordType.A, address)
                truth.existing.add(fqdn)
            zone_used = True
        if zone_used:
            universe.add_zone(zone)
    return truth


@dataclass
class EnumerationReport:
    """All Section 4.3 outcome numbers (simulated units)."""

    candidate_count: int = 0
    answered: int = 0
    control_answered: int = 0
    discovered: int = 0
    known_to_sonar: int = 0
    new_unknown: int = 0
    discovered_fqdns: List[str] = field(default_factory=list)
    eligible_labels: List[str] = field(default_factory=list)
    #: Ablation results, filled when requested.
    discovered_without_controls: Optional[int] = None
    discovered_without_routing_filter: Optional[int] = None

    def rate(self, attribute: str) -> float:
        if self.candidate_count == 0:
            return 0.0
        return getattr(self, attribute) / self.candidate_count


def verify_candidates(
    plan: CandidatePlan,
    truth: GroundTruth,
    *,
    sonar: Optional[SonarDataset] = None,
    seed: int = 777,
    when: Optional[datetime] = None,
    with_ablations: bool = False,
) -> EnumerationReport:
    """Steps 4-6: bulk-resolve candidates with controls and filters."""
    when = when or utc_datetime(2018, 4, 27)
    for server in truth.universe.servers:
        server.log_queries = False
    resolver = RecursiveResolver(
        "massdns-resolver", truth.universe, ip="169.229.0.53", asn=64496
    )
    bulk = BulkResolver(
        resolver,
        SeededRng(seed, "verify"),
        address_filter=truth.routing_table.contains,
    )
    report = EnumerationReport(
        candidate_count=len(plan.candidates),
        eligible_labels=list(plan.eligible_labels),
    )
    for result in bulk.resolve_all(plan.candidates, when):
        if result.candidate_answered:
            report.answered += 1
        if result.control_answered:
            report.control_answered += 1
        if result.discovered:
            report.discovered += 1
            report.discovered_fqdns.append(result.fqdn)
    if sonar is not None:
        report.known_to_sonar = sum(
            1 for fqdn in report.discovered_fqdns if sonar.knows(fqdn)
        )
        report.new_unknown = report.discovered - report.known_to_sonar
    if with_ablations:
        report.discovered_without_controls = sum(
            1
            for result in bulk.resolve_without_controls(plan.candidates, when)
            if result.discovered
        )
        unfiltered = BulkResolver(
            resolver, SeededRng(seed, "verify-nofilter"), address_filter=None
        )
        report.discovered_without_routing_filter = sum(
            1
            for result in unfiltered.resolve_all(plan.candidates, when)
            if result.discovered
        )
    return report


def run_enumeration_experiment(
    stats: LeakageStats,
    corpus: DomainCorpus,
    *,
    config: EnumerationConfig = EnumerationConfig(),
    sonar: Optional[SonarDataset] = None,
    seed: int = 99,
    with_ablations: bool = False,
) -> Tuple[CandidatePlan, GroundTruth, EnumerationReport]:
    """The full Section 4.3 pipeline in one call."""
    plan = construct_candidates(stats, corpus, config)
    truth = build_ground_truth(plan, config, seed=seed)
    if sonar is None:
        from repro.workloads.sonar import SonarWorkload

        sonar = SonarWorkload(seed=seed + 1).build(corpus, truth.existing)
    report = verify_candidates(
        plan, truth, sonar=sonar, seed=seed + 2, with_ablations=with_ablations
    )
    return plan, truth, report
