"""Section 2: the timeline of CT log evolution (Figures 1a-1c).

All three figures are computed from the contents of the logs
themselves — exactly how the paper harvested "data of all CT log
servers deployed" — never from the workload's bookkeeping.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from datetime import date, timedelta
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.ct.log import CTLog
from repro.ct.sct import SctEntryType
from repro.util.stats import Counter2D, gini
from repro.util.timeutil import month_key


def _precert_entries(logs: Iterable[CTLog]):
    for log in logs:
        for entry in log.entries:
            if entry.entry_type is SctEntryType.PRECERT_ENTRY:
                yield log, entry


#: A precertificate observation: (issuer org, serial, submission day).
#: The (issuer, serial) pair identifies a unique precert across logs.
PrecertRecord = Tuple[str, int, date]

#: A log-load observation: (issuer org, log name, month key).
MatrixRecord = Tuple[str, str, str]


def growth_records(logs: Iterable[CTLog]) -> Iterator[PrecertRecord]:
    """Flatten logs into the records Figures 1a/1b aggregate over."""
    for _, entry in _precert_entries(logs):
        cert = entry.certificate
        yield cert.issuer_org, cert.serial, entry.submitted_at.date()


def matrix_records(logs: Iterable[CTLog]) -> Iterator[MatrixRecord]:
    """Flatten logs into the records Figure 1c aggregates over."""
    for log, entry in _precert_entries(logs):
        yield (
            entry.certificate.issuer_org,
            log.name,
            month_key(entry.submitted_at.date()),
        )


def growth_fold(
    firsts: Dict[Tuple[str, int], date], issuer_org: str, serial: int, day: date
) -> None:
    """Fold one precert observation into a shard-local firsts dict.

    Shared by :func:`growth_map` and the fused corpus traversal
    (:mod:`repro.dataset.sections`), so both keep identical
    first-submission semantics.
    """
    key = (issuer_org, serial)
    if key not in firsts:
        firsts[key] = day


def growth_map(records: Iterable[PrecertRecord]) -> Dict[Tuple[str, int], date]:
    """Map step shared by Figures 1a and 1b: shard-local dedup.

    Keeps, in stream order, the first submission day of every unique
    (issuer, serial) seen in this shard; the reduce steps finish the
    deduplication across shards.
    """
    firsts: Dict[Tuple[str, int], date] = {}
    for issuer_org, serial, day in records:
        growth_fold(firsts, issuer_org, serial, day)
    return firsts


def growth_reduce(
    partials: Iterable[Dict[Tuple[str, int], date]],
    *,
    start: Optional[date] = None,
    end: Optional[date] = None,
) -> Dict[str, List[Tuple[date, int]]]:
    """Reduce step of Figure 1a; partials must arrive in shard order."""
    daily_new: Dict[str, Dict[date, int]] = defaultdict(lambda: defaultdict(int))
    seen: Set[Tuple[str, int]] = set()
    for partial in partials:
        for key, day in partial.items():
            if key in seen:
                continue
            seen.add(key)
            if start is not None and day < start:
                continue
            if end is not None and day > end:
                continue
            daily_new[key[0]][day] += 1
    growth: Dict[str, List[Tuple[date, int]]] = {}
    for ca, per_day in daily_new.items():
        total = 0
        series = []
        for day in sorted(per_day):
            total += per_day[day]
            series.append((day, total))
        growth[ca] = series
    return growth


def rates_reduce(
    partials: Iterable[Dict[Tuple[str, int], date]],
) -> Dict[date, Dict[str, float]]:
    """Reduce step of Figure 1b; partials must arrive in shard order."""
    per_day: Dict[date, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
    seen: Set[Tuple[str, int]] = set()
    for partial in partials:
        for key, day in partial.items():
            if key in seen:
                continue
            seen.add(key)
            per_day[day][key[0]] += 1
    shares: Dict[date, Dict[str, float]] = {}
    for day, counts in per_day.items():
        total = sum(counts.values())
        shares[day] = {ca: count / total for ca, count in counts.items()}
    return shares


def matrix_map(records: Iterable[MatrixRecord], month: str) -> Counter2D:
    """Map step of Figure 1c: one shard's (CA, log) entry counts."""
    matrix = Counter2D()
    for issuer_org, log_name, entry_month in records:
        if entry_month != month:
            continue
        matrix.add(issuer_org, log_name, 1)
    return matrix


def matrix_reduce(partials: Iterable[Counter2D]) -> Counter2D:
    """Reduce step of Figure 1c; partials must arrive in shard order."""
    merged = Counter2D()
    for partial in partials:
        merged.update(partial)
    return merged


def cumulative_precert_growth(
    logs: Dict[str, CTLog],
    *,
    start: Optional[date] = None,
    end: Optional[date] = None,
) -> Dict[str, List[Tuple[date, int]]]:
    """Figure 1a: cumulative count of *unique* precertificates per CA.

    A precertificate submitted to several logs counts once (identified
    by issuer + serial).  Returns, per CA, a day-indexed cumulative
    series covering only days with activity plus the series endpoints.
    Thin wrapper over the shared columnar corpus (one fused traversal);
    equals ``growth_reduce([growth_map(growth_records(...))])``.
    """
    from repro.dataset import CertCorpus
    from repro.dataset.sections import corpus_growth

    corpus = CertCorpus.from_logs(logs, with_names=False)
    return corpus_growth(corpus, start=start, end=end)


def relative_daily_rates(
    logs: Dict[str, CTLog],
) -> Dict[date, Dict[str, float]]:
    """Figure 1b: each CA's share of the day's newly logged precerts."""
    from repro.dataset import CertCorpus
    from repro.dataset.sections import corpus_rates

    return corpus_rates(CertCorpus.from_logs(logs, with_names=False))


def ca_log_matrix(
    logs: Dict[str, CTLog], month: str = "2018-04"
) -> Counter2D:
    """Figure 1c: precertificate log *entries* per (CA, log) in a month.

    Unlike 1a this counts entries, not unique precerts: the figure
    shows how logging load lands on logs.  Thin wrapper over the
    shared columnar corpus; equals
    ``matrix_map(matrix_records(...), month)``.
    """
    from repro.dataset import CertCorpus
    from repro.dataset.sections import corpus_matrix

    return corpus_matrix(
        CertCorpus.from_logs(logs, with_names=False), month
    )


@dataclass(frozen=True)
class LogLoadReport:
    """Concentration diagnostics behind the Section 2 discussion."""

    entries_per_log: Dict[str, int]
    gini_coefficient: float
    top_share: float
    overloaded_logs: Tuple[str, ...]
    matrix_density: float


def log_load_report(
    logs: Dict[str, CTLog],
    month: str = "2018-04",
    matrix: Optional[Counter2D] = None,
) -> LogLoadReport:
    """Quantify the (un)balanced utilization of logs the paper warns about.

    ``matrix`` may be a precomputed :func:`ca_log_matrix` for the same
    month (e.g. from the sharded pipeline) to avoid a second scan.
    """
    if matrix is None:
        matrix = ca_log_matrix(logs, month)
    per_log = {name: matrix.col_total(name) for name in matrix.cols()}
    total = sum(per_log.values())
    values = list(per_log.values())
    # Logs with zero load this month count toward concentration.
    for log in logs.values():
        if log.name not in per_log:
            values.append(0)
    return LogLoadReport(
        entries_per_log=per_log,
        gini_coefficient=gini(values) if values else 0.0,
        top_share=(max(values) / total) if total else 0.0,
        overloaded_logs=tuple(
            log.name for log in logs.values() if log.was_overloaded()
        ),
        matrix_density=matrix.density(),
    )


def crossover_dates(
    growth: Dict[str, List[Tuple[date, int]]],
) -> Dict[Tuple[str, str], date]:
    """When each CA's cumulative count first overtakes another's.

    Figure 1a's narrative is a sequence of crossovers — most notably
    Let's Encrypt racing past every long-established CA within weeks.
    Returns ``(riser, overtaken) -> first date`` for every pair where
    the riser ends above a CA it once trailed.
    """
    if not growth:
        return {}
    start = min(series[0][0] for series in growth.values() if series)
    end = max(series[-1][0] for series in growth.values() if series)
    days = (end - start).days + 1
    dense: Dict[str, List[int]] = {}
    for ca, series in growth.items():
        values = [0] * days
        for day, value in series:
            values[(day - start).days] = value
        running = 0
        for index in range(days):
            running = max(running, values[index])
            values[index] = running
        dense[ca] = values
    crossovers: Dict[Tuple[str, str], date] = {}
    cas = list(dense)
    for riser in cas:
        for other in cas:
            if riser == other:
                continue
            # Must have trailed at some point and lead at the end.
            if dense[riser][-1] <= dense[other][-1]:
                continue
            trailed = False
            for index in range(days):
                if dense[riser][index] < dense[other][index]:
                    trailed = True
                elif trailed and dense[riser][index] > dense[other][index]:
                    crossovers[(riser, other)] = start + timedelta(days=index)
                    break
    return crossovers


@dataclass(frozen=True)
class RebalancingPlan:
    """Section 2's recommendation, quantified.

    "We argue that CAs should distribute their logging load more
    evenly among logs and log operators."  The plan redistributes each
    CA's monthly entries evenly across all qualified logs and reports
    the concentration before/after.
    """

    gini_before: float
    gini_after: float
    top_share_before: float
    top_share_after: float
    #: log name -> (entries before, entries after)
    per_log: Dict[str, Tuple[int, int]]

    @property
    def gini_reduction(self) -> float:
        if self.gini_before == 0:
            return 0.0
        return 1.0 - self.gini_after / self.gini_before


def rebalancing_plan(
    logs: Dict[str, CTLog], month: str = "2018-04"
) -> RebalancingPlan:
    """Compute the even-spread counterfactual for one month's load."""
    matrix = ca_log_matrix(logs, month)
    eligible = [
        log.name
        for log in logs.values()
        if log.chrome_inclusion is not None and not log.disqualified
    ]
    before = {name: matrix.col_total(name) for name in eligible}
    total = sum(before.values())
    base, remainder = divmod(total, len(eligible)) if eligible else (0, 0)
    after = {
        name: base + (1 if index < remainder else 0)
        for index, name in enumerate(sorted(eligible))
    }
    before_values = list(before.values())
    after_values = list(after.values())
    return RebalancingPlan(
        gini_before=gini(before_values) if before_values else 0.0,
        gini_after=gini(after_values) if after_values else 0.0,
        top_share_before=(max(before_values) / total) if total else 0.0,
        top_share_after=(max(after_values) / total) if total else 0.0,
        per_log={name: (before[name], after[name]) for name in eligible},
    )


def top_ca_share(
    logs: Dict[str, CTLog], month: str = "2018-04", top_n: int = 5
) -> float:
    """Share of the month's unique precerts issued by the top-N CAs
    (the paper: 99 % for the top five in April 2018)."""
    counts: Dict[str, int] = defaultdict(int)
    seen: Set[Tuple[str, int]] = set()
    for _, entry in _precert_entries(logs.values()):
        if month_key(entry.submitted_at.date()) != month:
            continue
        cert = entry.certificate
        key = (cert.issuer_org, cert.serial)
        if key in seen:
            continue
        seen.add(key)
        counts[cert.issuer_org] += 1
    total = sum(counts.values())
    if total == 0:
        return 0.0
    top = sorted(counts.values(), reverse=True)[:top_n]
    return sum(top) / total
