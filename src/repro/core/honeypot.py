"""Section 6: the CT honeypot.

The experiment's four building blocks, as in the paper:

(i)   unique random 12-character subdomains that are hard to guess;
(ii)  leaking them *exclusively* via CT — certificates are obtained
      from a Let's Encrypt-like CA whose precertificates land in logs;
(iii) monitoring all queries at the authoritative DNS server we
      control (source AS, EDNS Client Subnet);
(iv)  monitoring all traffic to the subdomains' A/AAAA addresses.

The simulated attacker ecosystem is calibrated to Section 6.2:

* streaming CT monitors at Google (AS 15169), 1&1 (AS 8560), Deteque
  (AS 54054), Petersburg Internet (AS 44050), Amazon (AS 16509), and
  OpenDNS (AS 36692) query within seconds-to-minutes;
* DigitalOcean (AS 14061) polls in a ~2-hour batch rhythm;
* 76 other ASes run batch jobs touching one or two domains, not
  before one hour in 99 % of cases;
* stub resolvers in Hetzner and Quasi Networks use Google Public DNS,
  exposing 12 unique /24 client subnets via EDNS Client Subnet;
* machines from 4 of those subnets connect over IPv4 — three only to
  tcp/443, one (in Quasi Networks, AS 29073) scanning 30 ports across
  the two honeypot machines;
* HTTP(S) connections come from DigitalOcean and Amazon roughly one
  to two hours after logging (19 days and 5+ days for two domains);
* the unique IPv6 addresses receive nothing but the CA's validation
  traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ct.log import CTLog
from repro.ct.loglist import build_default_logs
from repro.ct.monitor import BatchMonitor, StreamingMonitor
from repro.dnscore.authoritative import AuthoritativeServer, QueryLogEntry
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import DnsUniverse, RecursiveResolver
from repro.dnscore.zone import Zone
from repro.inet.asn import AS_REGISTRY, generic_ases, table4_symbol
from repro.inet.clock import EventScheduler
from repro.util.format import duration_human
from repro.util.rng import SeededRng
from repro.util.timeutil import HONEYPOT_END, HONEYPOT_START, utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

#: Letters Table 4 uses for the 11 subdomains.
DOMAIN_LETTERS = "ABCDEFGHIJK"

#: The three issuance batches (Section 6.1 / Table 4 first column).
DEFAULT_BATCHES: Tuple[Tuple[datetime, int], ...] = (
    (utc_datetime(2018, 4, 12, 14, 16, 30), 2),   # A, B
    (utc_datetime(2018, 4, 20, 10, 43, 30), 1),   # C
    (utc_datetime(2018, 4, 30, 13, 0, 0), 8),     # D..K
)

LE_VALIDATION_ASN = 64501
HONEYPOT_ASN = 64500
GOOGLE_ASN = 15169
QUASI_ASN = 29073
HETZNER_ASN = 24940
DIGITALOCEAN_ASN = 14061
AMAZON_ASN = 16509
AMAZON_AES_ASN = 14618

#: Streaming monitors: (name, asn, coverage, latency range s, qtypes, repeats).
STREAMING_MONITORS: Tuple[
    Tuple[str, int, float, Tuple[float, float], Tuple[RecordType, ...], int], ...
] = (
    ("google-ct", GOOGLE_ASN, 1.0, (72.0, 130.0), (RecordType.A, RecordType.AAAA), 3),
    ("oneandone-ct", 8560, 1.0, (95.0, 240.0), (RecordType.A,), 2),
    ("deteque-feed", 54054, 0.82, (120.0, 420.0), (RecordType.A, RecordType.NS), 2),
    ("petersburg", 44050, 0.45, (130.0, 500.0), (RecordType.A,), 1),
    ("amazon-scanner", AMAZON_ASN, 1.0, (150.0, 640.0), (RecordType.A,), 2),
    ("opendns-feed", 36692, 0.64, (300.0, 700.0), (RecordType.A,), 1),
)

#: Stub clients using Google Public DNS (exposed via EDNS Client Subnet):
#: (subnet owner asn, queries over all domains, qtypes, connects, scans_ports).
@dataclass(frozen=True)
class StubProfile:
    asn: int
    total_queries: int
    qtypes: Tuple[RecordType, ...]
    connects_https: bool = False
    scans_ports: bool = False


STUB_PROFILES: Tuple[StubProfile, ...] = (
    StubProfile(
        HETZNER_ASN, 115,
        (RecordType.A, RecordType.AAAA, RecordType.MX, RecordType.NS, RecordType.SOA),
        connects_https=True,
    ),
    StubProfile(
        QUASI_ASN, 25,
        (RecordType.A, RecordType.AAAA),
        scans_ports=True,
    ),
    StubProfile(HETZNER_ASN, 10, (RecordType.A,), connects_https=True),
    StubProfile(QUASI_ASN, 2, (RecordType.A,), connects_https=True),
    StubProfile(HETZNER_ASN, 2, (RecordType.A,)),
    StubProfile(24940, 1, (RecordType.A,)),
    StubProfile(12876, 2, (RecordType.A,)),
    StubProfile(19397, 1, (RecordType.A,)),
    StubProfile(44050, 1, (RecordType.A,)),
    StubProfile(8560, 1, (RecordType.A,)),
    StubProfile(16509, 2, (RecordType.A,)),
    StubProfile(54054, 1, (RecordType.A,)),
)

#: Ports the heavy scanner probes (15 per machine = 30 total).
SCAN_PORTS = (21, 22, 23, 25, 53, 80, 110, 143, 443, 445, 587, 993, 995, 3389, 8080)


# Connection records live with the capture substrate; re-exported here
# because the honeypot is their main producer.
from repro.inet.pcap import ConnectionRecord  # noqa: E402


@dataclass
class HoneypotDomain:
    """One honeypot subdomain and its CT trace."""

    letter: str
    fqdn: str
    ipv4: str
    ipv6: str
    ct_entry_time: datetime


@dataclass(frozen=True)
class Table4Row:
    """One row of Table 4."""

    letter: str
    ct_entry: datetime
    first_dns: Optional[datetime]
    dns_delta_s: Optional[float]
    query_count: int
    as_count: int
    subnet_count: int
    first3_asns: Tuple[int, ...]
    first_http: Optional[datetime]
    http_delta_s: Optional[float]
    http_asns: Tuple[int, ...]


@dataclass
class HoneypotResult:
    """Everything the experiment produced."""

    domains: List[HoneypotDomain]
    auth_server: AuthoritativeServer
    connections: List[ConnectionRecord]
    logs: Dict[str, CTLog]
    capture_start: datetime
    capture_end: datetime

    def capture(self) -> "PacketCapture":
        """The connection log as a filterable packet capture."""
        from repro.inet.pcap import PacketCapture

        return PacketCapture(self.connections)

    def queries_for_domain(self, domain: HoneypotDomain) -> List[QueryLogEntry]:
        """DNS queries for one subdomain, with the CA's own validation
        traffic filtered out (Section 6.1: "We filter out DNS queries
        from the issuing CA's validation infrastructure")."""
        return [
            entry
            for entry in self.auth_server.queries_for(domain.fqdn)
            if entry.source_asn != LE_VALIDATION_ASN
            and self.capture_start <= entry.time <= self.capture_end
        ]

    def table4(self) -> List[Table4Row]:
        rows = []
        for domain in self.domains:
            queries = sorted(self.queries_for_domain(domain), key=lambda q: q.time)
            first_dns = queries[0].time if queries else None
            ases: List[int] = []
            for query in queries:
                if query.source_asn is not None and query.source_asn not in ases:
                    ases.append(query.source_asn)
            subnets: Set[str] = {
                str(query.client_subnet)
                for query in queries
                if query.client_subnet is not None
            }
            http = sorted(
                (
                    conn
                    for conn in self.connections
                    if conn.sni == domain.fqdn and conn.dst_port in (80, 443)
                    and conn.src_asn != LE_VALIDATION_ASN
                ),
                key=lambda conn: conn.time,
            )
            first_http = http[0].time if http else None
            http_asns = tuple(sorted({conn.src_asn for conn in http}))
            rows.append(
                Table4Row(
                    letter=domain.letter,
                    ct_entry=domain.ct_entry_time,
                    first_dns=first_dns,
                    dns_delta_s=(
                        (first_dns - domain.ct_entry_time).total_seconds()
                        if first_dns
                        else None
                    ),
                    query_count=len(queries),
                    as_count=len(ases),
                    subnet_count=len(subnets),
                    first3_asns=tuple(ases[:3]),
                    first_http=first_http,
                    http_delta_s=(
                        (first_http - domain.ct_entry_time).total_seconds()
                        if first_http
                        else None
                    ),
                    http_asns=http_asns,
                )
            )
        return rows

    # -- Section 6.2 companion findings -------------------------------------

    def ipv6_inbound(self) -> List[ConnectionRecord]:
        """Inbound IPv6 traffic: only the CA's validation, per the paper."""
        return [conn for conn in self.connections if conn.ipv6]

    def port_scanners(self, min_ports: int = 10) -> Dict[Tuple[str, int], int]:
        """Source (ip, asn) -> distinct ports probed, heavy scanners only."""
        ports: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}
        for conn in self.connections:
            if conn.ipv6:
                continue
            key = (conn.src_ip, conn.src_asn)
            ports.setdefault(key, set()).add((conn.dst_ip, conn.dst_port))
        return {
            key: len(targets)
            for key, targets in ports.items()
            if len(targets) >= min_ports
        }

    def scanner_hygiene(self) -> Dict[int, bool]:
        """Do inbound scanners follow scanning best practices?

        Section 6.2: "across all inbound scans, no source IP address
        followed scanning best practices such as informative rDNS
        names, websites, or whois entries.  This likely excludes
        benevolent scanners from academia or industrial research."
        Returns ASN -> best-practice flag for every connecting AS
        (excluding the CA's validation).
        """
        from repro.inet.asn import AS_REGISTRY

        out: Dict[int, bool] = {}
        for conn in self.connections:
            if conn.src_asn == LE_VALIDATION_ASN or conn.ipv6:
                continue
            asys = AS_REGISTRY.get(conn.src_asn)
            out[conn.src_asn] = bool(
                asys and asys.follows_scanning_best_practices
            )
        return out

    def ecs_query_count(self) -> int:
        """Queries carrying an EDNS Client Subnet option."""
        return sum(
            1
            for entry in self.auth_server.query_log
            if entry.client_subnet is not None
            and entry.source_asn != LE_VALIDATION_ASN
        )

    def unique_ecs_subnets(self) -> List[Tuple[str, int]]:
        """(subnet, use count) sorted by use, as in Section 6.2."""
        counts: Dict[str, int] = {}
        for entry in self.auth_server.query_log:
            if entry.client_subnet is None or entry.source_asn == LE_VALIDATION_ASN:
                continue
            key = str(entry.client_subnet)
            counts[key] = counts.get(key, 0) + 1
        return sorted(counts.items(), key=lambda kv: -kv[1])


class CtHoneypotExperiment:
    """Build and run the full Section 6 experiment."""

    def __init__(
        self,
        *,
        seed: int = 66,
        base_domain: str = "ct-hpot.net",
        batches: Sequence[Tuple[datetime, int]] = DEFAULT_BATCHES,
        batch_spacing: timedelta = timedelta(minutes=10),
        other_as_count: int = 76,
        #: Domains (by index) whose first HTTP(S) contact is delayed,
        #: and by how much — C after ~19 days, G after ~5 days.
        delayed_http: Optional[Dict[int, timedelta]] = None,
        logs: Optional[Dict[str, CTLog]] = None,
        key_bits: int = 256,
    ) -> None:
        self._rng = SeededRng(seed, "honeypot")
        self.base_domain = base_domain
        self.batches = list(batches)
        self.batch_spacing = batch_spacing
        self.other_as_count = other_as_count
        self.delayed_http = delayed_http if delayed_http is not None else {
            2: timedelta(days=19, hours=20),   # C
            6: timedelta(days=9, hours=16),    # G
        }
        self.logs = logs if logs is not None else build_default_logs(
            with_capacities=False, key_bits=key_bits
        )
        self._key_bits = key_bits

    def run(self) -> HoneypotResult:
        rng = self._rng
        scheduler = EventScheduler()
        universe = DnsUniverse()
        auth = AuthoritativeServer(name="honeypot-auth")
        universe.add_server(auth)
        zone = Zone(self.base_domain)
        auth.add_zone(zone)
        # Register in the universe index as well.
        universe.add_zone(zone, auth)

        machine_ips = ("198.18.0.10", "198.18.0.11")
        connections: List[ConnectionRecord] = []

        # The CA's validation infrastructure queries the authoritative
        # server *before* CT logging — the analysis must filter these.
        def validation_hook(names: Sequence[str], now: datetime) -> None:
            for name in names:
                for qtype in (RecordType.A, RecordType.AAAA, RecordType.CAA):
                    auth.query(
                        name,
                        qtype,
                        now=now - timedelta(seconds=rng.uniform(20, 45)),
                        source_ip="64.78.149.164",
                        source_asn=LE_VALIDATION_ASN,
                        resolver_name="letsencrypt-va",
                    )

        ca = CertificateAuthority(
            "Let's Encrypt",
            validation_hook=validation_hook,
            key_bits=self._key_bits,
        )
        log_set = [
            self.logs["Cloudflare Nimbus2018 Log"],
            self.logs["Google Icarus log"],
        ]

        # --- create the honeypot domains and leak them via CT -------------
        domains: List[HoneypotDomain] = []
        index = 0
        for batch_start, count in self.batches:
            for position in range(count):
                letter = DOMAIN_LETTERS[index]
                label = rng.fork(f"label:{letter}").token(12)
                fqdn = f"{label}.{self.base_domain}"
                ipv4 = machine_ips[index % len(machine_ips)]
                ipv6 = f"2001:db8:1::{index + 1:x}"
                zone.add_simple(fqdn, RecordType.A, ipv4)
                zone.add_simple(fqdn, RecordType.AAAA, ipv6)
                when = batch_start + self.batch_spacing * position + timedelta(
                    seconds=rng.uniform(0, 59)
                )
                ca.issue(IssuanceRequest((fqdn,)), log_set, when)
                # The CA's validation also touches the IPv6 endpoint
                # (the only IPv6 traffic the paper ever saw).
                connections.append(
                    ConnectionRecord(
                        time=when - timedelta(seconds=10),
                        src_ip="64.78.149.164",
                        src_asn=LE_VALIDATION_ASN,
                        dst_ip=ipv6,
                        dst_port=443,
                        sni=fqdn,
                        ipv6=True,
                    )
                )
                domains.append(
                    HoneypotDomain(letter, fqdn, ipv4, ipv6, when)
                )
                index += 1
        by_fqdn = {domain.fqdn: domain for domain in domains}

        # --- resolvers ------------------------------------------------------
        def resolver_for(name: str, asn: int, forwards_ecs: bool = False) -> RecursiveResolver:
            asys = AS_REGISTRY.get(asn)
            block = asys.ipv4_blocks[0] if asys and asys.ipv4_blocks else (192, 0)
            return RecursiveResolver(
                name,
                universe,
                ip=f"{block[0]}.{block[1]}.0.53",
                asn=asn,
                forwards_ecs=forwards_ecs,
            )

        google_dns = resolver_for("google-public-dns", GOOGLE_ASN, forwards_ecs=True)

        # --- streaming monitors --------------------------------------------
        def schedule_queries(
            resolver: RecursiveResolver,
            fqdn: str,
            start: datetime,
            qtypes: Sequence[RecordType],
            repeats: int,
            local_rng: SeededRng,
            client_ip: Optional[str] = None,
        ) -> None:
            moment = start
            for repeat in range(repeats):
                for qtype in qtypes:
                    def fire(now: datetime, q=qtype, r=resolver, c=client_ip, f=fqdn):
                        r.resolve(f, q, now=now, client_ip=c)

                    scheduler.schedule(moment, fire, label=f"dns:{fqdn}")
                    moment += timedelta(seconds=local_rng.uniform(0.5, 5))
                moment += timedelta(minutes=local_rng.uniform(15, 240))

        for name, asn, coverage, (low, high), qtypes, repeats in STREAMING_MONITORS:
            monitor = StreamingMonitor(
                name, rng.fork(f"mon:{name}"), latency_range_s=(low, high)
            )
            resolver = resolver_for(f"{name}-resolver", asn)
            mon_rng = rng.fork(f"monrng:{name}")
            for log in log_set:
                for obs in monitor.observe(log):
                    fqdn = obs.dns_names[0]
                    if fqdn not in by_fqdn:
                        continue
                    if not mon_rng.chance(coverage):
                        continue
                    schedule_queries(
                        resolver, fqdn, obs.observed_at, qtypes, repeats, mon_rng
                    )

        # --- DigitalOcean: a ~2-hour batch poller, plus HTTP(S) visits -----
        do_monitor = BatchMonitor(
            "digitalocean-batch",
            rng.fork("mon:do"),
            interval=timedelta(hours=2),
        )
        do_resolver = resolver_for("digitalocean-resolver", DIGITALOCEAN_ASN)
        do_rng = rng.fork("do")
        http_sources = (
            (DIGITALOCEAN_ASN, "104.131.44.7"),
            (AMAZON_ASN, "52.95.30.111"),
            (AMAZON_AES_ASN, "18.204.9.20"),
        )
        seen_do: Set[str] = set()
        for log in log_set:
            for obs in do_monitor.observe(log):
                fqdn = obs.dns_names[0]
                if fqdn not in by_fqdn or fqdn in seen_do:
                    continue
                seen_do.add(fqdn)
                schedule_queries(
                    do_resolver, fqdn, obs.observed_at, (RecordType.A,), 2, do_rng
                )
                domain = by_fqdn[fqdn]
                domain_index = domains.index(domain)
                delay = self.delayed_http.get(domain_index)
                if delay is not None:
                    http_at = domain.ct_entry_time + delay + timedelta(
                        minutes=do_rng.uniform(0, 600)
                    )
                else:
                    http_at = domain.ct_entry_time + timedelta(
                        minutes=do_rng.uniform(58, 125)
                    )
                # DigitalOcean first, Amazon shortly after.
                for offset, (asn, src_ip) in enumerate(http_sources[:2] if domain.letter != "B" else (http_sources[0], http_sources[2])):
                    def connect(now: datetime, d=domain, a=asn, s=src_ip):
                        connections.append(
                            ConnectionRecord(
                                time=now,
                                src_ip=s,
                                src_asn=a,
                                dst_ip=d.ipv4,
                                dst_port=443,
                                sni=d.fqdn,
                            )
                        )

                    scheduler.schedule(
                        http_at + timedelta(minutes=offset * do_rng.uniform(4, 40)),
                        connect,
                        label=f"http:{fqdn}",
                    )

        # --- stub clients behind Google Public DNS (ECS exposure) ----------
        stub_rng = rng.fork("stubs")
        stub_machines: List[Tuple[StubProfile, str]] = []
        for stub_index, profile in enumerate(STUB_PROFILES):
            asys = AS_REGISTRY.get(profile.asn)
            block = asys.ipv4_blocks[0] if asys and asys.ipv4_blocks else (198, 51)
            client_ip = f"{block[0]}.{block[1]}.{40 + stub_index}.{23 + stub_index}"
            stub_machines.append((profile, client_ip))
            # Spread the profile's query budget across domains, weighted
            # to the later (larger) batch like the real counts.
            remaining = profile.total_queries
            learn_rng = rng.fork(f"stub:{stub_index}")
            while remaining > 0:
                domain = learn_rng.choice(domains)
                start = domain.ct_entry_time + timedelta(
                    minutes=learn_rng.uniform(3, 50)
                )
                burst = min(remaining, len(profile.qtypes))
                for q_i in range(burst):
                    qtype = profile.qtypes[q_i % len(profile.qtypes)]

                    def stub_fire(now: datetime, q=qtype, c=client_ip, f=domain.fqdn):
                        google_dns.resolve(f, q, now=now, client_ip=c)

                    scheduler.schedule(
                        start + timedelta(seconds=q_i * learn_rng.uniform(1, 8)),
                        stub_fire,
                        label=f"stub:{domain.fqdn}",
                    )
                remaining -= burst

        # --- one-off batch queriers from the long tail of ASes -------------
        tail_rng = rng.fork("tail")
        for asys in generic_ases(self.other_as_count):
            tail_resolver = RecursiveResolver(
                f"as{asys.asn}-resolver",
                universe,
                ip=f"{asys.ipv4_blocks[0][0]}.{asys.ipv4_blocks[0][1]}.9.9",
                asn=asys.asn,
            )
            target_count = 1 if tail_rng.chance(0.8) else 2
            targets = tail_rng.sample(domains, min(target_count, len(domains)))
            for domain in targets:
                # 99 % after one hour, 62 % after two hours.
                roll = tail_rng.random()
                if roll < 0.01:
                    delay_h = tail_rng.uniform(0.4, 1.0)
                elif roll < 0.38:
                    delay_h = tail_rng.uniform(1.0, 2.0)
                else:
                    delay_h = tail_rng.uniform(2.0, 40.0)
                schedule_queries(
                    tail_resolver,
                    domain.fqdn,
                    domain.ct_entry_time + timedelta(hours=delay_h),
                    (RecordType.A,),
                    1,
                    tail_rng,
                )

        # --- IPv4 connections from the ECS-exposed machines ----------------
        conn_rng = rng.fork("connections")
        for profile, client_ip in stub_machines:
            if profile.scans_ports:
                # The Quasi Networks machine: 30 ports over both machines.
                scan_start = domains[0].ct_entry_time + timedelta(
                    hours=conn_rng.uniform(4, 9)
                )
                tick = scan_start
                for machine_ip in machine_ips:
                    for port in SCAN_PORTS:
                        def probe(now: datetime, ip=machine_ip, p=port, s=client_ip, a=profile.asn):
                            connections.append(
                                ConnectionRecord(
                                    time=now,
                                    src_ip=s,
                                    src_asn=a,
                                    dst_ip=ip,
                                    dst_port=p,
                                    sni=None,  # raw scan, no SNI
                                )
                            )

                        scheduler.schedule(tick, probe, label="portscan")
                        tick += timedelta(seconds=conn_rng.uniform(0.2, 3))
            elif profile.connects_https:
                target = conn_rng.choice(domains[:2])
                at = target.ct_entry_time + timedelta(hours=conn_rng.uniform(3, 20))

                def https_only(now: datetime, d=target, s=client_ip, a=profile.asn):
                    connections.append(
                        ConnectionRecord(
                            time=now,
                            src_ip=s,
                            src_asn=a,
                            dst_ip=d.ipv4,
                            dst_port=443,
                            sni=None,  # connects by IP, port 443 only
                        )
                    )

                scheduler.schedule(at, https_only, label="https-only")

        scheduler.run_all()
        connections.sort(key=lambda conn: conn.time)
        return HoneypotResult(
            domains=domains,
            auth_server=auth,
            connections=connections,
            logs=self.logs,
            capture_start=HONEYPOT_START,
            capture_end=HONEYPOT_END,
        )


def render_table4(rows: Sequence[Table4Row]) -> str:
    """Text rendering in the paper's layout."""
    from repro.util.tables import Table

    table = Table(
        [
            "", "CT log entry", "DNS", "Δt", "Q", "AS", "CS",
            "First 3 ASes", "HTTP(S)", "Δt", "HTTP ASNs",
        ]
    )
    for row in rows:
        table.add_row(
            row.letter,
            row.ct_entry.strftime("%m-%d %H:%M:%S"),
            row.first_dns.strftime("%H:%M:%S") if row.first_dns else "-",
            duration_human(row.dns_delta_s) if row.dns_delta_s is not None else "-",
            row.query_count,
            row.as_count,
            row.subnet_count,
            ", ".join(table4_symbol(asn) for asn in row.first3_asns),
            row.first_http.strftime("%m-%d %H:%M:%S") if row.first_http else "-",
            duration_human(row.http_delta_s) if row.http_delta_s is not None else "-",
            ", ".join(table4_symbol(asn) for asn in row.http_asns),
        )
    return table.render()
