"""Section 4.2: analysis of subdomains leaked through CT.

Parses FQDNs from CT certificates (or from a pre-extracted name
corpus), discards invalid names exactly as the paper does, splits them
against the Public Suffix List, and ranks subdomain labels — Table 2 —
plus the per-suffix signature labels ("git is the most common
subdomain label for the suffix tech; autoconfig for email; …").
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dnscore.name import is_valid_fqdn, normalize_name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.x509.certificate import Certificate

#: Labels whose presence points at management interfaces — "could be
#: interesting targets for password attacks".
MANAGEMENT_LABELS = ("webdisk", "cpanel", "whm")


@dataclass
class LeakageStats:
    """Outcome of a full subdomain-leakage analysis."""

    total_names_seen: int = 0
    invalid_names: int = 0
    unique_fqdns: int = 0
    fqdns_with_subdomains: int = 0
    label_counts: Counter = field(default_factory=Counter)
    #: suffix -> Counter of labels within that suffix.
    per_suffix_labels: Dict[str, Counter] = field(default_factory=dict)

    def top_labels(self, k: int = 20) -> List[Tuple[str, int]]:
        """Table 2."""
        return self.label_counts.most_common(k)

    def label_share(self, label: str) -> float:
        total = sum(self.label_counts.values())
        if total == 0:
            return 0.0
        return self.label_counts[label] / total

    def top_k_share(self, k: int = 10) -> float:
        total = sum(self.label_counts.values())
        if total == 0:
            return 0.0
        return sum(count for _, count in self.label_counts.most_common(k)) / total

    def top_label_per_suffix(self) -> Dict[str, str]:
        """Section 4.2's per-suffix signature labels."""
        return {
            suffix: counter.most_common(1)[0][0]
            for suffix, counter in self.per_suffix_labels.items()
            if counter
        }

    def management_interface_counts(self) -> Dict[str, int]:
        return {label: self.label_counts[label] for label in MANAGEMENT_LABELS}


def extract_names_from_certificates(
    certificates: Iterable[Certificate],
) -> Iterable[str]:
    """All CN/SAN DNS names, certificate by certificate."""
    for cert in certificates:
        yield from cert.dns_names()


@dataclass
class LeakagePartial:
    """Chunk-local partial of the name pipeline (mergeable).

    ``candidates`` keeps the chunk's *first occurrence* of every valid
    FQDN in stream order, already split against the PSL; the reduce
    step deduplicates across chunks and folds label counts.  Reducing
    a single chunk's partial reproduces :func:`analyze_names` exactly,
    which is what keeps the sharded pipeline bit-identical to the
    serial pass.
    """

    total_names_seen: int = 0
    invalid_names: int = 0
    #: candidate -> (subdomain labels, public suffix), insertion-ordered.
    candidates: Dict[str, Tuple[Tuple[str, ...], Optional[str]]] = field(
        default_factory=dict
    )


class NameFold:
    """Incremental form of :func:`map_name_chunk`: one name at a time.

    Holds the working PSL next to the accumulating
    :class:`LeakagePartial` so record-at-a-time consumers (the fused
    corpus traversal) share the exact validate/dedup/split code path
    with the chunk-at-a-time map step.  Ship only :attr:`partial`
    across process boundaries — the PSL stays local.
    """

    __slots__ = ("psl", "partial")

    def __init__(self, psl: Optional[PublicSuffixList] = None) -> None:
        self.psl = psl or default_psl()
        self.partial = LeakagePartial()

    def add(self, raw: str) -> None:
        """Fold one raw CN/SAN name into the partial."""
        partial = self.partial
        partial.total_names_seen += 1
        name = normalize_name(raw)
        wildcard = name.startswith("*.")
        candidate = name[2:] if wildcard else name
        if not is_valid_fqdn(candidate):
            partial.invalid_names += 1
            return
        if candidate in partial.candidates:
            return
        labels, _registrable, suffix = self.psl.split(candidate)
        partial.candidates[candidate] = (tuple(labels), suffix)


def map_name_chunk(
    names: Iterable[str],
    psl: Optional[PublicSuffixList] = None,
) -> LeakagePartial:
    """The map step: validate, deduplicate, and PSL-split one chunk."""
    fold = NameFold(psl)
    for raw in names:
        fold.add(raw)
    return fold.partial


def reduce_name_partials(
    partials: Iterable[LeakagePartial],
) -> LeakageStats:
    """The reduce step: global dedup + label ranking, in chunk order.

    Chunks must arrive in stream order: the first chunk containing a
    FQDN determines when its labels enter the counters, matching the
    serial pass's first-occurrence semantics (and therefore its
    tie-breaking in ``most_common``).
    """
    stats = LeakageStats()
    seen: Set[str] = set()
    per_suffix: Dict[str, Counter] = defaultdict(Counter)
    for partial in partials:
        stats.total_names_seen += partial.total_names_seen
        stats.invalid_names += partial.invalid_names
        for candidate, (labels, suffix) in partial.candidates.items():
            if candidate in seen:
                continue
            seen.add(candidate)
            stats.unique_fqdns += 1
            if not labels:
                continue
            stats.fqdns_with_subdomains += 1
            for label in labels:
                stats.label_counts[label] += 1
                if suffix is not None:
                    per_suffix[suffix][label] += 1
    stats.per_suffix_labels = dict(per_suffix)
    return stats


def encode_leakage_partial(partial: LeakagePartial) -> dict:
    """JSON-serializable form of a partial (for shard checkpoints)."""
    return {
        "total": partial.total_names_seen,
        "invalid": partial.invalid_names,
        "candidates": [
            [candidate, list(labels), suffix]
            for candidate, (labels, suffix) in partial.candidates.items()
        ],
    }


def decode_leakage_partial(data: dict) -> LeakagePartial:
    """Inverse of :func:`encode_leakage_partial`."""
    return LeakagePartial(
        total_names_seen=data["total"],
        invalid_names=data["invalid"],
        candidates={
            candidate: (tuple(labels), suffix)
            for candidate, labels, suffix in data["candidates"]
        },
    )


def analyze_names(
    names: Iterable[str],
    psl: Optional[PublicSuffixList] = None,
) -> LeakageStats:
    """Run the Section 4.2 pipeline over a name corpus.

    Every FQDN is counted only once (paper Section 4.1); invalid names
    are dropped; wildcard labels (``*``) are not subdomain labels.
    This is the single-chunk case of the sharded map/reduce pipeline.
    """
    return reduce_name_partials([map_name_chunk(names, psl)])


def analyze_certificates(
    certificates: Iterable[Certificate],
    psl: Optional[PublicSuffixList] = None,
) -> LeakageStats:
    """Convenience wrapper: extract names from certs, then analyze."""
    return analyze_names(extract_names_from_certificates(certificates), psl)


def wordlist_overlap(
    wordlist: Iterable[str], stats: LeakageStats
) -> List[str]:
    """Which wordlist entries occur as CT subdomain labels (Section 4.3's
    subbrute/dnsrecon comparison)."""
    ct_labels = set(stats.label_counts)
    return sorted({word.lower().strip() for word in wordlist} & ct_labels)
