"""Section 3.4: finding certificates with invalid embedded SCTs.

The audit walks a certificate corpus exactly as the paper's pipeline
did over passive and active scan data: for every final certificate
with embedded SCTs, reconstruct the precertificate bytes, verify each
SCT against the issuing log's public key, and — for failures — root
cause the divergence by comparing against the logged precertificate
(the paper did this via crt.sh and direct CA inquiries).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.ct.log import CTLog
from repro.ct.sct import SctEntryType
from repro.ct.verification import (
    SctValidationResult,
    diagnose_mismatch,
    validate_embedded_scts,
)
from repro.x509.certificate import Certificate


@dataclass(frozen=True)
class InvalidSctFinding:
    """One certificate with at least one invalid embedded SCT."""

    ca_name: str
    certificate: Certificate
    validation: SctValidationResult
    root_cause: Tuple[str, ...]


@dataclass
class MisissuanceReport:
    """The audit's result: Section 3.4's "16 certificates from 4 CAs"."""

    certificates_checked: int = 0
    certificates_with_embedded_scts: int = 0
    findings: List[InvalidSctFinding] = field(default_factory=list)

    @property
    def invalid_certificate_count(self) -> int:
        return len(self.findings)

    @property
    def affected_cas(self) -> List[str]:
        return sorted({finding.ca_name for finding in self.findings})

    def by_ca(self) -> Dict[str, List[InvalidSctFinding]]:
        grouped: Dict[str, List[InvalidSctFinding]] = defaultdict(list)
        for finding in self.findings:
            grouped[finding.ca_name].append(finding)
        return dict(grouped)


def _index_precertificates(
    logs: Iterable[CTLog],
) -> Dict[Tuple[str, int], Certificate]:
    """(issuer, serial) -> logged precertificate, for root-cause analysis."""
    index: Dict[Tuple[str, int], Certificate] = {}
    for log in logs:
        for entry in log.entries:
            if entry.entry_type is SctEntryType.PRECERT_ENTRY:
                cert = entry.certificate
                index[(cert.issuer_org, cert.serial)] = cert
    return index


def audit_certificates(
    certificates: Iterable[Certificate],
    issuer_key_hashes: Dict[str, bytes],
    logs: Dict[str, CTLog],
) -> MisissuanceReport:
    """Validate embedded SCTs across a corpus and root-cause failures."""
    log_keys = {log.log_id: log.key for log in logs.values()}
    log_names = {log.log_id: log.name for log in logs.values()}
    precert_index = _index_precertificates(logs.values())
    report = MisissuanceReport()
    seen: set = set()
    for cert in certificates:
        identity = (cert.issuer_org, cert.serial)
        if identity in seen:
            continue
        seen.add(identity)
        report.certificates_checked += 1
        if not cert.has_embedded_scts:
            continue
        report.certificates_with_embedded_scts += 1
        issuer_key_hash = issuer_key_hashes.get(cert.issuer_org)
        if issuer_key_hash is None:
            continue
        result = validate_embedded_scts(cert, issuer_key_hash, log_keys, log_names)
        if result.all_valid:
            continue
        root_cause = _root_cause(cert, precert_index)
        report.findings.append(
            InvalidSctFinding(
                ca_name=cert.issuer_org,
                certificate=cert,
                validation=result,
                root_cause=root_cause,
            )
        )
    return report


def _root_cause(
    cert: Certificate,
    precert_index: Dict[Tuple[str, int], Certificate],
) -> Tuple[str, ...]:
    """Explain why the embedded SCTs are invalid.

    When the logged precertificate is available, the divergence is
    diagnosed structurally; a certificate whose TBS matches its
    precertificate but whose SCTs still fail can only have embedded
    SCTs belonging to a *different* certificate (the TeliaSonera
    re-issuance case).
    """
    precert = precert_index.get((cert.issuer_org, cert.serial))
    if precert is None:
        # NetLock-style: the final cert's issuer CN changed too, so the
        # (issuer, serial) lookup misses; retry on serial alone.
        candidates = [
            candidate
            for (issuer, serial), candidate in precert_index.items()
            if serial == cert.serial and issuer.split(" ")[0] in cert.issuer_org
        ]
        precert = candidates[0] if candidates else None
    if precert is None:
        return ("no matching precertificate found in any log",)
    reasons = diagnose_mismatch(precert, cert)
    if not reasons:
        return (
            "embedded SCTs do not belong to this certificate "
            "(likely reused from an earlier re-issued certificate)",
        )
    return tuple(reasons)
