"""Section 5: detecting phishing domains in CT data.

"Using simple regular expression matching techniques and visual
inspection, we further identify over 126k unique potential phishing
domains across the five common services … Our regular expressions
match domains which include the name of the service or a subset of
labels of its FQDN (e.g. login.live for Microsoft), and we exclude the
service's legitimate domains."

The detector below is that method: per-service regexes anchored at
label boundaries (so ``snapple.com`` does not match Apple), an
exclusion for the services' legitimate domains, and a separate rule
set for government-taxation impersonations.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dnscore.name import is_subdomain_of, normalize_name
from repro.dnscore.psl import PublicSuffixList, default_psl


@dataclass(frozen=True)
class ServiceRule:
    """Detection rule for one service."""

    service: str
    pattern: re.Pattern
    legitimate_domains: Tuple[str, ...]


def _rule(service: str, pattern: str, legitimate: Tuple[str, ...]) -> ServiceRule:
    return ServiceRule(service, re.compile(pattern), legitimate)


#: The five Table 3 services.  ``(^|[.-])`` anchors tokens at label
#: boundaries so benign names containing the token inside a word
#: ("snapple") do not match.
DEFAULT_RULES: Tuple[ServiceRule, ...] = (
    _rule("Apple", r"(^|[.-])(apple|appleid|icloud)", ("apple.com", "icloud.com")),
    _rule("PayPal", r"(^|[.-])paypal", ("paypal.com",)),
    _rule(
        "Microsoft",
        r"(^|[.-])(hotmail|outlook|microsoft)|login[.-]live",
        ("microsoft.com", "live.com", "hotmail.com", "outlook.com"),
    ),
    _rule("Google", r"(^|[.-])(google|gmail)", ("google.com", "gmail.com")),
    _rule("eBay", r"(^|[.-])ebay", ("ebay.com", "ebay.co.uk")),
)

#: Government-taxation impersonation patterns (ATO, HMRC, IRS).
GOVERNMENT_PATTERN = re.compile(
    r"(ato[.-]gov[.-]au|hmrc|irs[.-]gov|gov[.-]uk-|gov[.-]au[.-])"
)
GOVERNMENT_LEGITIMATE = ("gov.au", "gov.uk", "irs.gov")


@dataclass
class PhishingReport:
    """Detection outcome over a name corpus."""

    names_scanned: int = 0
    matches: Dict[str, List[str]] = field(default_factory=dict)
    government_matches: List[str] = field(default_factory=list)
    excluded_legitimate: int = 0

    def count(self, service: str) -> int:
        return len(self.matches.get(service, ()))

    @property
    def total_unique(self) -> int:
        return sum(len(names) for names in self.matches.values())

    def table3(self) -> List[Tuple[str, int, str]]:
        """(service, count, example) rows ordered by count."""
        rows = []
        for service, names in self.matches.items():
            example = names[0] if names else ""
            rows.append((service, len(names), example))
        rows.sort(key=lambda row: -row[1])
        return rows

    def suffix_affinity(
        self, service: str, psl: Optional[PublicSuffixList] = None
    ) -> Dict[str, float]:
        """Share of a service's matches per public suffix."""
        psl = psl or default_psl()
        counts: Dict[str, int] = defaultdict(int)
        names = self.matches.get(service, [])
        for name in names:
            suffix = psl.public_suffix(name)
            if suffix:
                counts[suffix] += 1
        total = len(names)
        return {sfx: c / total for sfx, c in counts.items()} if total else {}


class PhishingDetector:
    """Regex-based phishing detection over CT-visible names."""

    def __init__(self, rules: Iterable[ServiceRule] = DEFAULT_RULES) -> None:
        self._rules = list(rules)

    def classify(self, name: str) -> Optional[str]:
        """Return the impersonated service, or None."""
        candidate = normalize_name(name)
        for rule in self._rules:
            if not rule.pattern.search(candidate):
                continue
            if any(
                is_subdomain_of(candidate, legit)
                for legit in rule.legitimate_domains
            ):
                return None  # the service's own domain
            return rule.service
        return None

    def is_government_impersonation(self, name: str) -> bool:
        candidate = normalize_name(name)
        if any(is_subdomain_of(candidate, legit) for legit in GOVERNMENT_LEGITIMATE):
            return False
        return bool(GOVERNMENT_PATTERN.search(candidate))

    def scan(self, names: Iterable[str]) -> PhishingReport:
        """Run detection over a corpus; names are deduplicated."""
        report = PhishingReport(matches={rule.service: [] for rule in self._rules})
        seen = set()
        for raw in names:
            name = normalize_name(raw)
            if name in seen:
                continue
            seen.add(name)
            report.names_scanned += 1
            service = self.classify(name)
            if service is not None:
                report.matches[service].append(name)
            elif any(
                is_subdomain_of(name, legit)
                for rule in self._rules
                for legit in rule.legitimate_domains
                if rule.pattern.search(name)
            ):
                report.excluded_legitimate += 1
            if self.is_government_impersonation(name):
                report.government_matches.append(name)
        return report
