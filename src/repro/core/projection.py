"""Projecting CT adoption forward (the Figure 2 discussion).

Section 3.2: "As we can see the number of connections containing an
SCT stays relatively constant, even after Chrome enforcement started
in April 2018.  We assume that this picture will change in the near
future with gradual certificate replacement, and given the extreme
increase in logging as seen in Figure 1a."

This module turns that assumption into a model.  Certificates are
replaced at the end of their lifetime; from the enforcement date on,
replacements are CT-logged (the CA has no choice if it wants Chrome to
trust them).  Given the traffic's share of SCT connections at the
enforcement date and the lifetime mix of the certificates behind the
non-SCT share, :func:`project_adoption` produces the expected Figure 2
curve for the following months — the S-curve the authors anticipated.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import List, Optional, Sequence, Tuple

from repro.ct.policy import ENFORCEMENT_DATE


@dataclass(frozen=True)
class LifetimeBucket:
    """A slice of the non-CT certificate population.

    ``share`` is the bucket's fraction of non-SCT *connections*;
    ``lifetime_days`` how long its certificates live.  Replacement
    times are assumed uniform over the lifetime (issuance dates are
    spread out), so the bucket converts to CT linearly over one
    lifetime after enforcement.
    """

    name: str
    share: float
    lifetime_days: int


#: The 2018 certificate-lifetime landscape behind non-CT connections:
#: a fast 90-day (Let's Encrypt-style) slice, the one-year mainstream,
#: and the two/three-year long tail (the CAB Forum cap was 825 days).
DEFAULT_LIFETIME_MIX: Tuple[LifetimeBucket, ...] = (
    LifetimeBucket("90-day", 0.22, 90),
    LifetimeBucket("1-year", 0.48, 365),
    LifetimeBucket("2-year", 0.24, 730),
    LifetimeBucket("825-day", 0.06, 825),
)


@dataclass
class AdoptionProjection:
    """The projected Figure 2 continuation."""

    start: date
    days: List[date]
    projected_sct_share: List[float]

    def share_on(self, day: date) -> float:
        if day <= self.days[0]:
            return self.projected_sct_share[0]
        if day >= self.days[-1]:
            return self.projected_sct_share[-1]
        index = (day - self.days[0]).days
        return self.projected_sct_share[index]

    def date_reaching(self, target_share: float) -> Optional[date]:
        """First projected day at/above a target SCT share."""
        for day, share in zip(self.days, self.projected_sct_share):
            if share >= target_share:
                return day
        return None


def project_adoption(
    current_sct_share: float,
    *,
    start: date = ENFORCEMENT_DATE,
    horizon_days: int = 900,
    lifetime_mix: Sequence[LifetimeBucket] = DEFAULT_LIFETIME_MIX,
    #: Share of non-SCT connections that will never convert (internal
    #: services, legacy stacks pinned to non-CT roots, plain failures).
    never_convert_share: float = 0.06,
) -> AdoptionProjection:
    """Project the SCT connection share after the enforcement date.

    Each lifetime bucket's certificates are replaced uniformly over
    one lifetime, and every replacement issued on/after ``start`` is
    CT-logged.  The projected share therefore rises piecewise-linearly
    toward ``1 - never_convert_share x (non-SCT share)``.
    """
    if not 0.0 <= current_sct_share <= 1.0:
        raise ValueError("current_sct_share must be within [0, 1]")
    mix_total = sum(bucket.share for bucket in lifetime_mix)
    if abs(mix_total - 1.0) > 1e-6:
        raise ValueError(f"lifetime mix must sum to 1, got {mix_total}")
    non_sct = 1.0 - current_sct_share
    convertible = non_sct * (1.0 - never_convert_share)
    days: List[date] = []
    shares: List[float] = []
    for offset in range(horizon_days + 1):
        converted_fraction = 0.0
        for bucket in lifetime_mix:
            progress = min(1.0, offset / bucket.lifetime_days)
            converted_fraction += bucket.share * progress
        share = current_sct_share + convertible * converted_fraction
        days.append(start + timedelta(days=offset))
        shares.append(min(1.0, share))
    return AdoptionProjection(start=start, days=days, projected_sct_share=shares)


def render_projection(
    projection: AdoptionProjection, *, milestones: Sequence[float] = (0.5, 0.75, 0.9)
) -> str:
    """A compact text rendering of the projection."""
    from repro.util.format import human_percent
    from repro.util.tables import ascii_line_chart

    chart = ascii_line_chart(
        {"projected_SCT_share_%": [s * 100 for s in projection.projected_sct_share]},
        y_label="percent of connections",
        x_labels=(projection.days[0].isoformat(), projection.days[-1].isoformat()),
    )
    lines = [
        "Projected CT adoption after Chrome enforcement "
        "(gradual certificate replacement)",
        chart,
    ]
    for milestone in milestones:
        reached = projection.date_reaching(milestone)
        lines.append(
            f"  {human_percent(milestone, 0)} of connections: "
            + (reached.isoformat() if reached else "beyond horizon")
        )
    return "\n".join(lines)
