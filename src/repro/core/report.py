"""Text renderings of every reproduced table and figure.

Each ``render_*`` function takes the corresponding analysis output and
returns a string laid out like the paper's artifact (tables as aligned
columns, figures as ASCII charts/heatmaps).  The benchmark harness
prints these so a run regenerates the paper's evaluation section.
"""

from __future__ import annotations

import math
from datetime import date
from typing import Dict, List, Sequence, Tuple

from repro.core.adoption import AdoptionStats, Table1Row, figure2_series
from repro.core.enumeration import EnumerationReport
from repro.core.evolution import LogLoadReport
from repro.core.honeypot import render_table4
from repro.core.leakage import LeakageStats
from repro.core.misissuance import MisissuanceReport
from repro.core.phishdetect import PhishingReport
from repro.core.serversupport import ServerSupportStats, top_per_cert_logs
from repro.util.format import human_percent, si_count
from repro.util.stats import Counter2D
from repro.util.tables import Table, ascii_heatmap, ascii_line_chart


def render_figure1a(
    growth: Dict[str, List[Tuple[date, int]]],
    weight: float = 1.0,
) -> str:
    """Figure 1a: cumulative precertificate growth per CA (log10 y)."""
    if not growth:
        return "(no data)"
    start = min(series[0][0] for series in growth.values() if series)
    end = max(series[-1][0] for series in growth.values() if series)
    days = (end - start).days + 1
    chart_series: Dict[str, List[float]] = {}
    for ca, series in sorted(
        growth.items(), key=lambda kv: -(kv[1][-1][1] if kv[1] else 0)
    ):
        dense = [0.0] * days
        for day, value in series:
            dense[(day - start).days] = value
        running = 0.0
        for i in range(days):
            running = max(running, dense[i])
            dense[i] = math.log10(running * weight) if running else 0.0
        chart_series[ca] = dense
    chart = ascii_line_chart(
        chart_series,
        y_label="log10(cumulative precertificates)",
        x_labels=(start.isoformat(), end.isoformat()),
    )
    totals = Table(["CA", "Cumulative precerts (sim)", "(scaled to real)"])
    for ca, series in sorted(growth.items(), key=lambda kv: -kv[1][-1][1]):
        totals.add_row(ca, series[-1][1], si_count(series[-1][1] * weight))
    return f"Figure 1a — cumulative logged precertificates by CA\n{chart}\n\n{totals}"


def render_figure1b(shares: Dict[date, Dict[str, float]]) -> str:
    """Figure 1b: each CA's share of daily logging, sampled monthly."""
    if not shares:
        return "(no data)"
    days = sorted(shares)
    cas = sorted({ca for day in shares.values() for ca in day})
    table = Table(["Month"] + cas)
    current_month = None
    for day in days:
        month = f"{day.year:04d}-{day.month:02d}"
        if month == current_month:
            continue
        current_month = month
        row = [month]
        for ca in cas:
            value = shares[day].get(ca, 0.0)
            row.append(f"{value * 100:.0f}%" if value else ".")
        table.add_row(*row)
    return "Figure 1b — relative daily precert logging rate per CA (monthly sample)\n" + table.render()


def render_figure1c(matrix: Counter2D) -> str:
    """Figure 1c: the sparse CA x log heatmap for April 2018."""
    values = {
        (str(row), str(col)): float(count)
        for (row, col), count in matrix.cells().items()
    }
    rows = [str(r) for r in matrix.rows()]
    cols = [str(c) for c in matrix.cols()]
    heat = ascii_heatmap(cols, rows, {(c, r): values.get((r, c), 0.0) for r in rows for c in cols})
    return (
        "Figure 1c — distribution of precertificate logging by CA (columns) "
        f"over CT logs (rows), April 2018; matrix density {matrix.density():.1%}\n" + heat
    )


def render_figure2(stats: AdoptionStats) -> str:
    """Figure 2: percent of daily connections containing an SCT."""
    days, series = figure2_series(stats)
    if not days:
        return "(no data)"
    chart = ascii_line_chart(
        series,
        y_label="percent of daily connections",
        x_labels=(days[0].isoformat(), days[-1].isoformat()),
    )
    return "Figure 2 — percent of daily connections containing an SCT\n" + chart


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Table 1: top CT logs by observed connections."""
    table = Table(["CT Log", "Cert SCTs", "", "TLS SCTs", ""])
    for row in rows:
        table.add_row(
            row.log_name,
            si_count(row.cert_scts),
            f"({human_percent(row.cert_share)})",
            si_count(row.tls_scts),
            f"({human_percent(row.tls_share)})",
        )
    return "Table 1 — top CT logs by number of observed connections\n" + table.render()


def render_section32(stats: AdoptionStats) -> str:
    """The Section 3.2 prose numbers."""
    lines = [
        "Section 3.2 — CT adoption in passive traffic",
        f"  total connections:            {si_count(stats.total)}",
        f"  with any SCT:                 {si_count(stats.with_any_sct)} ({human_percent(stats.share('with_any_sct'))})",
        f"  SCT in certificate:           {si_count(stats.with_cert_sct)} ({human_percent(stats.share('with_cert_sct'))})",
        f"  SCT in TLS extension:         {si_count(stats.with_tls_sct)} ({human_percent(stats.share('with_tls_sct'))})",
        f"  SCT in stapled OCSP:          {si_count(stats.with_ocsp_sct)} ({human_percent(stats.share('with_ocsp_sct'))})",
        f"  cert+TLS overlap:             {si_count(stats.overlap_cert_tls)}",
        f"  cert+OCSP overlap:            {stats.overlap_cert_ocsp}",
        f"  TLS+OCSP overlap:             {si_count(stats.overlap_tls_ocsp)}",
        f"  clients signalling support:   {si_count(stats.client_support)} ({human_percent(stats.share('client_support'))})",
    ]
    return "\n".join(lines)


def render_section33(stats: ServerSupportStats, weight: float = 1.0) -> str:
    """The Section 3.3 prose numbers."""
    lines = [
        "Section 3.3 — server-side CT support (active scan)",
        f"  unique certificates:          {si_count(stats.unique_certificates * weight)}",
        f"  with embedded SCT:            {si_count(stats.certs_with_embedded_sct * weight)} ({human_percent(stats.embedded_share, 1)})",
        f"  SCT via TLS extension:        {si_count(stats.certs_with_tls_ext_sct * weight)}",
        f"  SCT via stapled OCSP:         {si_count(stats.certs_with_ocsp_sct * weight)}",
        f"  IPs serving an SCT:           {si_count(stats.ips_serving_sct * weight)}",
        f"  certificates per SCT IP:      {stats.certs_per_sct_ip:.1f}x (SNI multiplexing)",
        "  per-certificate log shares:",
    ]
    for name, share in top_per_cert_logs(stats):
        lines.append(f"    {name:30s} {share * 100:5.1f}%")
    return "\n".join(lines)


def render_section34(report: MisissuanceReport) -> str:
    """The Section 3.4 findings."""
    lines = [
        "Section 3.4 — certificates with invalid embedded SCTs",
        f"  certificates checked:         {report.certificates_checked}",
        f"  with embedded SCTs:           {report.certificates_with_embedded_scts}",
        f"  invalid:                      {report.invalid_certificate_count} "
        f"from {len(report.affected_cas)} CAs",
    ]
    for ca, findings in sorted(report.by_ca().items()):
        lines.append(f"  {ca}: {len(findings)} certificate(s)")
        lines.append(f"    root cause: {findings[0].root_cause[0]}")
    return "\n".join(lines)


def render_table2(stats: LeakageStats, weight: float = 1.0) -> str:
    """Table 2: top 20 subdomain labels in CT-logged certificates."""
    table = Table(["#", "SDL", "Count", "(scaled)"])
    for rank, (label, count) in enumerate(stats.top_labels(20), start=1):
        table.add_row(rank, label, count, si_count(count * weight))
    extra = [
        f"  top label share: {human_percent(stats.label_share(stats.top_labels(1)[0][0]), 1)}",
        f"  top-10 share:    {human_percent(stats.top_k_share(10), 1)}",
        f"  invalid names filtered: {stats.invalid_names}",
    ]
    return (
        "Table 2 — top subdomain labels (SDL) in CT-logged certificates\n"
        + table.render()
        + "\n"
        + "\n".join(extra)
    )


def render_section43(report: EnumerationReport, scale: float) -> str:
    """The Section 4.3 enumeration outcome."""
    weight = 1.0 / scale if scale else 1.0
    lines = [
        "Section 4.3 — constructing and verifying FQDNs from CT data",
        f"  eligible labels (>=100k occurrences): {len(report.eligible_labels)}",
        f"  candidate FQDNs:              {si_count(report.candidate_count)} "
        f"(scaled ~{si_count(report.candidate_count * weight)})",
        f"  candidates answering:         {si_count(report.answered)} ({human_percent(report.rate('answered'), 1)})",
        f"  controls answering:           {si_count(report.control_answered)} ({human_percent(report.rate('control_answered'), 1)})",
        f"  genuine discoveries:          {si_count(report.discovered)} ({human_percent(report.rate('discovered'), 1)})",
        f"  known to Sonar:               {si_count(report.known_to_sonar)}",
        f"  new, previously unknown:      {si_count(report.new_unknown)}",
    ]
    if report.discovered_without_controls is not None:
        lines.append(
            f"  [ablation] without control queries: "
            f"{si_count(report.discovered_without_controls)} 'discoveries' "
            f"(wildcard/default-A zones not ruled out)"
        )
    if report.discovered_without_routing_filter is not None:
        lines.append(
            f"  [ablation] without routing filter:  "
            f"{si_count(report.discovered_without_routing_filter)} 'discoveries' "
            f"(misconfigured DNS servers not ruled out)"
        )
    return "\n".join(lines)


def render_table3(report: PhishingReport, weight: float = 1.0) -> str:
    """Table 3: potential phishing domains identified in CT."""
    table = Table(["Service", "Count", "(scaled)", "Example"])
    for service, count, example in report.table3():
        table.add_row(service, count, si_count(count * weight), example)
    gov = report.government_matches[:3]
    lines = [
        "Table 3 — potential phishing domains identified in CT",
        table.render(),
        f"  total unique: {report.total_unique} (scaled ~{si_count(report.total_unique * weight)})",
        f"  government-taxation impersonations: {len(report.government_matches)}",
    ]
    for example in gov:
        lines.append(f"    e.g. {example}")
    return "\n".join(lines)


def render_advisories(advisories: Sequence) -> str:
    """Render watchlist advisories (``repro.core.watchlist.Advisory``)."""
    if not advisories:
        return "No advisories."
    table = Table(["Time", "Operator", "Kind", "Name", "Detail"])
    for advisory in advisories:
        table.add_row(
            advisory.observed_at.strftime("%m-%d %H:%M:%S"),
            advisory.operator,
            advisory.kind,
            advisory.certificate_name,
            advisory.detail,
        )
    return "Watchlist advisories\n" + table.render()


def render_audit(report) -> str:
    """Render a log-audit outcome (``repro.ct.auditor.AuditReport``)."""
    lines = [
        "Log audit",
        f"  STHs verified:       {report.sths_verified}",
        f"  consistency checks:  {report.consistency_checks}",
        f"  inclusion checks:    {report.inclusion_checks}",
        f"  findings:            {len(report.findings)}",
    ]
    for finding in report.findings:
        lines.append(f"    [{finding.kind}] {finding.log_name}: {finding.detail}")
    return "\n".join(lines)


def render_log_load(report: LogLoadReport) -> str:
    """Section 2's concentration findings."""
    lines = [
        "Log-load concentration (Section 2 discussion)",
        f"  Gini coefficient of April 2018 log load: {report.gini_coefficient:.2f}",
        f"  top log's share of entries:              {human_percent(report.top_share, 1)}",
        f"  CA x log matrix density:                 {human_percent(report.matrix_density, 1)}",
        f"  overloaded logs: {', '.join(report.overloaded_logs) or 'none'}",
    ]
    return "\n".join(lines)


__all__ = [
    "render_advisories",
    "render_audit",
    "render_figure1a",
    "render_figure1b",
    "render_figure1c",
    "render_figure2",
    "render_log_load",
    "render_section32",
    "render_section33",
    "render_section34",
    "render_section43",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
]
