"""Section 3.3: server-side CT support from active scans.

Consumes the TLS scanner's records and computes the paper's
statistics: unique-certificate counts per SCT channel, SCT-serving
IPs, SNI multiplexing, and the per-certificate log distribution whose
contrast with Table 1 is the section's main point ("characteristics of
certificates generally encountered by users … vary strongly from
those offered across the Internet").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.ct.sct import SCT_LIST_EXTENSION_OID, SignedCertificateTimestamp
from repro.tls.scanner import ScanRecord


@dataclass
class ServerSupportStats:
    """Aggregates over one active scan."""

    unique_certificates: int = 0
    certs_with_embedded_sct: int = 0
    certs_with_tls_ext_sct: int = 0
    certs_with_ocsp_sct: int = 0
    ips_serving_sct: int = 0
    total_ips: int = 0
    #: Among embedded-SCT certs, fraction carrying an SCT of each log.
    per_cert_log_shares: Dict[str, float] = field(default_factory=dict)
    #: Average certificates per SCT-serving IP (the ~12x multiplexing).
    certs_per_sct_ip: float = 0.0

    @property
    def embedded_share(self) -> float:
        if self.unique_certificates == 0:
            return 0.0
        return self.certs_with_embedded_sct / self.unique_certificates


def analyze_scan(
    records: Iterable[ScanRecord],
    log_names_by_id: Dict[bytes, str],
) -> ServerSupportStats:
    """Compute Section 3.3 statistics from scan records."""
    stats = ServerSupportStats()
    seen_certs: Set[bytes] = set()
    embedded_cert_logs: Dict[bytes, Tuple[str, ...]] = {}
    tls_ext_certs: Set[bytes] = set()
    ocsp_certs: Set[bytes] = set()
    ip_certs: Dict[str, Set[bytes]] = defaultdict(set)
    ip_serves_sct: Dict[str, bool] = defaultdict(bool)

    for record in records:
        fingerprint = record.certificate.fingerprint()
        ip_certs[record.ip].add(fingerprint)
        has_sct = False
        if fingerprint not in seen_certs:
            seen_certs.add(fingerprint)
            extension = record.certificate.get_extension(SCT_LIST_EXTENSION_OID)
            if extension is not None:
                logs = tuple(
                    log_names_by_id.get(sct.log_id, "unknown log")
                    for sct in SignedCertificateTimestamp.decode_list(extension.value)
                )
                embedded_cert_logs[fingerprint] = logs
        if fingerprint in embedded_cert_logs:
            has_sct = True
        if record.tls_extension_scts:
            tls_ext_certs.add(fingerprint)
            has_sct = True
        if record.ocsp_scts:
            ocsp_certs.add(fingerprint)
            has_sct = True
        if has_sct:
            ip_serves_sct[record.ip] = True

    stats.unique_certificates = len(seen_certs)
    stats.certs_with_embedded_sct = len(embedded_cert_logs)
    stats.certs_with_tls_ext_sct = len(tls_ext_certs)
    stats.certs_with_ocsp_sct = len(ocsp_certs)
    stats.total_ips = len(ip_certs)
    sct_ips = [ip for ip, serves in ip_serves_sct.items() if serves]
    stats.ips_serving_sct = len(sct_ips)
    if sct_ips:
        stats.certs_per_sct_ip = sum(
            len(ip_certs[ip]) for ip in sct_ips
        ) / len(sct_ips)

    log_counts: Dict[str, int] = defaultdict(int)
    for logs in embedded_cert_logs.values():
        for name in set(logs):
            log_counts[name] += 1
    if embedded_cert_logs:
        total = len(embedded_cert_logs)
        stats.per_cert_log_shares = {
            name: count / total for name, count in log_counts.items()
        }
    return stats


def top_per_cert_logs(
    stats: ServerSupportStats, top: int = 6
) -> List[Tuple[str, float]]:
    """The per-certificate log ranking (Nimbus2018 74 %, Icarus 71 %, …)."""
    return sorted(
        stats.per_cert_log_shares.items(), key=lambda kv: -kv[1]
    )[:top]


def passive_vs_active_contrast(
    per_connection_shares: Dict[str, float],
    stats: ServerSupportStats,
) -> List[Tuple[str, float, float]]:
    """The section's punchline: per-connection vs per-certificate shares.

    Returns (log, share_in_traffic, share_in_cert_population) rows for
    every log present in either view, sorted by the absolute gap.
    """
    names = set(per_connection_shares) | set(stats.per_cert_log_shares)
    rows = [
        (
            name,
            per_connection_shares.get(name, 0.0),
            stats.per_cert_log_shares.get(name, 0.0),
        )
        for name in names
    ]
    rows.sort(key=lambda row: -abs(row[1] - row[2]))
    return rows
