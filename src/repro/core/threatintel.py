"""Turning honeypot observations into defensive intelligence.

The paper's conclusion: "leaked domain names are actively used in
Internet scanning, some of it likely malicious … We hope our results
encourage work on countermeasures."  This module is such a
countermeasure: it scores the actors a CT honeypot observes and emits
a blocklist.

Scoring follows the paper's own reasoning in Section 6.2:

* querying a CT-leaked name is *expected* behaviour for research and
  threat-intelligence backends — not malicious by itself;
* connecting to the leaked endpoints, and especially port-scanning
  them, is target acquisition;
* none of the inbound scanners followed best practices (informative
  rDNS, abuse contacts), which the paper used to exclude benevolent
  scanners — represented here via the AS registry's
  ``follows_scanning_best_practices`` flag;
* a bulletproof-hosting AS (Quasi Networks "ignores all abuse
  messages") raises the score further.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.honeypot import HoneypotResult
from repro.inet.asn import AS_REGISTRY

#: Score weights.
SCORE_CONNECTED = 2.0
SCORE_PER_EXTRA_PORT = 0.5
SCORE_NO_BEST_PRACTICES = 1.0
SCORE_BULLETPROOF_AS = 3.0
#: The machine looked the name up (via ECS-correlated queries) before
#: connecting: informed, CT-driven targeting rather than random scans.
SCORE_INFORMED_TARGETING = 2.0
#: Scores at or above this land on the blocklist.
BLOCK_THRESHOLD = 5.0


@dataclass
class ActorProfile:
    """Everything observed about one source IP."""

    ip: str
    asn: int
    dns_queries: int = 0
    #: DNS queries whose EDNS Client Subnet covers this IP — how the
    #: paper correlated stub clients behind Google DNS with the
    #: machines that later connected (Section 6.2).
    ecs_correlated_queries: int = 0
    connections: int = 0
    distinct_ports: Set[int] = field(default_factory=set)
    touched_machines: Set[str] = field(default_factory=set)

    @property
    def as_name(self) -> str:
        asys = AS_REGISTRY.get(self.asn)
        return asys.name if asys else f"AS{self.asn}"

    def score(self) -> float:
        """Maliciousness score per the Section 6.2 reasoning."""
        value = 0.0
        if self.connections:
            value += SCORE_CONNECTED
            value += SCORE_PER_EXTRA_PORT * max(0, len(self.distinct_ports) - 1)
            if self.ecs_correlated_queries:
                value += SCORE_INFORMED_TARGETING
            asys = AS_REGISTRY.get(self.asn)
            if asys is None or not asys.follows_scanning_best_practices:
                value += SCORE_NO_BEST_PRACTICES
            if asys is not None and asys.category == "bulletproof":
                value += SCORE_BULLETPROOF_AS
        return value


@dataclass
class ThreatReport:
    """Outcome of the honeypot-driven scoring."""

    actors: Dict[str, ActorProfile]

    def ranked(self) -> List[ActorProfile]:
        return sorted(
            self.actors.values(), key=lambda a: (-a.score(), a.ip)
        )

    def blocklist(self, threshold: float = BLOCK_THRESHOLD) -> List[str]:
        """Source IPs whose score crosses the threshold."""
        return [actor.ip for actor in self.ranked() if actor.score() >= threshold]

    def scanners(self) -> List[ActorProfile]:
        return [a for a in self.actors.values() if len(a.distinct_ports) > 1]


def build_threat_report(result: HoneypotResult) -> ThreatReport:
    """Score every actor seen by the honeypot's two sensors."""
    actors: Dict[str, ActorProfile] = {}

    def profile(ip: str, asn: Optional[int]) -> ActorProfile:
        actor = actors.get(ip)
        if actor is None:
            actor = actors[ip] = ActorProfile(ip=ip, asn=asn or 0)
        return actor

    for entry in result.auth_server.query_log:
        if entry.source_asn == 64501:  # the CA's own validation
            continue
        profile(entry.source_ip, entry.source_asn).dns_queries += 1

    for conn in result.connections:
        if conn.src_asn == 64501 or conn.ipv6:
            continue
        actor = profile(conn.src_ip, conn.src_asn)
        actor.connections += 1
        actor.distinct_ports.add(conn.dst_port)
        actor.touched_machines.add(conn.dst_ip)

    # The ECS correlation of Section 6.2: stub clients that queried via
    # Google Public DNS are linked to connecting machines through the
    # /24 the resolver exposed.
    for entry in result.auth_server.query_log:
        if entry.client_subnet is None or entry.source_asn == 64501:
            continue
        for actor in actors.values():
            if actor.connections and entry.client_subnet.covers(actor.ip):
                actor.ecs_correlated_queries += 1
    return ThreatReport(actors=actors)


def render_threat_report(report: ThreatReport, top: int = 8) -> str:
    """Human-readable ranking plus the blocklist."""
    from repro.util.tables import Table

    table = Table(["IP", "AS", "score", "DNS q", "ECS q", "conns", "ports", "machines"])
    for actor in report.ranked()[:top]:
        table.add_row(
            actor.ip,
            f"{actor.asn} ({actor.as_name})",
            f"{actor.score():.1f}",
            actor.dns_queries,
            actor.ecs_correlated_queries,
            actor.connections,
            len(actor.distinct_ports),
            len(actor.touched_machines),
        )
    block = report.blocklist()
    return (
        "Honeypot-derived threat intelligence\n"
        + table.render()
        + f"\nblocklist (score >= {BLOCK_THRESHOLD}): {block or 'empty'}"
    )
