"""A CT-based domain watchlist/advisory service (Section 5).

"Facebook and CertSpotter even offer notification services for
operators to receive advisories about potential phishing attempts
against their users.  However, their methods are not disclosed."

This module is an open implementation: operators register the domains
they care about; the service follows CT logs through a streaming
monitor and raises advisories for

* **new certificates for the watched domains themselves** (catching
  unauthorized issuance — CT's original purpose), and
* **lookalike registrations** impersonating a watched domain, using
  the Section 5 detection grammar (target embedding, hyphenation,
  suffix abuse).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import datetime
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ct.log import CTLog
from repro.ct.monitor import LogObservation, StreamingMonitor
from repro.dnscore.name import is_subdomain_of, normalize_name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.util.rng import SeededRng


@dataclass(frozen=True)
class WatchEntry:
    """One watched registrable domain and who to notify."""

    domain: str
    operator: str
    #: Issuers the operator uses; others trigger unauthorized-issuance
    #: advisories (empty = any issuer is expected).
    expected_issuers: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Advisory:
    """One notification to an operator."""

    operator: str
    watched_domain: str
    kind: str  # "issuance" | "unauthorized-issuance" | "lookalike"
    certificate_name: str
    log_name: str
    observed_at: datetime
    detail: str = ""


class WatchlistService:
    """Follows logs and notifies operators about relevant certificates."""

    def __init__(
        self,
        psl: Optional[PublicSuffixList] = None,
        seed: int = 1,
        latency_range_s: Tuple[float, float] = (30.0, 120.0),
    ) -> None:
        self._psl = psl or default_psl()
        self._entries: Dict[str, WatchEntry] = {}
        self._patterns: Dict[str, re.Pattern] = {}
        self._monitor = StreamingMonitor(
            "watchlist", SeededRng(seed, "watchlist"), latency_range_s
        )
        self.advisories: List[Advisory] = []

    # -- registration --------------------------------------------------------

    def watch(self, entry: WatchEntry) -> None:
        domain = normalize_name(entry.domain)
        self._entries[domain] = entry
        owner = domain.split(".")[0]
        # Lookalike grammar: the owner label (or the full domain with
        # dots turned into separators) embedded at a label boundary.
        escaped_domain = re.escape(domain).replace(r"\.", r"[.-]")
        self._patterns[domain] = re.compile(
            rf"(^|[.-])({re.escape(owner)}|{escaped_domain})(?=$|[.-])"
        )

    def watched_domains(self) -> List[str]:
        return sorted(self._entries)

    # -- classification ------------------------------------------------------

    def classify_name(
        self, name: str, issuer: str = ""
    ) -> Optional[Tuple[WatchEntry, str, str]]:
        """Return (entry, kind, detail) when a name concerns a watch entry."""
        candidate = normalize_name(name)
        for domain, entry in self._entries.items():
            if is_subdomain_of(candidate, domain):
                if entry.expected_issuers and issuer not in entry.expected_issuers:
                    return (
                        entry,
                        "unauthorized-issuance",
                        f"issued by {issuer!r}, expected one of {entry.expected_issuers}",
                    )
                return entry, "issuance", "certificate for a watched name"
            if self._patterns[domain].search(candidate):
                return entry, "lookalike", f"embeds {domain!r} outside its registrable domain"
        return None

    # -- the monitoring loop ---------------------------------------------------

    def process(self, logs: Iterable[CTLog]) -> List[Advisory]:
        """Consume new log entries; returns newly raised advisories."""
        fresh: List[Advisory] = []
        for log in logs:
            for obs in self._monitor.observe(log):
                fresh.extend(self._handle(obs))
        self.advisories.extend(fresh)
        return fresh

    def _handle(self, obs: LogObservation) -> List[Advisory]:
        advisories = []
        issuer = obs.entry.certificate.issuer_org
        seen: Set[Tuple[str, str]] = set()
        for name in obs.dns_names:
            match = self.classify_name(name, issuer)
            if match is None:
                continue
            entry, kind, detail = match
            key = (entry.domain, kind)
            if key in seen:
                continue  # one advisory per cert per (domain, kind)
            seen.add(key)
            advisories.append(
                Advisory(
                    operator=entry.operator,
                    watched_domain=entry.domain,
                    kind=kind,
                    certificate_name=name,
                    log_name=obs.log_name,
                    observed_at=obs.observed_at,
                    detail=detail,
                )
            )
        return advisories

    def advisories_for(self, operator: str) -> List[Advisory]:
        return [a for a in self.advisories if a.operator == operator]

    # -- CertFeed integration ----------------------------------------------

    def feed_subscriber(self):
        """A callback suitable for :meth:`repro.ct.feed.CertFeed.subscribe`.

        Lets the watchlist consume a shared CertStream-style feed
        instead of running its own log cursors; advisories accumulate
        in :attr:`advisories` exactly as with :meth:`process`.
        """

        def on_event(event) -> None:  # event: repro.ct.feed.FeedEvent
            issuer = event.entry.certificate.issuer_org
            seen: Set[Tuple[str, str]] = set()
            for name in event.dns_names:
                match = self.classify_name(name, issuer)
                if match is None:
                    continue
                entry, kind, detail = match
                key = (entry.domain, kind)
                if key in seen:
                    continue
                seen.add(key)
                self.advisories.append(
                    Advisory(
                        operator=entry.operator,
                        watched_domain=entry.domain,
                        kind=kind,
                        certificate_name=name,
                        log_name=event.log_name,
                        observed_at=event.seen_at,
                        detail=detail,
                    )
                )

        return on_event
