"""Certificate Transparency substrate (RFC 6962).

Implements the CT machinery the paper measures:

* :mod:`repro.ct.merkle` — Merkle hash trees with inclusion and
  consistency proofs (the append-only ledger structure);
* :mod:`repro.ct.sct` — Signed Certificate Timestamps;
* :mod:`repro.ct.log` — log servers with the precertificate submission
  flow, signed tree heads, and a capacity/overload model (the Nimbus
  performance incident of Section 2);
* :mod:`repro.ct.loglist` — the registry of logs in the study
  (operators and Chrome inclusion dates of Table 1);
* :mod:`repro.ct.policy` — Chrome's CT policy (diverse-operator rule);
* :mod:`repro.ct.monitor` — streaming and batch log monitors, the
  mechanism behind Section 6's honeypot observations;
* :mod:`repro.ct.verification` — embedded-SCT validation by
  precertificate reconstruction (Section 3.4);
* :mod:`repro.ct.server` — the RFC 6962 HTTP front end
  (:class:`LogServer`) serving get-sth / get-entries /
  get-proof-by-hash / get-sth-consistency / add-pre-chain over real
  sockets, plus the matching :class:`LogClient` and the Merkle-verified
  :func:`harvest_log` replica builder;
* :mod:`repro.ct.sequencer` — the MMD sequencer
  (:class:`LogSequencer`): batched Merkle writes with immediate SCT
  issuance, the write path that survives Section 2's submission storm.
"""

from repro.ct.auditor import (
    AuditFinding,
    Equivocation,
    GossipPool,
    LogAuditor,
    make_split_view_log,
)
from repro.ct.log import (
    BatchDigest,
    CTLog,
    LogEntry,
    LogEntryType,
    LogOverloadedError,
)
from repro.ct.loglist import KNOWN_LOGS, LogInfo, build_default_logs
from repro.ct.redaction import RedactionPolicy, redact_certificate, redact_name
from repro.ct.storage import dump_log, load_log
from repro.ct.merkle import (
    MerkleTree,
    verify_consistency_proof,
    verify_inclusion_proof,
)
from repro.ct.monitor import (
    BatchMonitor,
    HttpTransport,
    InMemoryTransport,
    LightweightMonitor,
    LogObservation,
    LogTransport,
    StreamingMonitor,
    as_transport,
    domain_matches,
    watch_logs,
)
from repro.ct.policy import ChromeCTPolicy, PolicyVerdict
from repro.ct.sct import SignedCertificateTimestamp, SctChannel
from repro.ct.sequencer import LogSequencer, MergeResult
from repro.ct.server import (
    HarvestedLog,
    LogClient,
    LogClientError,
    LogServer,
    SplitView,
    default_split_partition,
    harvest_log,
)
from repro.ct.verification import SctValidationResult, validate_embedded_scts

__all__ = [
    "AuditFinding",
    "BatchDigest",
    "BatchMonitor",
    "CTLog",
    "Equivocation",
    "GossipPool",
    "HttpTransport",
    "InMemoryTransport",
    "LightweightMonitor",
    "LogAuditor",
    "LogTransport",
    "SplitView",
    "as_transport",
    "default_split_partition",
    "domain_matches",
    "make_split_view_log",
    "watch_logs",
    "RedactionPolicy",
    "dump_log",
    "load_log",
    "redact_certificate",
    "redact_name",
    "ChromeCTPolicy",
    "HarvestedLog",
    "KNOWN_LOGS",
    "LogClient",
    "LogClientError",
    "LogServer",
    "harvest_log",
    "LogEntry",
    "LogEntryType",
    "LogInfo",
    "LogObservation",
    "LogOverloadedError",
    "LogSequencer",
    "MergeResult",
    "MerkleTree",
    "PolicyVerdict",
    "SctChannel",
    "SctValidationResult",
    "SignedCertificateTimestamp",
    "StreamingMonitor",
    "build_default_logs",
    "validate_embedded_scts",
    "verify_consistency_proof",
    "verify_inclusion_proof",
]
