"""CT auditing: verifying that logs keep their promises.

Section 2 of the paper: "Logs are append-only and use Merkle Hash
Trees, which allows to detect tampering with a log's history."  This
module is the machinery that actually does the detecting:

* :class:`LogAuditor` follows one log over time, verifying STH
  signatures, checking consistency proofs between consecutive tree
  heads (append-only), and auditing SCTs for inclusion within the
  log's maximum merge delay;
* :class:`GossipPool` cross-checks STHs observed by *different*
  vantage points, catching split-view attacks where a log shows
  diverging histories to different clients (the attack CT's design
  must prevent for the "full view" claim to hold).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.ct.log import CTLog, SignedTreeHead
from repro.ct.merkle import verify_consistency_proof, verify_inclusion_proof
from repro.ct.sct import (
    SignedCertificateTimestamp,
    precert_signing_input,
    x509_signing_input,
    SctEntryType,
)
from repro.util.timeutil import from_timestamp_ms
from repro.x509.certificate import Certificate

if TYPE_CHECKING:  # avoid a runtime import cycle through repro.ct
    from repro.obs.events import EventLog
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class AuditFinding:
    """One problem an auditor observed."""

    log_name: str
    kind: str  # bad-sth-signature | inconsistent-history | missing-entry | mmd-violation | split-view
    detail: str
    observed_at: Optional[datetime] = None


@dataclass
class AuditReport:
    """Accumulated findings of an audit run."""

    findings: List[AuditFinding] = field(default_factory=list)
    sths_verified: int = 0
    consistency_checks: int = 0
    inclusion_checks: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def add(self, finding: AuditFinding) -> None:
        self.findings.append(finding)


class LogAuditor:
    """Follows a single log and verifies its behaviour over time.

    With a :class:`~repro.obs.MetricsRegistry` attached the auditor
    records a ``auditor.poll_seconds{log=}`` latency histogram, a
    ``auditor.tree_size{log=}`` gauge, consistency-check pass/fail
    counters, and an ``auditor.findings{log=,kind=}`` counter per
    finding; an attached :class:`~repro.obs.events.EventLog` receives
    one ``auditor_poll`` event per poll and one ``audit_finding``
    event per problem.
    """

    def __init__(
        self,
        log: CTLog,
        *,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        self._log = log
        self._last_sth: Optional[SignedTreeHead] = None
        self.report = AuditReport()
        self.metrics = metrics
        self.events = events

    def _inc(self, name: str, **labels: object) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, log=self._log.name, **labels)

    def _add_finding(self, finding: AuditFinding) -> None:
        self.report.add(finding)
        self._inc("auditor.findings", kind=finding.kind)
        if self.events is not None:
            self.events.emit(
                "audit_finding",
                log=finding.log_name,
                finding=finding.kind,
                detail=finding.detail,
            )

    def observe_sth(self, sth: SignedTreeHead, now: datetime) -> None:
        """Verify a new STH and its consistency with the previous one."""
        if not sth.verify(self._log.key):
            self._add_finding(
                AuditFinding(
                    self._log.name,
                    "bad-sth-signature",
                    f"STH for tree size {sth.tree_size} has an invalid signature",
                    now,
                )
            )
            return
        self.report.sths_verified += 1
        self._inc("auditor.sths_verified")
        previous = self._last_sth
        if previous is not None:
            if sth.tree_size < previous.tree_size:
                self._inc("auditor.consistency_failed")
                self._add_finding(
                    AuditFinding(
                        self._log.name,
                        "inconsistent-history",
                        f"tree shrank from {previous.tree_size} to {sth.tree_size}",
                        now,
                    )
                )
                return
            proof = self._log.get_consistency(previous.tree_size, sth.tree_size)
            self.report.consistency_checks += 1
            if not verify_consistency_proof(
                previous.tree_size,
                sth.tree_size,
                previous.root_hash,
                sth.root_hash,
                proof,
            ):
                self._inc("auditor.consistency_failed")
                self._add_finding(
                    AuditFinding(
                        self._log.name,
                        "inconsistent-history",
                        f"no valid consistency proof from size "
                        f"{previous.tree_size} to {sth.tree_size}",
                        now,
                    )
                )
                return
            self._inc("auditor.consistency_ok")
        self._last_sth = sth

    def poll(self, now: datetime) -> SignedTreeHead:
        """Fetch and verify the log's current STH."""
        findings_before = len(self.report.findings)
        started = time.perf_counter()
        sth = self._log.get_sth(now)
        self.observe_sth(sth, now)
        if self.metrics is not None:
            self.metrics.observe(
                "auditor.poll_seconds",
                time.perf_counter() - started,
                log=self._log.name,
            )
            self.metrics.set_gauge(
                "auditor.tree_size", sth.tree_size, log=self._log.name
            )
        if self.events is not None:
            self.events.emit(
                "auditor_poll",
                log=self._log.name,
                tree_size=sth.tree_size,
                ok=len(self.report.findings) == findings_before,
            )
        return sth

    def audit_sct_inclusion(
        self,
        certificate: Certificate,
        sct: SignedCertificateTimestamp,
        issuer_key_hash: bytes,
        now: datetime,
    ) -> bool:
        """Check that an SCT's promise has been kept.

        Verifies the SCT signature, locates the corresponding entry in
        the log, and verifies an inclusion proof against a fresh STH.
        Flags an MMD violation when the entry is missing although the
        maximum merge delay has passed.
        """
        if sct.entry_type is SctEntryType.PRECERT_ENTRY:
            entry_input = precert_signing_input(certificate, issuer_key_hash)
        else:
            entry_input = x509_signing_input(certificate)
        if not sct.verify(self._log.key, entry_input):
            self._add_finding(
                AuditFinding(
                    self._log.name,
                    "bad-sth-signature",
                    "SCT signature invalid for presented certificate",
                    now,
                )
            )
            return False
        self.report.inclusion_checks += 1
        index = next(
            (
                entry.index
                for entry in self._log.entries
                if entry.leaf_input == entry_input
            ),
            None,
        )
        if index is None:
            deadline = from_timestamp_ms(sct.timestamp_ms) + timedelta(
                hours=self._log.mmd_hours
            )
            kind = "mmd-violation" if now > deadline else "missing-entry"
            self._inc("auditor.inclusion_failed")
            self._add_finding(
                AuditFinding(
                    self._log.name,
                    kind,
                    f"no log entry for SCT issued at {sct.timestamp}",
                    now,
                )
            )
            return False
        sth = self._log.get_sth(now)
        proof = self._log.get_proof_by_hash(index, sth.tree_size)
        ok = verify_inclusion_proof(
            entry_input, index, sth.tree_size, proof, sth.root_hash
        )
        if not ok:
            self._inc("auditor.inclusion_failed")
            self._add_finding(
                AuditFinding(
                    self._log.name,
                    "missing-entry",
                    f"inclusion proof for entry {index} does not verify",
                    now,
                )
            )
        else:
            self._inc("auditor.inclusion_ok")
        return ok


@dataclass(frozen=True)
class Equivocation:
    """One cryptographically proven split view: two roots, one size."""

    log_name: str
    tree_size: int
    first_root: bytes
    first_reporter: str
    second_root: bytes
    second_reporter: str
    observed_at: Optional[datetime] = None


class GossipPool:
    """Cross-vantage STH gossip for split-view detection.

    Vantage points submit the STHs they observed; for any two STHs of
    the same log with the same tree size but different root hashes the
    log has equivocated — cryptographic proof of misbehaviour.

    Reports through the same obs surface as :class:`LogAuditor`: with
    ``metrics=`` attached every gossiped STH counts into
    ``gossip.sths{log=}`` and every detected fork into
    ``auditor.findings{log=,kind="split-view"}``; with ``events=``
    each fork emits one ``audit_finding`` event.  Resubmitting an
    already-flagged equivocating root does not duplicate the finding.
    """

    def __init__(
        self,
        *,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        # (log name, tree size) -> (root hash, first reporter)
        self._seen: Dict[Tuple[str, int], Tuple[bytes, str]] = {}
        # (log name, tree size, root) of forks already reported.
        self._flagged: set = set()
        self.findings: List[AuditFinding] = []
        self.equivocations: List[Equivocation] = []
        self.sths_gossiped = 0
        self.metrics = metrics
        self.events = events

    def submit(
        self,
        log_name: str,
        sth: SignedTreeHead,
        reporter: str,
        now: Optional[datetime] = None,
    ) -> Optional[AuditFinding]:
        """Record an observed STH; returns a finding on equivocation."""
        self.sths_gossiped += 1
        if self.metrics is not None:
            self.metrics.inc("gossip.sths", log=log_name)
        key = (log_name, sth.tree_size)
        known = self._seen.get(key)
        if known is None:
            self._seen[key] = (sth.root_hash, reporter)
            return None
        root, first_reporter = known
        if root == sth.root_hash:
            return None
        flag_key = (log_name, sth.tree_size, sth.root_hash)
        if flag_key in self._flagged:
            return None
        self._flagged.add(flag_key)
        finding = AuditFinding(
            log_name,
            "split-view",
            f"tree size {sth.tree_size}: {first_reporter} saw root "
            f"{root.hex()[:16]}…, {reporter} saw {sth.root_hash.hex()[:16]}…",
            now,
        )
        self.findings.append(finding)
        self.equivocations.append(
            Equivocation(
                log_name=log_name,
                tree_size=sth.tree_size,
                first_root=root,
                first_reporter=first_reporter,
                second_root=sth.root_hash,
                second_reporter=reporter,
                observed_at=now,
            )
        )
        if self.metrics is not None:
            self.metrics.inc("auditor.findings", log=log_name, kind=finding.kind)
        if self.events is not None:
            self.events.emit(
                "audit_finding",
                log=finding.log_name,
                finding=finding.kind,
                detail=finding.detail,
            )
        return finding

    @property
    def clean(self) -> bool:
        return not self.findings


def _fabricated_entry(log: CTLog, index: int) -> "LogEntry":
    """A deterministic entry that exists only in the equivocating view."""
    from repro.ct.log import LogEntry
    from repro.util.timeutil import utc_datetime
    from repro.x509.certificate import GeneralName, SanType

    name = f"equivocation{index}.{log.name.lower().replace(' ', '-')}.invalid"
    certificate = Certificate(
        serial=0x5EED_0000 + index,
        issuer_cn=f"{log.operator} Shadow CA",
        issuer_org=log.operator,
        subject_cn=name,
        san=(GeneralName(SanType.DNS, name),),
        not_before=utc_datetime(2018, 1, 1),
        not_after=utc_datetime(2019, 1, 1),
    )
    return LogEntry(
        index=index,
        submitted_at=utc_datetime(2018, 1, 1),
        entry_type=SctEntryType.X509_ENTRY,
        certificate=certificate,
        leaf_input=f"equivocation-entry:{log.name}:{index}".encode(),
    )


def make_split_view_log(
    log: CTLog, fork_at: int, pad_to: Optional[int] = None
) -> CTLog:
    """Build an equivocating twin of ``log`` for testing/demonstration.

    The twin shares ``log``'s history up to ``fork_at`` entries and
    then diverges — the classic split-view attack setup.  It uses the
    same key (the attacker *is* the log operator).

    The fabricated tail consists of full :class:`~repro.ct.log.LogEntry`
    records, so ``tree_size == len(entries)`` always holds and the twin
    can be mounted on a :class:`~repro.ct.server.LogServer` and answer
    ``get-entries`` like any honest log.  ``pad_to`` sets the twin's
    final size (default ``fork_at + 1``); pad to the honest log's size
    to stage the same-size/different-root equivocation gossip catches.
    """
    from repro.ct.merkle import MerkleTree

    target = pad_to if pad_to is not None else fork_at + 1
    if target <= fork_at:
        raise ValueError(
            f"pad_to={target} must exceed fork_at={fork_at} — the twin "
            f"has to diverge"
        )
    twin = CTLog(
        name=log.name,
        operator=log.operator,
        key=log.key,
        chrome_inclusion=log.chrome_inclusion,
        url=log.url,
        mmd_hours=log.mmd_hours,
    )
    twin.tree = MerkleTree()
    for entry in log.entries[:fork_at]:
        twin.tree.append(entry.leaf_input)
        twin.entries.append(entry)
    # Diverge: fabricated entries not present in the honest view.
    for index in range(fork_at, target):
        entry = _fabricated_entry(log, index)
        twin.tree.append(entry.leaf_input)
        twin.entries.append(entry)
    return twin
