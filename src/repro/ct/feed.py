"""A CertStream-style certificate feed hub.

The paper (Section 6.2) attributes the fastest honeypot reactions to
"a streaming fashion, using e.g., CertStream" — a service that tails
all logs and fans entries out to subscribers.  This module implements
that service shape:

* :class:`CertFeed` tails a set of logs (one cursor per log) and
  pushes :class:`FeedEvent` items to subscribers;
* subscribers are plain callables; slow consumers are protected by a
  bounded per-subscriber queue with an explicit drop counter (the
  real CertStream drops messages under backpressure too);
* :meth:`CertFeed.backfill` replays historical entries to a new
  subscriber, the way monitors bootstrap;
* polling is fault-tolerant: a log whose ``get_entries`` fails (after
  the optional :class:`~repro.resilience.RetryPolicy` is exhausted)
  keeps its cursor where it was — no entry is silently skipped — and
  per-log error/retry counters are exposed via :meth:`log_health`;
* polling feeds the live analytics: an attached
  :class:`~repro.dataset.live.LiveAnalytics` (``analytics=``) absorbs
  every poll batch before fan-out, so ``GET /analytics`` reflects a
  batch by the time subscribers see its events;
* polling is live-observable: an attached
  :class:`~repro.obs.events.EventLog` receives one ``feed_poll`` event
  per fetched log (outcome, entries, retries) as it happens,
  ``flush_interval_s`` adds interval-based counter-delta flushing into
  the same stream, and :meth:`health_report` folds the per-log
  counters into ``healthy|degraded|failing`` SLO verdicts (see
  :mod:`repro.obs.health`) — the payload behind a
  :class:`~repro.obs.export.TelemetryServer`'s ``/health`` endpoint.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from datetime import datetime
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.ct.log import CTLog, LogEntry

if TYPE_CHECKING:  # avoid a runtime import cycle through repro.ct
    from repro.dataset.live import LiveAnalytics
    from repro.obs.events import EventLog
    from repro.obs.health import HealthReport, SloPolicy
    from repro.obs.metrics import MetricsRegistry
    from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class FeedEvent:
    """One certificate update pushed to subscribers."""

    log_name: str
    entry: LogEntry
    seen_at: datetime

    @property
    def dns_names(self) -> List[str]:
        return self.entry.certificate.dns_names()

    @property
    def issuer(self) -> str:
        return self.entry.certificate.issuer_org


Subscriber = Callable[[FeedEvent], None]


@dataclass
class _Subscription:
    name: str
    callback: Subscriber
    queue: Deque[FeedEvent]
    max_queue: int
    delivered: int = 0
    dropped: int = 0


class CertFeed:
    """Tails logs and fans out new entries to subscribers."""

    def __init__(
        self,
        logs: Iterable[CTLog],
        *,
        max_queue: int = 10_000,
        retry: Optional["RetryPolicy"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
        flush_interval_s: Optional[float] = None,
        analytics: Optional["LiveAnalytics"] = None,
    ) -> None:
        self._logs = list(logs)
        self._cursors: Dict[str, int] = {log.name: log.size for log in self._logs}
        self._subs: Dict[str, _Subscription] = {}
        self._default_max_queue = max_queue
        self.retry = retry
        self.metrics = metrics
        self.events = events
        self.analytics = analytics
        self.events_emitted = 0
        self.poll_errors: Dict[str, int] = {log.name: 0 for log in self._logs}
        self.poll_retries: Dict[str, int] = {log.name: 0 for log in self._logs}
        self.poll_successes: Dict[str, int] = {log.name: 0 for log in self._logs}
        self.consecutive_failures: Dict[str, int] = {
            log.name: 0 for log in self._logs
        }
        self.entries_fetched: Dict[str, int] = {log.name: 0 for log in self._logs}
        self._flusher = None
        if flush_interval_s is not None:
            if events is None or metrics is None:
                raise ValueError(
                    "flush_interval_s needs both events= and metrics= attached"
                )
            from repro.obs.events import SnapshotDeltaFlusher

            self._flusher = SnapshotDeltaFlusher(
                metrics, events, interval_s=flush_interval_s
            )

    # -- subscription management ---------------------------------------------

    def subscribe(
        self,
        name: str,
        callback: Subscriber,
        *,
        max_queue: Optional[int] = None,
    ) -> None:
        if name in self._subs:
            raise ValueError(f"subscriber {name!r} already registered")
        self._subs[name] = _Subscription(
            name=name,
            callback=callback,
            queue=deque(),
            max_queue=max_queue if max_queue is not None else self._default_max_queue,
        )

    def unsubscribe(self, name: str) -> None:
        self._subs.pop(name, None)

    def subscribers(self) -> List[str]:
        return sorted(self._subs)

    def _require_sub(self, name: str) -> _Subscription:
        sub = self._subs.get(name)
        if sub is None:
            raise ValueError(f"subscriber {name!r} is not registered")
        return sub

    def stats(self, name: str) -> Tuple[int, int, int]:
        """(delivered, queued, dropped) for one subscriber."""
        sub = self._require_sub(name)
        return sub.delivered, len(sub.queue), sub.dropped

    # -- feeding ---------------------------------------------------------------

    def backfill(self, name: str, *, limit: Optional[int] = None) -> int:
        """Replay historical entries (oldest first) to one subscriber.

        Entries from all logs are merged into global submission order;
        ``limit`` caps the *total* number of replayed events (the most
        recent ones win), not the per-log count.  Each delivery is
        counted exactly once.  Returns the number of events replayed.
        """
        sub = self._require_sub(name)
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        merged = sorted(
            (
                (entry.submitted_at, log_order, entry.index, log.name, entry)
                for log_order, log in enumerate(self._logs)
                for entry in log.entries
            ),
            key=lambda item: item[:3],
        )
        if limit is not None:
            merged = merged[len(merged) - limit :] if limit else []
        replayed = 0
        for submitted_at, _, _, log_name, entry in merged:
            sub.callback(FeedEvent(log_name, entry, submitted_at))
            sub.delivered += 1
            replayed += 1
        if self.metrics is not None and replayed:
            self.metrics.inc("feed.backfill_events", replayed, subscriber=name)
        return replayed

    def _fetch_new(
        self, log: CTLog, cursor: int, end: int
    ) -> Tuple[List[LogEntry], int]:
        """``get_entries`` under the feed's retry policy (may raise).

        Returns ``(entries, retries spent on this fetch)``.
        """
        if self.retry is None:
            return log.get_entries(cursor, end), 0
        outcome = self.retry.run(lambda: log.get_entries(cursor, end))
        return outcome.value, outcome.retried

    def poll(self, now: datetime) -> int:
        """Pull new entries from all logs and enqueue them everywhere.

        A log whose fetch fails — even after retries — contributes
        nothing this round and its cursor stays put, so the entries
        are delivered (not skipped) by the next successful poll;
        failures are tallied in ``poll_errors``/``poll_retries`` and
        the per-log consecutive-failure streak.  With an attached
        event log every fetched log emits one ``feed_poll`` event, and
        the optional interval flusher exports counter deltas into the
        same stream.
        """
        fresh: List[FeedEvent] = []
        for log in self._logs:
            cursor = self._cursors.get(log.name, 0)
            size = log.size
            if size <= cursor:
                continue
            started = time.perf_counter()
            try:
                entries, retried = self._fetch_new(log, cursor, size - 1)
            except Exception as exc:
                self.poll_errors[log.name] = self.poll_errors.get(log.name, 0) + 1
                self.consecutive_failures[log.name] = (
                    self.consecutive_failures.get(log.name, 0) + 1
                )
                failed_retries = max(0, getattr(exc, "attempts", 1) - 1)
                self.poll_retries[log.name] = (
                    self.poll_retries.get(log.name, 0) + failed_retries
                )
                if self.metrics is not None:
                    self.metrics.inc("feed.poll_errors", log=log.name)
                    if failed_retries:
                        self.metrics.inc(
                            "feed.poll_retries", failed_retries, log=log.name
                        )
                if self.events is not None:
                    self.events.emit(
                        "feed_poll",
                        log=log.name,
                        ok=False,
                        error=repr(exc),
                        retried=failed_retries,
                    )
                continue
            self.poll_retries[log.name] = (
                self.poll_retries.get(log.name, 0) + retried
            )
            self.poll_successes[log.name] = (
                self.poll_successes.get(log.name, 0) + 1
            )
            self.consecutive_failures[log.name] = 0
            if self.metrics is not None:
                self.metrics.observe(
                    "feed.fetch_seconds",
                    time.perf_counter() - started,
                    log=log.name,
                )
                self.metrics.inc("feed.entries", len(entries), log=log.name)
                if retried:
                    self.metrics.inc("feed.poll_retries", retried, log=log.name)
            if self.events is not None:
                self.events.emit(
                    "feed_poll",
                    log=log.name,
                    ok=True,
                    entries=len(entries),
                    retried=retried,
                )
            self.entries_fetched[log.name] = (
                self.entries_fetched.get(log.name, 0) + len(entries)
            )
            fresh.extend(FeedEvent(log.name, entry, now) for entry in entries)
            self._cursors[log.name] = cursor + len(entries)
        if self.analytics is not None and fresh:
            # Fold before fan-out so /analytics already reflects this
            # batch by the time subscribers see the events.
            self.analytics.fold_events(fresh)
        dropped = 0
        for event in fresh:
            self.events_emitted += 1
            for sub in self._subs.values():
                if len(sub.queue) >= sub.max_queue:
                    sub.dropped += 1
                    dropped += 1
                    continue
                sub.queue.append(event)
        if self.metrics is not None:
            if fresh:
                self.metrics.inc("feed.events_emitted", len(fresh))
            if dropped:
                self.metrics.inc("feed.events_dropped", dropped)
        if self._flusher is not None:
            self._flusher.maybe_flush()
        return len(fresh)

    def log_health(self) -> Dict[str, Dict[str, int]]:
        """Per-log cursor position, entries delivered, error/retry counters."""
        return {
            log.name: {
                "cursor": self._cursors.get(log.name, 0),
                "entries": self.entries_fetched.get(log.name, 0),
                "errors": self.poll_errors.get(log.name, 0),
                "retries": self.poll_retries.get(log.name, 0),
                "successes": self.poll_successes.get(log.name, 0),
                "consecutive_failures": self.consecutive_failures.get(
                    log.name, 0
                ),
            }
            for log in self._logs
        }

    def health_report(
        self, policy: Optional["SloPolicy"] = None
    ) -> "HealthReport":
        """Per-log SLO verdicts from :meth:`log_health` counters.

        The report's :meth:`~repro.obs.health.HealthReport.to_dict` is
        the ``/health`` payload of an attached
        :class:`~repro.obs.export.TelemetryServer`.
        """
        from repro.obs.health import evaluate_stats

        return evaluate_stats(self.log_health(), policy)

    def flush_telemetry(self) -> bool:
        """Force a counter-delta flush (loop-shutdown hook).

        Returns whether a flush happened (``False`` without an
        interval flusher attached).
        """
        if self._flusher is None:
            return False
        return self._flusher.flush()

    def dispatch(self, *, budget: Optional[int] = None) -> int:
        """Drain subscriber queues through their callbacks.

        ``budget`` caps total deliveries (simulating a scheduling
        quantum); returns the number delivered.
        """
        delivered = 0
        pending = True
        while pending and (budget is None or delivered < budget):
            pending = False
            for sub in self._subs.values():
                if not sub.queue:
                    continue
                if budget is not None and delivered >= budget:
                    break
                event = sub.queue.popleft()
                sub.callback(event)
                sub.delivered += 1
                delivered += 1
                pending = True
        if self.metrics is not None and delivered:
            self.metrics.inc("feed.deliveries", delivered)
        return delivered

    def run_once(self, now: datetime) -> int:
        """Convenience: poll then fully dispatch; returns deliveries."""
        self.poll(now)
        return self.dispatch()
