"""A CertStream-style certificate feed hub.

The paper (Section 6.2) attributes the fastest honeypot reactions to
"a streaming fashion, using e.g., CertStream" — a service that tails
all logs and fans entries out to subscribers.  This module implements
that service shape:

* :class:`CertFeed` tails a set of logs (one cursor per log) and
  pushes :class:`FeedEvent` items to subscribers;
* subscribers are plain callables; slow consumers are protected by a
  bounded per-subscriber queue with an explicit drop counter (the
  real CertStream drops messages under backpressure too);
* :meth:`CertFeed.backfill` replays historical entries to a new
  subscriber, the way monitors bootstrap.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from datetime import datetime
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.ct.log import CTLog, LogEntry


@dataclass(frozen=True)
class FeedEvent:
    """One certificate update pushed to subscribers."""

    log_name: str
    entry: LogEntry
    seen_at: datetime

    @property
    def dns_names(self) -> List[str]:
        return self.entry.certificate.dns_names()

    @property
    def issuer(self) -> str:
        return self.entry.certificate.issuer_org


Subscriber = Callable[[FeedEvent], None]


@dataclass
class _Subscription:
    name: str
    callback: Subscriber
    queue: Deque[FeedEvent]
    max_queue: int
    delivered: int = 0
    dropped: int = 0


class CertFeed:
    """Tails logs and fans out new entries to subscribers."""

    def __init__(self, logs: Iterable[CTLog], *, max_queue: int = 10_000) -> None:
        self._logs = list(logs)
        self._cursors: Dict[str, int] = {log.name: log.size for log in self._logs}
        self._subs: Dict[str, _Subscription] = {}
        self._default_max_queue = max_queue
        self.events_emitted = 0

    # -- subscription management ---------------------------------------------

    def subscribe(
        self,
        name: str,
        callback: Subscriber,
        *,
        max_queue: Optional[int] = None,
    ) -> None:
        if name in self._subs:
            raise ValueError(f"subscriber {name!r} already registered")
        self._subs[name] = _Subscription(
            name=name,
            callback=callback,
            queue=deque(),
            max_queue=max_queue if max_queue is not None else self._default_max_queue,
        )

    def unsubscribe(self, name: str) -> None:
        self._subs.pop(name, None)

    def subscribers(self) -> List[str]:
        return sorted(self._subs)

    def stats(self, name: str) -> Tuple[int, int, int]:
        """(delivered, queued, dropped) for one subscriber."""
        sub = self._subs[name]
        return sub.delivered, len(sub.queue), sub.dropped

    # -- feeding ---------------------------------------------------------------

    def backfill(self, name: str, *, limit: Optional[int] = None) -> int:
        """Replay historical entries (oldest first) to one subscriber."""
        sub = self._subs[name]
        replayed = 0
        for log in self._logs:
            for entry in log.entries if limit is None else log.entries[-limit:]:
                event = FeedEvent(log.name, entry, entry.submitted_at)
                sub.callback(event)
                sub.delivered += 1
                replayed += 1
        return replayed

    def poll(self, now: datetime) -> int:
        """Pull new entries from all logs and enqueue them everywhere."""
        fresh: List[FeedEvent] = []
        for log in self._logs:
            cursor = self._cursors.get(log.name, 0)
            if log.size > cursor:
                for entry in log.get_entries(cursor, log.size - 1):
                    fresh.append(FeedEvent(log.name, entry, now))
                self._cursors[log.name] = log.size
        for event in fresh:
            self.events_emitted += 1
            for sub in self._subs.values():
                if len(sub.queue) >= sub.max_queue:
                    sub.dropped += 1
                    continue
                sub.queue.append(event)
        return len(fresh)

    def dispatch(self, *, budget: Optional[int] = None) -> int:
        """Drain subscriber queues through their callbacks.

        ``budget`` caps total deliveries (simulating a scheduling
        quantum); returns the number delivered.
        """
        delivered = 0
        pending = True
        while pending and (budget is None or delivered < budget):
            pending = False
            for sub in self._subs.values():
                if not sub.queue:
                    continue
                if budget is not None and delivered >= budget:
                    break
                event = sub.queue.popleft()
                sub.callback(event)
                sub.delivered += 1
                delivered += 1
                pending = True
        return delivered

    def run_once(self, now: datetime) -> int:
        """Convenience: poll then fully dispatch; returns deliveries."""
        self.poll(now)
        return self.dispatch()
