"""CT log servers.

A :class:`CTLog` models one log instance: an append-only Merkle tree
over submitted (pre)certificates, SCT issuance with real signatures,
signed tree heads, and the ``get-entries`` interface monitors poll.

It also carries a simple capacity model.  Section 2 of the paper
documents how Let's Encrypt's logging volume overloaded the Cloudflare
Nimbus log, triggering a disqualification discussion; the capacity
model lets the evolution benchmarks reproduce that overload signal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import date, datetime
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ct.merkle import MerkleTree
from repro.ct.sct import (
    SctEntryType,
    SignedCertificateTimestamp,
    precert_signing_input,
    x509_signing_input,
)
from repro.util.timeutil import timestamp_ms
from repro.x509 import crypto
from repro.x509.certificate import Certificate


class LogOverloadedError(RuntimeError):
    """Raised when a submission exceeds the log's daily capacity."""


class LogDisqualifiedError(RuntimeError):
    """Raised when submitting to a disqualified log."""


#: Alias re-export so callers need only import from ct.log.
LogEntryType = SctEntryType


@dataclass(frozen=True)
class LogEntry:
    """One appended log entry."""

    index: int
    submitted_at: datetime
    entry_type: SctEntryType
    certificate: Certificate
    leaf_input: bytes


@dataclass(frozen=True)
class SignedTreeHead:
    """An STH: the log's signed commitment to its current state."""

    tree_size: int
    timestamp_ms: int
    root_hash: bytes
    signature: bytes

    @staticmethod
    def signed_payload(tree_size: int, timestamp_ms_: int, root_hash: bytes) -> bytes:
        return (
            b"STHv1"
            + tree_size.to_bytes(8, "big")
            + timestamp_ms_.to_bytes(8, "big")
            + root_hash
        )

    def verify(self, log_key: crypto.KeyPair) -> bool:
        payload = self.signed_payload(self.tree_size, self.timestamp_ms, self.root_hash)
        return crypto.verify(log_key, payload, self.signature)


@dataclass(frozen=True)
class BatchDigest:
    """A signed per-batch digest for light-weight monitors.

    Covers the entry range ``[start, end)``: the DNS names of every
    entry in the range plus the tree root at size ``end``.  A monitor
    that trusts the digest signature can decide *which* entries matter
    to it without downloading any bodies, then verify the digest root's
    consistency with the current STH and fetch inclusion proofs only
    for the matches (Dahlberg & Pulls' verifiable light-weight
    monitoring).
    """

    start: int
    end: int  # exclusive
    timestamp_ms: int
    root_hash: bytes  # tree root at size ``end``
    #: Per-entry claimed identities: ``(index, dns names)`` pairs.
    domains: Tuple[Tuple[int, Tuple[str, ...]], ...]
    signature: bytes

    @staticmethod
    def domains_digest(
        domains: Sequence[Tuple[int, Sequence[str]]]
    ) -> bytes:
        """Hash of the canonical JSON encoding of the domain claims."""
        blob = json.dumps(
            [[index, list(names)] for index, names in domains],
            separators=(",", ":"),
        ).encode()
        return crypto.sha256(blob)

    @staticmethod
    def signed_payload(
        start: int,
        end: int,
        timestamp_ms_: int,
        root_hash: bytes,
        domains: Sequence[Tuple[int, Sequence[str]]],
    ) -> bytes:
        return (
            b"BATCHv1"
            + start.to_bytes(8, "big")
            + end.to_bytes(8, "big")
            + timestamp_ms_.to_bytes(8, "big")
            + root_hash
            + BatchDigest.domains_digest(domains)
        )

    def verify(self, log_key: crypto.KeyPair) -> bool:
        payload = self.signed_payload(
            self.start, self.end, self.timestamp_ms, self.root_hash, self.domains
        )
        return crypto.verify(log_key, payload, self.signature)


@dataclass
class CTLog:
    """A Certificate Transparency log server.

    Parameters
    ----------
    name / operator:
        Display name ("Google Pilot log") and operator ("Google").
    key:
        The log's signing keypair; ``key.key_id`` is the LogID.
    chrome_inclusion:
        Month the log was accepted into Chrome (Table 1 annotations).
    capacity_per_day:
        Optional submissions-per-day ceiling; exceeding it records an
        overload event and (if ``strict_capacity``) rejects.
    """

    name: str
    operator: str
    key: crypto.KeyPair
    chrome_inclusion: Optional[date] = None
    url: str = ""
    mmd_hours: int = 24
    capacity_per_day: Optional[int] = None
    strict_capacity: bool = False

    entries: List[LogEntry] = field(default_factory=list)
    tree: MerkleTree = field(default_factory=MerkleTree)
    disqualified: bool = False
    overload_days: Dict[date, int] = field(default_factory=dict)

    _daily_counts: Dict[date, int] = field(default_factory=dict)
    _sct_cache: Dict[bytes, SignedCertificateTimestamp] = field(default_factory=dict)

    @property
    def log_id(self) -> bytes:
        return self.key.key_id

    @property
    def size(self) -> int:
        return len(self.entries)

    # -- submission API ------------------------------------------------------

    def add_pre_chain(
        self,
        precert: Certificate,
        issuer_key_hash: bytes,
        now: datetime,
    ) -> SignedCertificateTimestamp:
        """Submit a precertificate; returns the inclusion promise (SCT)."""
        if not precert.is_precertificate:
            raise ValueError("add_pre_chain requires a poisoned precertificate")
        entry_input = precert_signing_input(precert, issuer_key_hash)
        return self._accept(
            precert, entry_input, SctEntryType.PRECERT_ENTRY, now
        )

    def add_chain(
        self, cert: Certificate, now: datetime
    ) -> SignedCertificateTimestamp:
        """Submit a final certificate."""
        if cert.is_precertificate:
            raise ValueError("add_chain requires a final certificate")
        entry_input = x509_signing_input(cert)
        return self._accept(cert, entry_input, SctEntryType.X509_ENTRY, now)

    def _accept(
        self,
        cert: Certificate,
        entry_input: bytes,
        entry_type: SctEntryType,
        now: datetime,
    ) -> SignedCertificateTimestamp:
        if self.disqualified:
            raise LogDisqualifiedError(f"{self.name} is disqualified")
        cache_key = self.submission_cache_key(entry_input)
        cached = self._sct_cache.get(cache_key)
        if cached is not None:
            # Logs deduplicate: resubmission returns the original SCT.
            return cached
        self.admit(now)
        sct = self.sign_sct(entry_type, entry_input, now)
        self.append_batch([(entry_input, entry_type, cert, now)])
        self._sct_cache[cache_key] = sct
        return sct

    # -- submission primitives (shared with the MMD sequencer) ---------------

    @staticmethod
    def submission_cache_key(entry_input: bytes) -> bytes:
        """The dedup key for one submission (hash of the signed input)."""
        return crypto.sha256(entry_input)

    def admit(self, now: datetime) -> None:
        """Gate one *new* (non-duplicate) submission.

        Raises :class:`LogDisqualifiedError` for a disqualified log and
        — after recording the overload — :class:`LogOverloadedError`
        for a strict over-capacity log.  Only an *accepted* submission
        consumes daily quota: a rejected submission records an overload
        event but leaves ``_daily_counts`` at the capacity ceiling, so
        a client retrying a 429 never double-counts against the quota.
        """
        if self.disqualified:
            raise LogDisqualifiedError(f"{self.name} is disqualified")
        day = now.date()
        count = self._daily_counts.get(day, 0) + 1
        if self.capacity_per_day is not None and count > self.capacity_per_day:
            self.overload_days[day] = self.overload_days.get(day, 0) + 1
            if self.strict_capacity:
                raise LogOverloadedError(
                    f"{self.name} over capacity on {day.isoformat()}"
                )
        self._daily_counts[day] = count

    def sign_sct(
        self, entry_type: SctEntryType, entry_input: bytes, now: datetime
    ) -> SignedCertificateTimestamp:
        """Sign the inclusion promise for one admitted submission.

        Pure compute over the log key — safe to call outside any tree
        lock, which is exactly what the batched write pipeline does.
        """
        ts = timestamp_ms(now)
        payload = SignedCertificateTimestamp.signed_payload(
            self.log_id, ts, entry_type, entry_input
        )
        return SignedCertificateTimestamp(
            log_id=self.log_id,
            timestamp_ms=ts,
            entry_type=entry_type,
            signature=crypto.sign(self.key, payload),
        )

    def append_batch(
        self,
        submissions: Sequence[Tuple[bytes, SctEntryType, Certificate, datetime]],
    ) -> List[int]:
        """Fold admitted submissions into the tree in one batch.

        Each element is ``(entry_input, entry_type, certificate,
        submitted_at)``.  The tree and the entry list grow together in
        one step (callers holding a read lock see either none or all of
        the batch); returns the assigned indices.
        """
        indices = self.tree.append_many(
            [entry_input for entry_input, _, _, _ in submissions]
        )
        for index, (entry_input, entry_type, cert, submitted_at) in zip(
            indices, submissions
        ):
            self.entries.append(
                LogEntry(
                    index=index,
                    submitted_at=submitted_at,
                    entry_type=entry_type,
                    certificate=cert,
                    leaf_input=entry_input,
                )
            )
        return indices

    def cached_sct(self, cache_key: bytes) -> Optional[SignedCertificateTimestamp]:
        """The SCT of an already-merged submission, if any."""
        return self._sct_cache.get(cache_key)

    def register_sct(
        self, cache_key: bytes, sct: SignedCertificateTimestamp
    ) -> None:
        """Install a merged submission's SCT into the dedup cache."""
        self._sct_cache[cache_key] = sct

    # -- read API --------------------------------------------------------------

    def get_sth(self, now: datetime) -> SignedTreeHead:
        """Sign and return the current tree head."""
        root = self.tree.root()
        ts = timestamp_ms(now)
        payload = SignedTreeHead.signed_payload(self.tree.size, ts, root)
        return SignedTreeHead(
            tree_size=self.tree.size,
            timestamp_ms=ts,
            root_hash=root,
            signature=crypto.sign(self.key, payload),
        )

    def get_entries(self, start: int, end: int) -> List[LogEntry]:
        """Entries with indices in [start, end] (RFC 6962 get-entries)."""
        if start < 0 or end < start:
            raise ValueError("invalid entry range")
        return self.entries[start : end + 1]

    def batch_digest(self, start: int, end: int, now: datetime) -> BatchDigest:
        """Sign a :class:`BatchDigest` over entries ``[start, end)``."""
        if not 0 <= start < end <= self.tree.size:
            raise ValueError(
                f"invalid digest range [{start}, {end}) for tree size "
                f"{self.tree.size}"
            )
        domains = tuple(
            (entry.index, tuple(entry.certificate.dns_names()))
            for entry in self.entries[start:end]
        )
        root = self.tree.root(end)
        ts = timestamp_ms(now)
        payload = BatchDigest.signed_payload(start, end, ts, root, domains)
        return BatchDigest(
            start=start,
            end=end,
            timestamp_ms=ts,
            root_hash=root,
            domains=domains,
            signature=crypto.sign(self.key, payload),
        )

    def get_proof_by_hash(self, index: int, tree_size: int) -> List[bytes]:
        return self.tree.inclusion_proof(index, tree_size)

    def get_consistency(self, old_size: int, new_size: int) -> List[bytes]:
        return self.tree.consistency_proof(old_size, new_size)

    # -- health -----------------------------------------------------------------

    def disqualify(self) -> None:
        """Mark the log disqualified (rejected from the trusted set)."""
        self.disqualified = True

    def daily_submission_counts(self) -> Dict[date, int]:
        return dict(self._daily_counts)

    def was_overloaded(self) -> bool:
        return bool(self.overload_days)

    def utilization(self) -> List[Tuple[date, float]]:
        """Per-day load relative to capacity (empty if uncapped)."""
        if self.capacity_per_day is None:
            return []
        return sorted(
            (day, count / self.capacity_per_day)
            for day, count in self._daily_counts.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTLog({self.name!r}, size={self.size})"
