"""Registry of the CT logs appearing in the study.

The fifteen logs of Table 1 (with their operators and Chrome inclusion
dates) plus a few logs discussed elsewhere in the paper: the Cloudflare
Nimbus2019 shard, and Symantec's "Deneb" log, which existed explicitly
to *hide* subdomains (Section 4).

Log keys are generated deterministically from the log name, so the
whole simulated log ecosystem is reproducible and SCT verification
works across process runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Optional

from repro.ct.log import CTLog
from repro.x509.crypto import KeyPair


@dataclass(frozen=True)
class LogInfo:
    """Static description of a known log."""

    name: str
    operator: str
    chrome_inclusion: Optional[date]
    #: Daily submission capacity at scale 1:1000 (None = effectively unbounded).
    capacity_per_day: Optional[int] = None


#: Table 1's logs, in the paper's order, plus Nimbus2019 and Deneb.
KNOWN_LOGS: List[LogInfo] = [
    LogInfo("Google Pilot log", "Google", date(2014, 6, 1)),
    LogInfo("Symantec log", "Symantec", date(2015, 9, 1)),
    LogInfo("Google Rocketeer log", "Google", date(2015, 4, 1)),
    LogInfo("DigiCert Log Server", "DigiCert", date(2015, 1, 1)),
    LogInfo("Google Skydiver log", "Google", date(2016, 11, 1)),
    LogInfo("Google Aviator log", "Google", date(2014, 6, 1)),
    LogInfo("Venafi log", "Venafi", date(2015, 10, 1)),
    LogInfo("DigiCert Log Server 2", "DigiCert", date(2017, 6, 1)),
    LogInfo("Symantec Vega log", "Symantec", date(2016, 2, 1)),
    LogInfo("Comodo Mammoth CT log", "Comodo", date(2017, 7, 1)),
    # Nimbus absorbed most of Let's Encrypt's load and suffered the
    # overload incident of Section 2; the capacity below reproduces it.
    LogInfo("Cloudflare Nimbus2018 Log", "Cloudflare", date(2018, 3, 1), capacity_per_day=2600),
    LogInfo("Google Icarus log", "Google", date(2016, 11, 1)),
    LogInfo("Cloudflare Nimbus2020 Log", "Cloudflare", date(2018, 3, 1)),
    LogInfo("Comodo Sabre CT log", "Comodo", date(2017, 7, 1)),
    LogInfo("Certly.IO log", "Certly", date(2015, 4, 1)),
    LogInfo("Cloudflare Nimbus2019 Log", "Cloudflare", date(2018, 3, 1)),
    LogInfo("Symantec Deneb log", "Symantec", None),  # never Chrome-trusted
]

#: Convenience name list in Table 1 order.
TABLE1_LOG_NAMES = [info.name for info in KNOWN_LOGS[:15]]


def log_key(name: str, key_bits: int = 512) -> KeyPair:
    """Deterministic keypair for a log name."""
    return KeyPair.generate(f"ct-log:{name}", key_bits)


def build_default_logs(
    *,
    strict_capacity: bool = False,
    with_capacities: bool = True,
    key_bits: int = 512,
) -> Dict[str, CTLog]:
    """Instantiate all known logs, keyed by name.

    ``key_bits`` trades signature size/cost for speed: the
    volume-oriented evolution experiments use 256-bit keys (the
    signatures remain genuine RSA and verifiable), while protocol-level
    tests keep the 512-bit default.
    """
    logs: Dict[str, CTLog] = {}
    for info in KNOWN_LOGS:
        logs[info.name] = CTLog(
            name=info.name,
            operator=info.operator,
            key=log_key(info.name, key_bits),
            chrome_inclusion=info.chrome_inclusion,
            url=f"https://{info.name.lower().replace(' ', '-')}.example/ct/v1/",
            capacity_per_day=info.capacity_per_day if with_capacities else None,
            strict_capacity=strict_capacity,
        )
    return logs


def logs_by_operator(logs: Dict[str, CTLog]) -> Dict[str, List[CTLog]]:
    """Group logs by operator (Chrome's diversity policy needs this)."""
    grouped: Dict[str, List[CTLog]] = {}
    for log in logs.values():
        grouped.setdefault(log.operator, []).append(log)
    return grouped
