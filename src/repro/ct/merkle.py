"""RFC 6962 Merkle hash trees.

Implements the exact tree construction of RFC 6962 section 2.1:

* leaf hash  = SHA-256(0x00 || leaf)
* node hash  = SHA-256(0x01 || left || right)
* the left subtree of an n-leaf tree holds the largest power of two
  smaller than n.

Inclusion (audit) proofs and consistency proofs follow sections 2.1.1
and 2.1.2, with standalone verifiers that use only public data.  These
are the invariants the property-based tests in
``tests/ct/test_merkle_properties.py`` exercise.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

LEAF_PREFIX = b"\x00"
NODE_PREFIX = b"\x01"
EMPTY_TREE_HASH = hashlib.sha256(b"").digest()


def leaf_hash(leaf: bytes) -> bytes:
    """RFC 6962 leaf hash."""
    return hashlib.sha256(LEAF_PREFIX + leaf).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    """RFC 6962 interior-node hash."""
    return hashlib.sha256(NODE_PREFIX + left + right).digest()


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than ``n`` (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


class MerkleTree:
    """An append-only Merkle tree over byte-string leaves.

    Leaves are stored as their leaf hashes; subtree roots are memoized
    by ``(start, end)`` range so repeated proof generation over a
    growing log stays fast.
    """

    def __init__(self) -> None:
        self._leaf_hashes: List[bytes] = []
        self._subtree_cache: Dict[Tuple[int, int], bytes] = {}
        # Incremental root cache: the root over the first n leaves is
        # immutable under append, so every computed root is kept.  A
        # busy served log answers repeated get-sth / proof requests at
        # one dict lookup instead of re-walking the ragged right edge.
        self._root_cache: Dict[int, bytes] = {}
        # Leaf-hash -> first index, maintained on append; this is the
        # RFC 6962 get-proof-by-hash lookup (first occurrence wins, as
        # for real logs with duplicate leaves).
        self._leaf_index: Dict[bytes, int] = {}

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    @property
    def size(self) -> int:
        return len(self._leaf_hashes)

    def append(self, leaf: bytes) -> int:
        """Append a leaf; returns its index."""
        return self.append_leaf_hash(leaf_hash(leaf))

    def append_leaf_hash(self, digest: bytes) -> int:
        """Append an already-hashed leaf (for replicating trees)."""
        self._leaf_hashes.append(digest)
        index = len(self._leaf_hashes) - 1
        self._leaf_index.setdefault(digest, index)
        return index

    def append_many(self, leaves: Iterable[bytes]) -> List[int]:
        """Append a batch of leaves; returns their indices.

        Bit-identical to calling :meth:`append` once per leaf — same
        roots at every tree size, same proofs, same first-occurrence
        ``leaf_index`` winners — but the subtree cache is warmed once
        per batch instead of once per leaf, so a merge of *k* entries
        costs O(k) hashing instead of k ragged-edge re-walks.
        """
        return self.extend_leaf_hashes([leaf_hash(leaf) for leaf in leaves])

    def extend_leaf_hashes(self, digests: Iterable[bytes]) -> List[int]:
        """Batch form of :meth:`append_leaf_hash` (for replicas/merges)."""
        batch = list(digests)
        start = len(self._leaf_hashes)
        self._leaf_hashes.extend(batch)
        for offset, digest in enumerate(batch):
            self._leaf_index.setdefault(digest, start + offset)
        if batch:
            self._warm_subtree_cache(start, len(self._leaf_hashes))
        return list(range(start, start + len(batch)))

    def _warm_subtree_cache(self, start: int, end: int) -> None:
        """Cache every complete power-of-two subtree gaining leaves.

        Works bottom-up (children before parents), so each interior
        node costs exactly one hash over two already-known digests.
        Only complete, aligned subtrees are cached — the same immutable
        set :meth:`_range_hash` caches lazily — so a batched tree and a
        per-leaf tree answer every root/proof query identically.
        """
        width = 2
        while width <= end:
            block = (start // width) * width
            while block + width <= end:
                key = (block, block + width)
                if key not in self._subtree_cache:
                    half = width // 2
                    self._subtree_cache[key] = node_hash(
                        self._range_hash(block, block + half),
                        self._range_hash(block + half, block + width),
                    )
                block += width
            width *= 2

    def leaf_index(self, digest: bytes) -> Optional[int]:
        """First index of a leaf *hash*, or ``None`` if absent."""
        return self._leaf_index.get(digest)

    def root(self, tree_size: int = -1) -> bytes:
        """Merkle tree head over the first ``tree_size`` leaves."""
        if tree_size < 0:
            tree_size = len(self._leaf_hashes)
        if tree_size > len(self._leaf_hashes):
            raise ValueError("tree_size exceeds current tree")
        if tree_size == 0:
            return EMPTY_TREE_HASH
        cached = self._root_cache.get(tree_size)
        if cached is None:
            cached = self._root_cache[tree_size] = self._range_hash(
                0, tree_size
            )
        return cached

    def _range_hash(self, start: int, end: int) -> bytes:
        """Hash of the subtree over leaves [start, end)."""
        width = end - start
        if width == 1:
            return self._leaf_hashes[start]
        key = (start, end)
        cached = self._subtree_cache.get(key)
        if cached is not None:
            return cached
        split = _largest_power_of_two_below(width)
        value = node_hash(
            self._range_hash(start, start + split),
            self._range_hash(start + split, end),
        )
        # Only cache complete power-of-two subtrees: they are immutable
        # under append.  Ragged right edges change as the tree grows.
        if width == split * 2 and start % width == 0:
            self._subtree_cache[key] = value
        return value

    # -- proofs ------------------------------------------------------------

    def inclusion_proof(self, index: int, tree_size: int = -1) -> List[bytes]:
        """Audit path for leaf ``index`` within ``tree_size`` (RFC 6962 2.1.1)."""
        if tree_size < 0:
            tree_size = len(self._leaf_hashes)
        if not 0 <= index < tree_size <= len(self._leaf_hashes):
            raise IndexError("index/tree_size out of range")
        return self._path(index, 0, tree_size)

    def _path(self, index: int, start: int, end: int) -> List[bytes]:
        width = end - start
        if width == 1:
            return []
        split = _largest_power_of_two_below(width)
        if index - start < split:
            path = self._path(index, start, start + split)
            path.append(self._range_hash(start + split, end))
        else:
            path = self._path(index, start + split, end)
            path.append(self._range_hash(start, start + split))
        return path

    def consistency_proof(self, old_size: int, new_size: int = -1) -> List[bytes]:
        """Proof that the ``old_size`` tree is a prefix of the ``new_size`` tree."""
        if new_size < 0:
            new_size = len(self._leaf_hashes)
        if not 0 <= old_size <= new_size <= len(self._leaf_hashes):
            raise ValueError("invalid sizes for consistency proof")
        if old_size == 0 or old_size == new_size:
            return []
        return self._subproof(old_size, 0, new_size, True)

    def _subproof(self, m: int, start: int, end: int, complete: bool) -> List[bytes]:
        width = end - start
        if m == width:
            if complete:
                return []
            return [self._range_hash(start, end)]
        split = _largest_power_of_two_below(width)
        if m <= split:
            proof = self._subproof(m, start, start + split, complete)
            proof.append(self._range_hash(start + split, end))
        else:
            proof = self._subproof(m - split, start + split, end, False)
            proof.append(self._range_hash(start, start + split))
        return proof


def verify_inclusion_proof(
    leaf: bytes,
    index: int,
    tree_size: int,
    proof: Sequence[bytes],
    root: bytes,
) -> bool:
    """Verify an RFC 6962 audit path against a signed tree head."""
    if tree_size == 0 or not 0 <= index < tree_size:
        return False
    computed = leaf_hash(leaf)
    fn, sn = index, tree_size - 1
    for sibling in proof:
        if sn == 0:
            return False
        if fn % 2 == 1 or fn == sn:
            computed = node_hash(sibling, computed)
            while fn % 2 == 0 and fn != 0:
                fn >>= 1
                sn >>= 1
        else:
            computed = node_hash(computed, sibling)
        fn >>= 1
        sn >>= 1
    return sn == 0 and computed == root


def verify_consistency_proof(
    old_size: int,
    new_size: int,
    old_root: bytes,
    new_root: bytes,
    proof: Sequence[bytes],
) -> bool:
    """Verify an RFC 6962 consistency proof between two tree heads."""
    if old_size > new_size:
        return False
    if old_size == new_size:
        return not proof and old_root == new_root
    if old_size == 0:
        # Any tree is consistent with the empty tree.
        return not proof
    proof_list = list(proof)
    node, last_node = old_size - 1, new_size - 1
    while node % 2 == 1:
        node >>= 1
        last_node >>= 1
    if not proof_list:
        return False
    if node:
        new_hash = old_hash = proof_list.pop(0)
    else:
        new_hash = old_hash = old_root
    while node or last_node:
        if node % 2 == 1:
            if not proof_list:
                return False
            sibling = proof_list.pop(0)
            old_hash = node_hash(sibling, old_hash)
            new_hash = node_hash(sibling, new_hash)
        elif node < last_node:
            if not proof_list:
                return False
            new_hash = node_hash(new_hash, proof_list.pop(0))
        node >>= 1
        last_node >>= 1
    return not proof_list and old_hash == old_root and new_hash == new_root
