"""CT log monitors: the eyes of Section 6's attacker model.

The honeypot study distinguishes two monitoring styles by their
observed reaction times:

* **streaming** consumers (CertStream-style): near-real-time feeds;
  the paper measures first DNS queries 73 s - ~3 min after the
  precertificate appears, from the same handful of networks every time;
* **batch** consumers: periodic ``get-entries`` polls; queries from
  these arrive no earlier than one hour (99 % of cases) or two hours
  (62 %) after logging.

Both monitor types consume the log through the public read API
(``get_entries`` cursors), never through private state.

Polling is fault-tolerant: a fetch that fails — after the optional
:class:`~repro.resilience.RetryPolicy` is exhausted — leaves the
log's cursor untouched, so no entry is silently lost; the next
successful poll observes everything that accumulated in the meantime.
Per-log error/retry counters are exposed on each monitor, an attached
:class:`~repro.obs.events.EventLog` receives one ``monitor_fetch``
event per fetch as it happens, and ``health_report()`` folds the
counters into per-log SLO verdicts (see :mod:`repro.obs.health`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.ct.log import CTLog, LogEntry
from repro.util.rng import SeededRng

if TYPE_CHECKING:  # avoid a runtime import cycle through repro.ct
    from repro.obs.events import EventLog
    from repro.obs.health import HealthReport, SloPolicy
    from repro.obs.metrics import MetricsRegistry
    from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class LogObservation:
    """A monitor learning about one log entry."""

    monitor: str
    log_name: str
    entry: LogEntry
    observed_at: datetime

    @property
    def dns_names(self) -> List[str]:
        return self.entry.certificate.dns_names()

    @property
    def latency_seconds(self) -> float:
        return (self.observed_at - self.entry.submitted_at).total_seconds()


class _CursorMixin:
    """Shared cursor bookkeeping over multiple logs.

    The cursor for a log only advances past entries that were actually
    fetched; a failed ``get_entries`` (after the optional retry policy
    gives up) counts into ``errors`` and leaves the cursor alone, so
    the entries surface on the next successful poll instead of being
    skipped.
    """

    def __init__(
        self,
        retry: Optional["RetryPolicy"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        self._cursors: Dict[str, int] = {}
        self.retry = retry
        self.metrics = metrics
        self.events = events
        self.errors: Dict[str, int] = {}
        self.retries: Dict[str, int] = {}
        self.successes: Dict[str, int] = {}
        self.entries_seen: Dict[str, int] = {}
        self.consecutive_failures: Dict[str, int] = {}

    def _monitor_label(self) -> str:
        return getattr(self, "name", type(self).__name__)

    def _new_entries(self, log: CTLog) -> List[LogEntry]:
        cursor = self._cursors.get(log.name, 0)
        size = log.size
        if size <= cursor:
            return []
        label = self._monitor_label()
        started = time.perf_counter()
        retried = 0
        try:
            if self.retry is None:
                entries = log.get_entries(cursor, size - 1)
            else:
                outcome = self.retry.run(
                    lambda: log.get_entries(cursor, size - 1)
                )
                entries = outcome.value
                retried = outcome.retried
                self.retries[log.name] = (
                    self.retries.get(log.name, 0) + retried
                )
                if self.metrics is not None and retried:
                    self.metrics.inc(
                        "monitor.retries",
                        retried,
                        monitor=label,
                        log=log.name,
                    )
        except Exception as exc:
            self.errors[log.name] = self.errors.get(log.name, 0) + 1
            self.consecutive_failures[log.name] = (
                self.consecutive_failures.get(log.name, 0) + 1
            )
            failed_retries = max(0, getattr(exc, "attempts", 1) - 1)
            self.retries[log.name] = (
                self.retries.get(log.name, 0) + failed_retries
            )
            if self.metrics is not None:
                self.metrics.inc("monitor.errors", monitor=label, log=log.name)
                if failed_retries:
                    self.metrics.inc(
                        "monitor.retries",
                        failed_retries,
                        monitor=label,
                        log=log.name,
                    )
            if self.events is not None:
                self.events.emit(
                    "monitor_fetch",
                    monitor=label,
                    log=log.name,
                    ok=False,
                    error=repr(exc),
                    retried=failed_retries,
                )
            return []
        self.successes[log.name] = self.successes.get(log.name, 0) + 1
        self.consecutive_failures[log.name] = 0
        self.entries_seen[log.name] = (
            self.entries_seen.get(log.name, 0) + len(entries)
        )
        if self.metrics is not None:
            self.metrics.observe(
                "monitor.fetch_seconds",
                time.perf_counter() - started,
                monitor=label,
                log=log.name,
            )
            self.metrics.inc(
                "monitor.entries", len(entries), monitor=label, log=log.name
            )
        if self.events is not None:
            self.events.emit(
                "monitor_fetch",
                monitor=label,
                log=log.name,
                ok=True,
                entries=len(entries),
                retried=retried,
            )
        self._cursors[log.name] = cursor + len(entries)
        return entries

    def log_health(self) -> Dict[str, Dict[str, int]]:
        """Per-log fetch counters in :mod:`repro.obs.health` shape."""
        names = sorted(
            set(self._cursors)
            | set(self.errors)
            | set(self.successes)
        )
        return {
            name: {
                "cursor": self._cursors.get(name, 0),
                "entries": self.entries_seen.get(name, 0),
                "errors": self.errors.get(name, 0),
                "retries": self.retries.get(name, 0),
                "successes": self.successes.get(name, 0),
                "consecutive_failures": self.consecutive_failures.get(name, 0),
            }
            for name in names
        }

    def health_report(
        self, policy: Optional["SloPolicy"] = None
    ) -> "HealthReport":
        """Per-log SLO verdicts over every log this monitor has fetched."""
        from repro.obs.health import evaluate_stats

        return evaluate_stats(self.log_health(), policy)


class StreamingMonitor(_CursorMixin):
    """A near-real-time log follower (CertStream-style).

    Observation latency per entry is sampled uniformly from
    ``latency_range_s`` plus a per-monitor base offset, reproducing the
    73 s - 3 min spread of Table 4.
    """

    def __init__(
        self,
        name: str,
        rng: SeededRng,
        latency_range_s: "tuple[float, float]" = (60.0, 180.0),
        base_offset_s: float = 0.0,
        retry: Optional["RetryPolicy"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        super().__init__(retry=retry, metrics=metrics, events=events)
        self.name = name
        self._rng = rng.fork(f"stream:{name}")
        self.latency_range_s = latency_range_s
        self.base_offset_s = base_offset_s

    def observe(self, log: CTLog) -> List[LogObservation]:
        """Return observations for all entries not yet seen."""
        observations = []
        low, high = self.latency_range_s
        for entry in self._new_entries(log):
            delay = self.base_offset_s + self._rng.uniform(low, high)
            observations.append(
                LogObservation(
                    monitor=self.name,
                    log_name=log.name,
                    entry=entry,
                    observed_at=entry.submitted_at + timedelta(seconds=delay),
                )
            )
        return observations


class BatchMonitor(_CursorMixin):
    """A periodic poller: observes entries at the next poll tick.

    Poll ticks are ``interval`` apart with a random phase, so an entry
    logged just after a poll waits nearly a full interval — producing
    the >= 1-2 hour latencies of the paper's second query population.
    """

    def __init__(
        self,
        name: str,
        rng: SeededRng,
        interval: timedelta = timedelta(hours=2),
        processing_delay_s: float = 30.0,
        retry: Optional["RetryPolicy"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        super().__init__(retry=retry, metrics=metrics, events=events)
        self.name = name
        self._rng = rng.fork(f"batch:{name}")
        self.interval = interval
        self.processing_delay_s = processing_delay_s
        self._phase_s = self._rng.uniform(0.0, interval.total_seconds())

    def next_poll_after(self, moment: datetime) -> datetime:
        """The first poll tick strictly after ``moment``."""
        interval_s = self.interval.total_seconds()
        epoch = datetime(
            moment.year, moment.month, moment.day, tzinfo=moment.tzinfo
        )
        since_midnight = (moment - epoch).total_seconds()
        ticks = int((since_midnight - self._phase_s) // interval_s) + 1
        tick = epoch + timedelta(seconds=self._phase_s + ticks * interval_s)
        # Float/microsecond truncation can land the tick at (or just
        # before) ``moment``; "strictly after" is part of the contract.
        while tick <= moment:
            tick += self.interval
        return tick

    def observe(self, log: CTLog) -> List[LogObservation]:
        observations = []
        for entry in self._new_entries(log):
            poll_at = self.next_poll_after(entry.submitted_at)
            observed = poll_at + timedelta(
                seconds=self._rng.uniform(0.0, self.processing_delay_s)
            )
            observations.append(
                LogObservation(
                    monitor=self.name,
                    log_name=log.name,
                    entry=entry,
                    observed_at=observed,
                )
            )
        return observations


def watch_logs(
    monitors: Iterable[object],
    logs: Iterable[CTLog],
) -> List[LogObservation]:
    """Run every monitor over every log; observations sorted by time."""
    observations: List[LogObservation] = []
    for monitor in monitors:
        for log in logs:
            observations.extend(monitor.observe(log))  # type: ignore[attr-defined]
    observations.sort(key=lambda obs: obs.observed_at)
    return observations
