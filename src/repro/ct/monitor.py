"""CT log monitors: the eyes of Section 6's attacker model.

The honeypot study distinguishes two monitoring styles by their
observed reaction times:

* **streaming** consumers (CertStream-style): near-real-time feeds;
  the paper measures first DNS queries 73 s - ~3 min after the
  precertificate appears, from the same handful of networks every time;
* **batch** consumers: periodic ``get-entries`` polls; queries from
  these arrive no earlier than one hour (99 % of cases) or two hours
  (62 %) after logging.

Both monitor types consume the log through the public read API
(``get_entries`` cursors), never through private state — and since the
transport refactor, "the public read API" is literal: every monitor
polls through a :class:`LogTransport`, either the zero-copy
:class:`InMemoryTransport` over a :class:`~repro.ct.log.CTLog` object
(bit-identical to the pre-transport behaviour) or the
:class:`HttpTransport` over a real :class:`~repro.ct.server.LogServer`
socket.  ``monitor.observe(log)`` and ``monitor.observe(transport)``
are both accepted; bare logs are wrapped on the fly.

:class:`LightweightMonitor` is the third style — Dahlberg & Pulls'
*verifiable light-weight monitoring*: instead of replaying every
entry, it subscribes to a domain set, reads the log's signed per-batch
digests (``get-batch-digest``), verifies STH consistency plus the
digest root's consistency with the served tree head, and downloads
bodies + inclusion proofs **only for entries whose claimed domains
match the subscription**.  Wire-level cost (requests, entries, bytes)
is accounted per poll and reported through :mod:`repro.obs`.

Polling is fault-tolerant: a fetch that fails — after the optional
:class:`~repro.resilience.RetryPolicy` is exhausted — leaves the
log's cursor untouched, so no entry is silently lost; the next
successful poll observes everything that accumulated in the meantime.
Per-log error/retry counters are exposed on each monitor, an attached
:class:`~repro.obs.events.EventLog` receives one ``monitor_fetch``
event per fetch as it happens, and ``health_report()`` folds the
counters into per-log SLO verdicts (see :mod:`repro.obs.health`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.ct.auditor import AuditFinding
from repro.ct.log import BatchDigest, CTLog, LogEntry, SignedTreeHead
from repro.ct.merkle import (
    leaf_hash,
    verify_consistency_proof,
    verify_inclusion_proof,
)
from repro.obs.trace import maybe_span
from repro.util.rng import SeededRng

if TYPE_CHECKING:  # avoid a runtime import cycle through repro.ct
    from repro.ct.server import LogClient
    from repro.obs.events import EventLog
    from repro.obs.health import HealthReport, SloPolicy
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import SpanTracer
    from repro.resilience.retry import RetryPolicy


def _utc_now() -> datetime:
    return datetime.now(timezone.utc)


def domain_matches(domain: str, name: str) -> bool:
    """True when ``name`` equals ``domain`` or is a subdomain of it."""
    domain = domain.lower().strip().lstrip("*.").rstrip(".")
    name = name.lower().strip().rstrip(".")
    return name == domain or name.endswith("." + domain)


# -- transports ----------------------------------------------------------------


class LogTransport:
    """How a monitor reaches one log: name plus the RFC 6962 read API.

    Concrete transports wrap either the in-process log object
    (:class:`InMemoryTransport`) or an HTTP client against a served
    one (:class:`HttpTransport`).  All read methods raise on failure;
    the monitors' cursor bookkeeping treats any exception as "this
    poll saw nothing", leaving the cursor in place.

    ``stats()`` is the wire-cost ledger: cumulative requests, entry
    bodies fetched, and bytes received (0 for in-memory transports,
    where no bytes cross a wire).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.requests = 0
        self.entries_fetched = 0

    def tree_size(self) -> int:
        raise NotImplementedError

    def get_sth(self, now: Optional[datetime] = None) -> SignedTreeHead:
        raise NotImplementedError

    def get_entries(self, start: int, end: int) -> List[LogEntry]:
        raise NotImplementedError

    def get_batch_digest(self, start: int) -> BatchDigest:
        raise NotImplementedError

    def get_proof_by_hash(
        self, digest: bytes, tree_size: int
    ) -> Tuple[int, List[bytes]]:
        raise NotImplementedError

    def get_consistency(self, first: int, second: int) -> List[bytes]:
        raise NotImplementedError

    def bytes_fetched(self) -> int:
        return 0

    def stats(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "entries": self.entries_fetched,
            "bytes": self.bytes_fetched(),
        }


class InMemoryTransport(LogTransport):
    """Zero-copy transport over an in-process log object.

    Accepts anything duck-typed like :class:`~repro.ct.log.CTLog`
    (including :class:`~repro.resilience.FlakyLog` proxies, whose
    injected faults pass straight through).  Monitors polling through
    this transport behave bit-identically to polling the log directly.
    """

    def __init__(
        self,
        log: CTLog,
        *,
        clock: Optional[Callable[[], datetime]] = None,
    ) -> None:
        super().__init__(log.name)
        self.log = log
        self._clock = clock if clock is not None else _utc_now

    def tree_size(self) -> int:
        return self.log.size

    def get_sth(self, now: Optional[datetime] = None) -> SignedTreeHead:
        self.requests += 1
        return self.log.get_sth(now if now is not None else self._clock())

    def get_entries(self, start: int, end: int) -> List[LogEntry]:
        self.requests += 1
        entries = self.log.get_entries(start, end)
        self.entries_fetched += len(entries)
        return entries

    def get_batch_digest(self, start: int) -> BatchDigest:
        # An in-process log has no merge schedule to expose: the whole
        # not-yet-digested suffix is one batch, like a bare served log.
        self.requests += 1
        return self.log.batch_digest(start, self.log.size, self._clock())

    def get_proof_by_hash(
        self, digest: bytes, tree_size: int
    ) -> Tuple[int, List[bytes]]:
        self.requests += 1
        index = self.log.tree.leaf_index(digest)
        if index is None:
            raise KeyError(f"leaf hash not present in {self.name}")
        return index, self.log.get_proof_by_hash(index, tree_size)

    def get_consistency(self, first: int, second: int) -> List[bytes]:
        self.requests += 1
        return self.log.get_consistency(first, second)


class HttpTransport(LogTransport):
    """Transport over a served log's HTTP endpoints.

    ``target`` is either a ready :class:`~repro.ct.server.LogClient`
    or a base URL string (``server.log_url(name)``).  ``get_entries``
    pages through the server's response clamping, so a request larger
    than the serving page limit still returns the full range.  The
    wire ledger counts the client's real request/byte totals; entry
    accounting is per page *as received*, so the ledger stays exact
    even when a fault mid-range forces the caller's retry layer to
    refetch (the books balance against the byte/request counters,
    which also count every attempt).  ``tracer`` propagates to the
    client, which injects the trace-context header per request.
    """

    def __init__(
        self,
        target: Union["LogClient", str],
        name: str,
        *,
        page_size: int = 512,
        timeout: float = 10.0,
        client_id: Optional[str] = None,
        tracer: Optional["SpanTracer"] = None,
    ) -> None:
        from repro.ct.server import LogClient

        super().__init__(name)
        if isinstance(target, LogClient):
            self.client = target
            if tracer is not None and self.client.tracer is None:
                self.client.tracer = tracer
        else:
            self.client = LogClient(
                str(target), timeout=timeout, client_id=client_id,
                tracer=tracer,
            )
        self.page_size = page_size

    def bytes_fetched(self) -> int:
        return self.client.bytes_received

    def stats(self) -> Dict[str, int]:
        return {
            "requests": self.client.requests,
            "entries": self.entries_fetched,
            "bytes": self.client.bytes_received,
        }

    def tree_size(self) -> int:
        return self.get_sth().tree_size

    def get_sth(self, now: Optional[datetime] = None) -> SignedTreeHead:
        return self.client.get_signed_tree_head()

    def get_entries(self, start: int, end: int) -> List[LogEntry]:
        entries: List[LogEntry] = []
        index = start
        while index <= end:
            page = self.client.get_entries(
                index, min(end, index + self.page_size - 1)
            )
            if not page:
                raise RuntimeError(
                    f"{self.name}: empty get-entries page at index {index}"
                )
            # Count each page the moment it lands: if a later page of
            # this range fails, the wire ledger still reflects what was
            # actually transferred (and a retry that refetches counts
            # again, matching the byte counter's view).
            self.entries_fetched += len(page)
            entries.extend(page)
            index = page[-1].index + 1
        return entries

    def get_batch_digest(self, start: int) -> BatchDigest:
        return self.client.get_batch_digest(start)

    def get_proof_by_hash(
        self, digest: bytes, tree_size: int
    ) -> Tuple[int, List[bytes]]:
        return self.client.get_proof_by_hash(digest, tree_size)

    def get_consistency(self, first: int, second: int) -> List[bytes]:
        return self.client.get_sth_consistency(first, second)


def as_transport(target: Union[LogTransport, CTLog]) -> LogTransport:
    """Coerce a monitor's poll target into a transport.

    Transports pass through (keeping their wire ledgers); anything
    else is wrapped in a fresh :class:`InMemoryTransport`.
    """
    if isinstance(target, LogTransport):
        return target
    return InMemoryTransport(target)


# -- observations --------------------------------------------------------------


@dataclass(frozen=True)
class LogObservation:
    """A monitor learning about one log entry."""

    monitor: str
    log_name: str
    entry: LogEntry
    observed_at: datetime

    @property
    def dns_names(self) -> List[str]:
        return self.entry.certificate.dns_names()

    @property
    def latency_seconds(self) -> float:
        return (self.observed_at - self.entry.submitted_at).total_seconds()


class _CursorMixin:
    """Shared cursor bookkeeping over multiple logs.

    The cursor for a log only advances past entries that were actually
    fetched; a failed ``get_entries`` (after the optional retry policy
    gives up) counts into ``errors`` and leaves the cursor alone, so
    the entries surface on the next successful poll instead of being
    skipped.  Over an HTTP transport a failed ``get-sth`` (server
    down, socket error) counts as an error the same way.
    """

    def __init__(
        self,
        retry: Optional["RetryPolicy"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        self._cursors: Dict[str, int] = {}
        self.retry = retry
        self.metrics = metrics
        self.events = events
        self.errors: Dict[str, int] = {}
        self.retries: Dict[str, int] = {}
        self.successes: Dict[str, int] = {}
        self.entries_seen: Dict[str, int] = {}
        self.consecutive_failures: Dict[str, int] = {}

    def _monitor_label(self) -> str:
        return getattr(self, "name", type(self).__name__)

    def _new_entries(
        self, target: Union[LogTransport, CTLog]
    ) -> List[LogEntry]:
        transport = as_transport(target)
        name = transport.name
        cursor = self._cursors.get(name, 0)
        label = self._monitor_label()
        started = time.perf_counter()
        retried = 0
        try:
            size = transport.tree_size()
            if size <= cursor:
                return []
            if self.retry is None:
                entries = transport.get_entries(cursor, size - 1)
            else:
                outcome = self.retry.run(
                    lambda: transport.get_entries(cursor, size - 1)
                )
                entries = outcome.value
                retried = outcome.retried
                self.retries[name] = self.retries.get(name, 0) + retried
                if self.metrics is not None and retried:
                    self.metrics.inc(
                        "monitor.retries",
                        retried,
                        monitor=label,
                        log=name,
                    )
        except Exception as exc:
            self.errors[name] = self.errors.get(name, 0) + 1
            self.consecutive_failures[name] = (
                self.consecutive_failures.get(name, 0) + 1
            )
            failed_retries = max(0, getattr(exc, "attempts", 1) - 1)
            self.retries[name] = (
                self.retries.get(name, 0) + failed_retries
            )
            if self.metrics is not None:
                self.metrics.inc("monitor.errors", monitor=label, log=name)
                if failed_retries:
                    self.metrics.inc(
                        "monitor.retries",
                        failed_retries,
                        monitor=label,
                        log=name,
                    )
            if self.events is not None:
                self.events.emit(
                    "monitor_fetch",
                    monitor=label,
                    log=name,
                    ok=False,
                    error=repr(exc),
                    retried=failed_retries,
                )
            return []
        self.successes[name] = self.successes.get(name, 0) + 1
        self.consecutive_failures[name] = 0
        self.entries_seen[name] = (
            self.entries_seen.get(name, 0) + len(entries)
        )
        if self.metrics is not None:
            self.metrics.observe(
                "monitor.fetch_seconds",
                time.perf_counter() - started,
                monitor=label,
                log=name,
            )
            self.metrics.inc(
                "monitor.entries", len(entries), monitor=label, log=name
            )
        if self.events is not None:
            self.events.emit(
                "monitor_fetch",
                monitor=label,
                log=name,
                ok=True,
                entries=len(entries),
                retried=retried,
            )
        self._cursors[name] = cursor + len(entries)
        return entries

    def log_health(self) -> Dict[str, Dict[str, int]]:
        """Per-log fetch counters in :mod:`repro.obs.health` shape."""
        names = sorted(
            set(self._cursors)
            | set(self.errors)
            | set(self.successes)
        )
        return {
            name: {
                "cursor": self._cursors.get(name, 0),
                "entries": self.entries_seen.get(name, 0),
                "errors": self.errors.get(name, 0),
                "retries": self.retries.get(name, 0),
                "successes": self.successes.get(name, 0),
                "consecutive_failures": self.consecutive_failures.get(name, 0),
            }
            for name in names
        }

    def health_report(
        self, policy: Optional["SloPolicy"] = None
    ) -> "HealthReport":
        """Per-log SLO verdicts over every log this monitor has fetched."""
        from repro.obs.health import evaluate_stats

        return evaluate_stats(self.log_health(), policy)


class StreamingMonitor(_CursorMixin):
    """A near-real-time log follower (CertStream-style).

    Observation latency per entry is sampled uniformly from
    ``latency_range_s`` plus a per-monitor base offset, reproducing the
    73 s - 3 min spread of Table 4.
    """

    def __init__(
        self,
        name: str,
        rng: SeededRng,
        latency_range_s: "tuple[float, float]" = (60.0, 180.0),
        base_offset_s: float = 0.0,
        retry: Optional["RetryPolicy"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        super().__init__(retry=retry, metrics=metrics, events=events)
        self.name = name
        self._rng = rng.fork(f"stream:{name}")
        self.latency_range_s = latency_range_s
        self.base_offset_s = base_offset_s

    def observe(
        self, log: Union[LogTransport, CTLog]
    ) -> List[LogObservation]:
        """Return observations for all entries not yet seen."""
        transport = as_transport(log)
        observations = []
        low, high = self.latency_range_s
        for entry in self._new_entries(transport):
            delay = self.base_offset_s + self._rng.uniform(low, high)
            observations.append(
                LogObservation(
                    monitor=self.name,
                    log_name=transport.name,
                    entry=entry,
                    observed_at=entry.submitted_at + timedelta(seconds=delay),
                )
            )
        return observations


class BatchMonitor(_CursorMixin):
    """A periodic poller: observes entries at the next poll tick.

    Poll ticks are ``interval`` apart with a random phase, so an entry
    logged just after a poll waits nearly a full interval — producing
    the >= 1-2 hour latencies of the paper's second query population.
    """

    def __init__(
        self,
        name: str,
        rng: SeededRng,
        interval: timedelta = timedelta(hours=2),
        processing_delay_s: float = 30.0,
        retry: Optional["RetryPolicy"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        super().__init__(retry=retry, metrics=metrics, events=events)
        self.name = name
        self._rng = rng.fork(f"batch:{name}")
        self.interval = interval
        self.processing_delay_s = processing_delay_s
        self._phase_s = self._rng.uniform(0.0, interval.total_seconds())

    def next_poll_after(self, moment: datetime) -> datetime:
        """The first poll tick strictly after ``moment``."""
        interval_s = self.interval.total_seconds()
        epoch = datetime(
            moment.year, moment.month, moment.day, tzinfo=moment.tzinfo
        )
        since_midnight = (moment - epoch).total_seconds()
        ticks = int((since_midnight - self._phase_s) // interval_s) + 1
        tick = epoch + timedelta(seconds=self._phase_s + ticks * interval_s)
        # Float/microsecond truncation can land the tick at (or just
        # before) ``moment``; "strictly after" is part of the contract.
        while tick <= moment:
            tick += self.interval
        return tick

    def observe(
        self, log: Union[LogTransport, CTLog]
    ) -> List[LogObservation]:
        transport = as_transport(log)
        observations = []
        for entry in self._new_entries(transport):
            poll_at = self.next_poll_after(entry.submitted_at)
            observed = poll_at + timedelta(
                seconds=self._rng.uniform(0.0, self.processing_delay_s)
            )
            observations.append(
                LogObservation(
                    monitor=self.name,
                    log_name=transport.name,
                    entry=entry,
                    observed_at=observed,
                )
            )
        return observations


class LightweightMonitor:
    """A verifiable light-weight monitor (Dahlberg & Pulls).

    Subscribes to a domain set and never downloads non-matching entry
    bodies.  Per poll it:

    1. fetches the STH, verifies its signature (when the log ``key``
       is pinned) and its consistency with the last verified STH;
    2. walks the log's signed batch digests from its cursor, verifying
       each digest signature and the digest root's consistency with
       the served tree head — so the *claimed* domain list is bound to
       the same tree the STH commits to;
    3. for every digest entry whose claimed domains match a
       subscription, fetches just that entry body plus an inclusion
       proof at the STH's tree size, checks the claimed domains
       against the body, and verifies the proof.

    Any verification failure is recorded as an
    :class:`~repro.ct.auditor.AuditFinding` (and stops the cursor, so
    nothing is skipped past); matching entries become
    :class:`LogObservation` rows like every other monitor's.

    Obs surface: per successful poll one ``lightweight_poll`` event
    plus ``monitor.wire_entries`` / ``monitor.wire_bytes`` /
    ``monitor.matches`` counters — the wire cost ledger the efficiency
    benchmark gates on; findings emit ``audit_finding`` events and
    ``auditor.findings{log=,kind=}`` counters, the same family
    :class:`~repro.ct.auditor.LogAuditor` reports into.  With a
    ``tracer``, each poll runs under a ``monitor.poll`` client root
    span with one ``monitor.match`` child per matched entry (carrying
    the claimed domains) — the detection end of the certificate
    lifecycle timeline.
    """

    def __init__(
        self,
        name: str,
        domains: Iterable[str],
        *,
        key: Optional[object] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
        tracer: Optional["SpanTracer"] = None,
    ) -> None:
        self.name = name
        self.domains: Tuple[str, ...] = tuple(
            sorted({d.lower().strip().lstrip("*.").rstrip(".") for d in domains})
        )
        self.key = key
        self.metrics = metrics
        self.events = events
        self.tracer = tracer
        self._cursors: Dict[str, int] = {}
        self._verified: Dict[str, SignedTreeHead] = {}
        self.findings: List[AuditFinding] = []
        self.sths_verified = 0
        self.digests_verified = 0
        self.proofs_verified = 0
        self.entries_matched = 0
        self.wire_entries: Dict[str, int] = {}
        self.wire_bytes: Dict[str, int] = {}
        self.wire_requests: Dict[str, int] = {}

    def matches(self, names: Sequence[str]) -> bool:
        """Whether any of ``names`` falls under a subscribed domain."""
        return any(
            domain_matches(domain, name)
            for name in names
            for domain in self.domains
        )

    def _find(
        self, log_name: str, kind: str, detail: str, now: datetime
    ) -> None:
        finding = AuditFinding(log_name, kind, detail, now)
        self.findings.append(finding)
        if self.metrics is not None:
            self.metrics.inc("auditor.findings", log=log_name, kind=kind)
        if self.events is not None:
            self.events.emit(
                "audit_finding",
                log=log_name,
                finding=kind,
                detail=detail,
            )

    def _verify_entry(
        self,
        transport: LogTransport,
        sth: SignedTreeHead,
        index: int,
        claimed: Sequence[str],
        now: datetime,
    ) -> Optional[LogEntry]:
        """Fetch one matching entry body and prove its inclusion."""
        name = transport.name
        entries = transport.get_entries(index, index)
        if len(entries) != 1 or entries[0].index != index:
            self._find(
                name,
                "missing-entry",
                f"get-entries({index}) did not return entry {index}",
                now,
            )
            return None
        entry = entries[0]
        if sorted(entry.certificate.dns_names()) != sorted(claimed):
            self._find(
                name,
                "missing-entry",
                f"digest claimed domains {sorted(claimed)} for entry "
                f"{index}, body has {sorted(entry.certificate.dns_names())}",
                now,
            )
            return None
        proof_index, path = transport.get_proof_by_hash(
            leaf_hash(entry.leaf_input), sth.tree_size
        )
        if proof_index != index or not verify_inclusion_proof(
            entry.leaf_input, index, sth.tree_size, path, sth.root_hash
        ):
            self._find(
                name,
                "missing-entry",
                f"inclusion proof for matched entry {index} does not "
                f"verify against STH at size {sth.tree_size}",
                now,
            )
            return None
        self.proofs_verified += 1
        return entry

    def poll(
        self,
        target: Union[LogTransport, CTLog],
        now: Optional[datetime] = None,
    ) -> List[LogObservation]:
        """One verification round; returns matching-entry observations.

        With a tracer attached the round runs under a ``monitor.poll``
        client root span (its HTTP calls become child spans carrying
        the trace across the wire).
        """
        transport = as_transport(target)
        if self.tracer is None:
            return self._poll(transport, now)
        with self.tracer.span(
            "monitor.poll",
            kind="client",
            monitor=self.name,
            log=transport.name,
        ) as span:
            observations = self._poll(transport, now)
            span.set("matches", len(observations))
            return observations

    def _poll(
        self,
        transport: LogTransport,
        now: Optional[datetime] = None,
    ) -> List[LogObservation]:
        name = transport.name
        when = now if now is not None else _utc_now()
        before = transport.stats()
        observations: List[LogObservation] = []
        findings_before = len(self.findings)
        try:
            sth = transport.get_sth(when)
        except Exception as exc:
            self._find(name, "fetch-error", f"get-sth failed: {exc!r}", when)
            return []
        if self.key is not None and not sth.verify(self.key):
            self._find(
                name,
                "bad-sth-signature",
                f"STH for tree size {sth.tree_size} has an invalid signature",
                when,
            )
            return []
        self.sths_verified += 1
        previous = self._verified.get(name)
        if previous is not None and not self._check_history(
            transport, previous, sth, when
        ):
            return []
        cursor = self._cursors.get(name, 0)
        try:
            while cursor < sth.tree_size:
                digest = transport.get_batch_digest(cursor)
                if not self._check_digest(transport, digest, cursor, sth, when):
                    break
                for index, claimed in digest.domains:
                    if not self.matches(claimed):
                        continue
                    self.entries_matched += 1
                    with maybe_span(
                        self.tracer,
                        "monitor.match",
                        monitor=self.name,
                        log=name,
                        entry=index,
                        domains=sorted(claimed),
                    ) as match_span:
                        entry = self._verify_entry(
                            transport, sth, index, claimed, when
                        )
                        if match_span is not None:
                            match_span.set("verified", entry is not None)
                    if entry is not None:
                        observations.append(
                            LogObservation(
                                monitor=self.name,
                                log_name=name,
                                entry=entry,
                                observed_at=when,
                            )
                        )
                cursor = digest.end
                self._cursors[name] = cursor
        except Exception as exc:
            self._find(
                name, "fetch-error", f"digest walk failed: {exc!r}", when
            )
        self._verified[name] = sth
        self._account(transport, before, sth, len(observations))
        ok = len(self.findings) == findings_before
        if self.events is not None:
            after = transport.stats()
            self.events.emit(
                "lightweight_poll",
                monitor=self.name,
                log=name,
                tree_size=sth.tree_size,
                cursor=self._cursors.get(name, 0),
                matches=len(observations),
                wire_entries=after["entries"] - before["entries"],
                wire_bytes=after["bytes"] - before["bytes"],
                ok=ok,
            )
        return observations

    # ``watch_logs`` duck-type: a lightweight monitor drops into any
    # monitor population (observation timestamps default to poll time).
    def observe(
        self, log: Union[LogTransport, CTLog]
    ) -> List[LogObservation]:
        return self.poll(log)

    def _check_history(
        self,
        transport: LogTransport,
        previous: SignedTreeHead,
        sth: SignedTreeHead,
        now: datetime,
    ) -> bool:
        """Consistency of the new STH with the last verified one."""
        name = transport.name
        if sth.tree_size < previous.tree_size:
            self._find(
                name,
                "inconsistent-history",
                f"tree shrank from {previous.tree_size} to {sth.tree_size}",
                now,
            )
            return False
        if sth.tree_size == previous.tree_size:
            if sth.root_hash != previous.root_hash:
                self._find(
                    name,
                    "inconsistent-history",
                    f"two roots at tree size {sth.tree_size}: "
                    f"{previous.root_hash.hex()[:16]}… then "
                    f"{sth.root_hash.hex()[:16]}…",
                    now,
                )
                return False
            return True
        try:
            proof = transport.get_consistency(
                previous.tree_size, sth.tree_size
            )
        except Exception as exc:
            self._find(
                name,
                "fetch-error",
                f"get-consistency failed: {exc!r}",
                now,
            )
            return False
        if not verify_consistency_proof(
            previous.tree_size,
            sth.tree_size,
            previous.root_hash,
            sth.root_hash,
            proof,
        ):
            self._find(
                name,
                "inconsistent-history",
                f"no valid consistency proof from size "
                f"{previous.tree_size} to {sth.tree_size}",
                now,
            )
            return False
        return True

    def _check_digest(
        self,
        transport: LogTransport,
        digest: BatchDigest,
        cursor: int,
        sth: SignedTreeHead,
        now: datetime,
    ) -> bool:
        """Verify one batch digest and bind its root into the STH."""
        name = transport.name
        if (
            digest.start != cursor
            or digest.end <= digest.start
            or digest.end > sth.tree_size
        ):
            self._find(
                name,
                "inconsistent-history",
                f"batch digest range [{digest.start}, {digest.end}) does "
                f"not continue cursor {cursor} within tree size "
                f"{sth.tree_size}",
                now,
            )
            return False
        if self.key is not None and not digest.verify(self.key):
            self._find(
                name,
                "bad-sth-signature",
                f"batch digest [{digest.start}, {digest.end}) has an "
                f"invalid signature",
                now,
            )
            return False
        if digest.end == sth.tree_size:
            bound = digest.root_hash == sth.root_hash
        else:
            proof = transport.get_consistency(digest.end, sth.tree_size)
            bound = verify_consistency_proof(
                digest.end,
                sth.tree_size,
                digest.root_hash,
                sth.root_hash,
                proof,
            )
        if not bound:
            self._find(
                name,
                "inconsistent-history",
                f"batch digest root at size {digest.end} is not consistent "
                f"with the STH at size {sth.tree_size}",
                now,
            )
            return False
        self.digests_verified += 1
        return True

    def _account(
        self,
        transport: LogTransport,
        before: Dict[str, int],
        sth: SignedTreeHead,
        matched: int,
    ) -> None:
        after = transport.stats()
        name = transport.name
        entries = after["entries"] - before["entries"]
        moved = after["bytes"] - before["bytes"]
        requests = after["requests"] - before["requests"]
        self.wire_entries[name] = self.wire_entries.get(name, 0) + entries
        self.wire_bytes[name] = self.wire_bytes.get(name, 0) + moved
        self.wire_requests[name] = self.wire_requests.get(name, 0) + requests
        if self.metrics is not None:
            self.metrics.inc(
                "monitor.wire_entries", entries, monitor=self.name, log=name
            )
            self.metrics.inc(
                "monitor.wire_bytes", moved, monitor=self.name, log=name
            )
            self.metrics.inc(
                "monitor.matches", matched, monitor=self.name, log=name
            )
            self.metrics.set_gauge(
                "monitor.verified_tree_size",
                sth.tree_size,
                monitor=self.name,
                log=name,
            )

    def wire_stats(self) -> Dict[str, int]:
        """Cumulative wire cost over every log this monitor polled."""
        return {
            "requests": sum(self.wire_requests.values()),
            "entries": sum(self.wire_entries.values()),
            "bytes": sum(self.wire_bytes.values()),
        }

    @property
    def clean(self) -> bool:
        return not self.findings


def watch_logs(
    monitors: Iterable[object],
    logs: Iterable[Union[LogTransport, CTLog]],
) -> List[LogObservation]:
    """Run every monitor over every log; observations sorted by time."""
    observations: List[LogObservation] = []
    for monitor in monitors:
        for log in logs:
            observations.extend(monitor.observe(log))  # type: ignore[attr-defined]
    observations.sort(key=lambda obs: obs.observed_at)
    return observations
