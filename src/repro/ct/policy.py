"""Chrome's Certificate Transparency policy.

Section 2 recounts Google's enforcement timeline: an announcement in
October 2016, the revised deadline of April 18, 2018, and a policy
requiring "diversely operated log entries".  This module implements the
policy as it stood at enforcement time:

* certificates with a lifetime < 15 months need SCTs from >= 2 logs,
  15-27 months >= 3, 27-39 months >= 4, above that >= 5 (embedded SCTs);
* at least one SCT must come from a Google log and one from a
  non-Google log (operator diversity);
* SCTs must come from logs that were qualified (Chrome-included and
  not disqualified) at issuance time.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ct.log import CTLog
from repro.ct.sct import SignedCertificateTimestamp
from repro.x509.certificate import Certificate

#: Chrome CT enforcement date for all new certificates.
ENFORCEMENT_DATE = date(2018, 4, 18)


def required_sct_count(lifetime_months: float) -> int:
    """Embedded-SCT count Chrome requires for a given lifetime."""
    if lifetime_months < 15:
        return 2
    if lifetime_months <= 27:
        return 3
    if lifetime_months <= 39:
        return 4
    return 5


@dataclass(frozen=True)
class PolicyVerdict:
    """Result of a Chrome CT policy evaluation."""

    compliant: bool
    reasons: Tuple[str, ...] = ()


class ChromeCTPolicy:
    """Evaluate certificates + SCTs against Chrome's CT policy."""

    def __init__(self, logs: Dict[str, CTLog]) -> None:
        self._by_id = {log.log_id: log for log in logs.values()}

    def evaluate(
        self,
        cert: Certificate,
        scts: Sequence[SignedCertificateTimestamp],
        *,
        at: Optional[date] = None,
    ) -> PolicyVerdict:
        """Check SCT count, operator diversity, and log qualification."""
        when = at or cert.not_before.date()
        reasons: List[str] = []
        lifetime_days = (cert.not_after - cert.not_before).days
        needed = required_sct_count(lifetime_days / 30.44)

        qualified = []
        for sct in scts:
            log = self._by_id.get(sct.log_id)
            if log is None:
                reasons.append("SCT from unknown log")
                continue
            if log.disqualified:
                reasons.append(f"SCT from disqualified log {log.name}")
                continue
            if log.chrome_inclusion is None or log.chrome_inclusion > when:
                reasons.append(f"SCT from not-yet-qualified log {log.name}")
                continue
            qualified.append(log)

        if len(qualified) < needed:
            reasons.append(
                f"needs {needed} qualified SCTs, has {len(qualified)}"
            )
        operators = {log.operator for log in qualified}
        if qualified and "Google" not in operators:
            reasons.append("no SCT from a Google log")
        if qualified and operators == {"Google"}:
            reasons.append("no SCT from a non-Google log")
        return PolicyVerdict(compliant=not reasons, reasons=tuple(reasons))

    def enforcement_applies(self, cert: Certificate) -> bool:
        """Chrome enforces only for certificates issued on/after the deadline."""
        return cert.not_before.date() >= ENFORCEMENT_DATE
