"""Domain-label redaction: the countermeasure CT never standardized.

Section 4 of the paper: "The leaking of DNS information was a concern
about CT from the beginning: Symantec even used to operate a special
log (called Deneb) whose explicit goal was to hide subdomains.  There
are also efforts to standardize label redaction."  (The referenced
draft — Strad­ling/Hall's CABForum proposal — replaced subdomain
labels with a ``?`` placeholder in logged precertificates.)

This module implements that proposal so its security/privacy tradeoff
can be *measured*:

* :func:`redact_name` / :func:`redact_certificate` produce the logged
  (redacted) view of a certificate;
* :class:`RedactionPolicy` decides which labels a CA redacts;
* :func:`leakage_reduction` quantifies how much of Section 4.2's label
  leakage a redaction policy would have prevented — and what it costs:
  redacted names cannot be monitored precisely, the very tension that
  kept redaction from standardization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set, Tuple

from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.x509.certificate import Certificate, GeneralName, SanType

#: The placeholder the redaction draft used for hidden labels.
REDACTED_LABEL = "?"


@dataclass(frozen=True)
class RedactionPolicy:
    """Which subdomain labels a CA hides when logging.

    Parameters
    ----------
    redact_all_labels:
        Deneb-style: hide every label under the registrable domain.
    keep_labels:
        Labels never redacted even under ``redact_all_labels`` —
        real proposals kept ``www`` visible.
    sensitive_labels:
        When ``redact_all_labels`` is False, only these are hidden
        (e.g. internal service names).
    """

    redact_all_labels: bool = True
    keep_labels: Tuple[str, ...] = ("www",)
    sensitive_labels: Tuple[str, ...] = ()

    def should_redact(self, label: str) -> bool:
        if label in self.keep_labels:
            return False
        if self.redact_all_labels:
            return True
        return label in self.sensitive_labels


def redact_name(
    name: str,
    policy: RedactionPolicy,
    psl: Optional[PublicSuffixList] = None,
) -> str:
    """The logged form of one DNS name under a redaction policy."""
    psl = psl or default_psl()
    labels, registrable, _ = psl.split(name)
    if registrable is None or not labels:
        return name.lower()
    redacted = [
        REDACTED_LABEL if policy.should_redact(label) else label
        for label in labels
    ]
    return ".".join(redacted + [registrable])


def redact_certificate(
    cert: Certificate,
    policy: RedactionPolicy,
    psl: Optional[PublicSuffixList] = None,
) -> Certificate:
    """The precertificate view a redacting CA would submit to logs."""
    psl = psl or default_psl()
    new_san = tuple(
        GeneralName(entry.san_type, redact_name(entry.value, policy, psl))
        if entry.san_type is SanType.DNS
        else entry
        for entry in cert.san
    )
    from dataclasses import replace

    return replace(
        cert,
        subject_cn=redact_name(cert.subject_cn, policy, psl),
        san=new_san,
    )


def submit_redacted(
    precert: Certificate,
    policy: RedactionPolicy,
    log,  # CTLog; untyped to avoid a module cycle
    issuer_key_hash: bytes,
    now,
    psl: Optional[PublicSuffixList] = None,
):
    """Deneb-style logging: submit the *redacted* view of a precert.

    Returns the SCT the log issues for the redacted precertificate.
    This is exactly what Symantec's Deneb log enabled — and the reason
    such SCTs were never Chrome-trusted: an SCT over the redacted TBS
    cannot be validated against the real final certificate (RFC 6962's
    reconstruction yields different bytes), as
    ``tests/ct/test_redaction.py`` demonstrates.
    """
    redacted = redact_certificate(precert, policy, psl)
    return log.add_pre_chain(redacted, issuer_key_hash, now), redacted


@dataclass
class RedactionImpact:
    """What a redaction policy changes, measured on a name corpus."""

    names_total: int = 0
    labels_total: int = 0
    labels_hidden: int = 0
    #: Distinct hidden labels (the §4.2 vocabulary that disappears).
    hidden_vocabulary: Set[str] = field(default_factory=set)
    #: Names that became unmonitorable (contain a redacted label), so a
    #: watchlist/phishing monitor can no longer match them precisely.
    unmonitorable_names: int = 0

    @property
    def label_reduction(self) -> float:
        if self.labels_total == 0:
            return 0.0
        return self.labels_hidden / self.labels_total

    @property
    def monitoring_loss(self) -> float:
        if self.names_total == 0:
            return 0.0
        return self.unmonitorable_names / self.names_total


def leakage_reduction(
    names: Iterable[str],
    policy: RedactionPolicy,
    psl: Optional[PublicSuffixList] = None,
) -> RedactionImpact:
    """Measure a policy's effect over a CT name corpus.

    This is the quantitative version of the paper's qualitative
    discussion: redaction shrinks the Section 4 attack surface exactly
    as much as it blinds the Section 5 defenders.
    """
    psl = psl or default_psl()
    impact = RedactionImpact()
    for name in names:
        labels, registrable, _ = psl.split(name)
        if registrable is None:
            continue
        impact.names_total += 1
        hidden_here = 0
        for label in labels:
            impact.labels_total += 1
            if policy.should_redact(label):
                impact.labels_hidden += 1
                impact.hidden_vocabulary.add(label)
                hidden_here += 1
        if hidden_here:
            impact.unmonitorable_names += 1
    return impact
