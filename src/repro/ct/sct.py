"""Signed Certificate Timestamps (RFC 6962 section 3.2).

An SCT is a log's signed promise to include a (pre)certificate within
its maximum merge delay.  SCTs reach TLS clients over three channels —
embedded in the certificate, in a TLS extension, or in a stapled OCSP
response — and Section 3 of the paper quantifies each channel's use.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from enum import Enum

from repro.util.timeutil import from_timestamp_ms
from repro.x509 import crypto
from repro.x509.certificate import (
    Certificate,
    POISON_EXTENSION_OID,
    SCT_LIST_EXTENSION_OID,
)


class SctChannel(str, Enum):
    """How an SCT was delivered to the client (paper Section 3.2)."""

    CERTIFICATE = "cert"
    TLS_EXTENSION = "tls"
    OCSP_STAPLE = "ocsp"


class SctEntryType(int, Enum):
    """RFC 6962 LogEntryType."""

    X509_ENTRY = 0
    PRECERT_ENTRY = 1


def precert_signing_input(cert: Certificate, issuer_key_hash: bytes) -> bytes:
    """The bytes a log signs for a precertificate entry.

    Per RFC 6962, the signature covers the issuer key hash plus the
    TBSCertificate with the poison extension removed — and naturally
    without any embedded SCT list, since that does not exist yet.  The
    same function is used when *reconstructing* the precertificate from
    a final certificate, which is exactly how the paper detects the
    invalid embedded SCTs of Section 3.4.
    """
    tbs = cert.tbs_bytes(
        exclude_oids=(POISON_EXTENSION_OID, SCT_LIST_EXTENSION_OID)
    )
    return b"PRECERT" + issuer_key_hash + tbs


def x509_signing_input(cert: Certificate) -> bytes:
    """The bytes a log signs for a final-certificate entry."""
    return b"X509CERT" + cert.tbs_bytes(exclude_oids=(SCT_LIST_EXTENSION_OID,))


@dataclass(frozen=True)
class SignedCertificateTimestamp:
    """An issued SCT.

    Attributes
    ----------
    log_id:
        SHA-256 of the log's public key (RFC 6962 LogID).
    timestamp_ms:
        Issuance time in milliseconds since the epoch.
    entry_type:
        Precertificate or final-certificate entry.
    signature:
        Log signature over the timestamped entry.
    """

    log_id: bytes
    timestamp_ms: int
    entry_type: SctEntryType
    signature: bytes
    extensions: bytes = b""

    @property
    def timestamp(self) -> datetime:
        return from_timestamp_ms(self.timestamp_ms)

    @staticmethod
    def signed_payload(
        log_id: bytes,
        timestamp_ms: int,
        entry_type: SctEntryType,
        entry_input: bytes,
        extensions: bytes = b"",
    ) -> bytes:
        """The exact byte string covered by an SCT signature."""
        return b"".join(
            [
                b"SCTv1",
                log_id,
                timestamp_ms.to_bytes(8, "big"),
                int(entry_type).to_bytes(2, "big"),
                len(extensions).to_bytes(2, "big"),
                extensions,
                entry_input,
            ]
        )

    def verify(self, log_key: crypto.KeyPair, entry_input: bytes) -> bool:
        """Verify this SCT against a log public key and entry bytes."""
        if self.log_id != log_key.key_id:
            return False
        payload = self.signed_payload(
            self.log_id,
            self.timestamp_ms,
            self.entry_type,
            entry_input,
            self.extensions,
        )
        return crypto.verify(log_key, payload, self.signature)

    def encode(self) -> bytes:
        """Wire serialization (used to fill the SCT list extension)."""
        return b"".join(
            [
                len(self.log_id).to_bytes(1, "big"),
                self.log_id,
                self.timestamp_ms.to_bytes(8, "big"),
                int(self.entry_type).to_bytes(2, "big"),
                len(self.extensions).to_bytes(2, "big"),
                self.extensions,
                len(self.signature).to_bytes(2, "big"),
                self.signature,
            ]
        )

    @classmethod
    def decode_list(cls, blob: bytes) -> "list[SignedCertificateTimestamp]":
        """Parse a concatenation of encoded SCTs (the SCT list extension)."""
        scts = []
        offset = 0
        while offset < len(blob):
            id_len = blob[offset]
            offset += 1
            log_id = blob[offset : offset + id_len]
            offset += id_len
            ts = int.from_bytes(blob[offset : offset + 8], "big")
            offset += 8
            entry_type = SctEntryType(
                int.from_bytes(blob[offset : offset + 2], "big")
            )
            offset += 2
            ext_len = int.from_bytes(blob[offset : offset + 2], "big")
            offset += 2
            extensions = blob[offset : offset + ext_len]
            offset += ext_len
            sig_len = int.from_bytes(blob[offset : offset + 2], "big")
            offset += 2
            signature = blob[offset : offset + sig_len]
            offset += sig_len
            scts.append(
                cls(
                    log_id=log_id,
                    timestamp_ms=ts,
                    entry_type=entry_type,
                    signature=signature,
                    extensions=extensions,
                )
            )
        return scts


def encode_sct_list(scts: "list[SignedCertificateTimestamp]") -> bytes:
    """Serialize SCTs for the embedded SCT list extension."""
    return b"".join(sct.encode() for sct in scts)
