"""MMD sequencer: the batched Merkle write pipeline for CT logs.

Section 2 of the paper documents Let's Encrypt's submission volume
overloading the Cloudflare Nimbus log — a write-path scaling failure.
Real logs survive that load through RFC 6962 *maximum merge delay*
semantics: the SCT returned by ``add-(pre-)chain`` is an inclusion
**promise**, and the entry is folded into the Merkle tree later, in
batches, with one new STH per merge.

:class:`LogSequencer` gives a :class:`~repro.ct.log.CTLog` exactly
those semantics:

* :meth:`submit_pre_chain` / :meth:`submit_chain` deduplicate, gate on
  capacity, and sign the SCT **immediately** — the RSA signing happens
  outside every lock, so concurrent submitters never serialize on the
  tree and never block readers;
* the signed entry is parked in a per-log pending queue;
* :meth:`merge` folds up to ``max_batch`` pending entries into the
  tree with :meth:`~repro.ct.merkle.MerkleTree.append_many` (one
  subtree-cache update per batch, not per leaf) and publishes one new
  :class:`~repro.ct.log.SignedTreeHead` per merge — one RSA tree-head
  signature per *batch* instead of per entry.

Two driving modes:

* **deterministic** — construct with ``merge_interval=None`` and call
  :meth:`merge` / :meth:`run_merges` / :meth:`drain` explicitly; tests
  and seeded storms control exactly when entries become visible;
* **background** — pass ``merge_interval`` (seconds) and call
  :meth:`start`; a daemon worker drains the queue every interval in
  ``max_batch``-sized merges until :meth:`stop`.

The merged log state is *bit-identical* to the per-entry write path
for the same submission sequence: same roots, same proofs, same SCT
bytes, same ``get-entries`` bodies (the equivalence suites in
``tests/ct/test_sequencer.py`` pin this, serial and threaded).

Telemetry (optional ``metrics`` / ``events`` sinks, same duck-typed
surface as :class:`~repro.ct.server.LogServer`): a pending-queue depth
gauge (``sequencer.pending_depth``), merge batch-size and merge-lag
histograms (``sequencer.merge_batch_size`` /
``sequencer.merge_lag_seconds``), merge/entry/dedup counters, and one
``sequencer_merge`` event per published STH.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable, Deque, Dict, List, Optional

from repro.ct.log import (
    CTLog,
    LogDisqualifiedError,
    SignedTreeHead,
)
from repro.ct.sct import (
    SctEntryType,
    SignedCertificateTimestamp,
    precert_signing_input,
    x509_signing_input,
)
from repro.obs.trace import SpanTracer, maybe_span
from repro.obs.tracectx import TraceContext
from repro.util.timeutil import timestamp_ms
from repro.x509 import crypto
from repro.x509.certificate import Certificate

#: Default ceiling on entries folded per merge.
DEFAULT_MAX_BATCH = 256

#: Histogram bounds for merge batch sizes (entries per merge).
BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)

#: How long a duplicate submission waits for the original submitter's
#: in-flight SCT signature before giving up (defensive; signing takes
#: microseconds-to-milliseconds).
_DEDUP_WAIT_S = 30.0


def _utc_now() -> datetime:
    return datetime.now(timezone.utc)


class _PendingEntry:
    """One submitted-but-not-yet-merged entry."""

    __slots__ = (
        "cache_key",
        "entry_input",
        "entry_type",
        "certificate",
        "submitted_at",
        "sct",
        "ready",
        "trace_context",
    )

    def __init__(
        self,
        cache_key: bytes,
        entry_input: bytes,
        entry_type: SctEntryType,
        certificate: Certificate,
        submitted_at: datetime,
    ) -> None:
        self.cache_key = cache_key
        self.entry_input = entry_input
        self.entry_type = entry_type
        self.certificate = certificate
        self.submitted_at = submitted_at
        self.sct: Optional[SignedCertificateTimestamp] = None
        # Set once the SCT signature lands; duplicate submitters that
        # lose the reservation race wait on this instead of re-signing.
        self.ready = threading.Event()
        # The submitting span's context (the server span handling the
        # add-pre-chain call); the merge span links back to it across
        # the async boundary.
        self.trace_context: Optional[TraceContext] = None


@dataclass(frozen=True)
class MergeResult:
    """Outcome of one :meth:`LogSequencer.merge` call."""

    merged: int
    tree_size: int
    sth: Optional[SignedTreeHead]
    max_lag_s: float = 0.0

    @property
    def empty(self) -> bool:
        return self.merged == 0


Clock = Callable[[], datetime]


class LogSequencer:
    """Batched MMD write pipeline in front of one :class:`CTLog`.

    Parameters
    ----------
    log:
        The log to sequence.  The sequencer owns the log's write path:
        once sequenced, submissions must go through :meth:`submit_*`
        (mixing in direct ``add_pre_chain`` calls would bypass the
        pending queue's dedup view).
    max_batch:
        Entries folded per merge (the merge worker repeats merges
        until the queue drains, so this bounds batch size, not lag).
    merge_interval:
        Seconds between background merges; ``None`` (default) means
        deterministic mode — merges happen only when explicitly asked.
    clock:
        Injectable UTC-now source for SCT/STH timestamps.
    tree_lock:
        The lock readers of ``log`` hold; merges take it while folding
        a batch.  Defaults to a private RLock —
        :class:`~repro.ct.server.LogServer` passes its per-log lock so
        HTTP readers and merges stay mutually consistent.
    metrics / events / telemetry_lock:
        Optional obs sinks (duck-typed, same as the server middleware).
    tracer:
        Optional :class:`~repro.obs.trace.SpanTracer`.  ``submit``
        records the submitting span's context on the pending entry;
        every ``merge`` then runs under one ``sequencer.merge``
        consumer span *linked* to all folded submissions (one merge,
        N links — the async-boundary case).  ``None`` changes nothing.
    """

    def __init__(
        self,
        log: CTLog,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        merge_interval: Optional[float] = None,
        clock: Optional[Clock] = None,
        tree_lock: Optional[threading.RLock] = None,
        metrics: Optional[object] = None,
        events: Optional[object] = None,
        telemetry_lock: Optional[threading.Lock] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if merge_interval is not None and merge_interval < 0:
            raise ValueError(
                f"merge_interval must be >= 0, got {merge_interval}"
            )
        self.log = log
        self.max_batch = max_batch
        self.merge_interval = merge_interval
        self.tree_lock = tree_lock if tree_lock is not None else threading.RLock()
        self._clock = clock if clock is not None else _utc_now
        self._metrics = metrics
        self._events = events
        self._telemetry_lock = telemetry_lock or threading.Lock()
        self._tracer = tracer
        # Admission/dedup state: guards the pending map, the queue, and
        # the log's capacity counters.  Held only for dict/deque ops —
        # never across an RSA signature.
        self._submit_lock = threading.Lock()
        self._pending: Dict[bytes, _PendingEntry] = {}
        self._queue: Deque[_PendingEntry] = deque()
        # Merges serialize among themselves (worker + explicit calls).
        self._merge_lock = threading.Lock()
        self._latest_sth: Optional[SignedTreeHead] = None
        self._worker: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # Cumulative tree sizes at each published merge (the batch
        # boundaries get-batch-digest serves).  Entries the log held
        # before sequencing form the first batch.
        self._batch_boundaries: List[int] = [log.size] if log.size else []
        # Lifetime counters (kept even without a metrics registry).
        self._merges = 0
        self._entries_merged = 0
        self._dedup_hits = 0
        self._max_batch_merged = 0
        self._max_lag_s = 0.0

    # -- submission (SCT issuance) -------------------------------------------

    def submit_pre_chain(
        self,
        precert: Certificate,
        issuer_key_hash: bytes,
        now: Optional[datetime] = None,
    ) -> SignedCertificateTimestamp:
        """Submit a precertificate; returns the inclusion promise."""
        if not precert.is_precertificate:
            raise ValueError("submit_pre_chain requires a poisoned precertificate")
        entry_input = precert_signing_input(precert, issuer_key_hash)
        return self._submit(
            precert, entry_input, SctEntryType.PRECERT_ENTRY, now
        )

    def submit_chain(
        self, cert: Certificate, now: Optional[datetime] = None
    ) -> SignedCertificateTimestamp:
        """Submit a final certificate."""
        if cert.is_precertificate:
            raise ValueError("submit_chain requires a final certificate")
        return self._submit(
            cert, x509_signing_input(cert), SctEntryType.X509_ENTRY, now
        )

    def _submit(
        self,
        cert: Certificate,
        entry_input: bytes,
        entry_type: SctEntryType,
        now: Optional[datetime],
    ) -> SignedCertificateTimestamp:
        when = now if now is not None else self._clock()
        log = self.log
        if log.disqualified:
            raise LogDisqualifiedError(f"{log.name} is disqualified")
        cache_key = log.submission_cache_key(entry_input)
        with self._submit_lock:
            merged = log.cached_sct(cache_key)
            if merged is not None:
                self._dedup_hits += 1
                self._note_dedup("merged")
                return merged
            pending = self._pending.get(cache_key)
            if pending is None:
                # Admission (capacity gate + quota) happens exactly
                # once per unique entry, atomically with the
                # reservation, so a dedup race never double-charges.
                log.admit(when)
                pending = _PendingEntry(
                    cache_key, entry_input, entry_type, cert, when
                )
                if self._tracer is not None:
                    # The submitting span (e.g. the server span for
                    # this add-pre-chain call) is open on this thread.
                    pending.trace_context = self._tracer.current_context()
                self._pending[cache_key] = pending
                owner = True
            else:
                self._dedup_hits += 1
                owner = False
        if not owner:
            self._note_dedup("pending")
            # The original submitter is signing right now; its entry is
            # already reserved, so we never enqueue a second one.
            pending.ready.wait(timeout=_DEDUP_WAIT_S)
            if pending.sct is None:  # pragma: no cover - defensive
                raise RuntimeError(
                    "duplicate submission timed out waiting for the "
                    "original SCT signature"
                )
            return pending.sct
        # RSA signing OUTSIDE every lock: this is the write-path win —
        # a slow signature neither blocks readers nor other submitters.
        try:
            sct = log.sign_sct(entry_type, entry_input, when)
        except BaseException:
            with self._submit_lock:
                self._pending.pop(cache_key, None)
            pending.ready.set()
            raise
        with self._submit_lock:
            pending.sct = sct
            self._queue.append(pending)
            depth = len(self._queue)
        pending.ready.set()
        self._note_depth(depth)
        return sct

    # -- merging (MMD) -------------------------------------------------------

    def merge(
        self,
        now: Optional[datetime] = None,
        max_batch: Optional[int] = None,
    ) -> MergeResult:
        """Fold one batch of pending entries into the tree.

        Takes up to ``max_batch`` entries off the queue, appends them
        to the Merkle tree in one batched operation, installs their
        SCTs into the dedup cache, and publishes one new STH.  Returns
        an empty :class:`MergeResult` when nothing is pending.
        """
        limit = max_batch if max_batch is not None else self.max_batch
        if limit < 1:
            raise ValueError(f"max_batch must be >= 1, got {limit}")
        with self._merge_lock:
            when = now if now is not None else self._clock()
            with self._submit_lock:
                take = min(limit, len(self._queue))
                batch = [self._queue.popleft() for _ in range(take)]
            if not batch:
                return MergeResult(
                    merged=0, tree_size=self.log.size, sth=None
                )
            # One merge, N links: the consumer span points back at
            # every folded submission's span across the async boundary.
            links = [
                p.trace_context for p in batch if p.trace_context is not None
            ]
            with maybe_span(
                self._tracer,
                "sequencer.merge",
                kind="consumer",
                links=links,
                log=self.log.name,
            ) as span:
                rows = [
                    (p.entry_input, p.entry_type, p.certificate, p.submitted_at)
                    for p in batch
                ]
                with self.tree_lock:
                    # Readers see the whole batch land atomically.
                    self.log.append_batch(rows)
                    size = self.log.tree.size
                    root = self.log.tree.root()
                    self._batch_boundaries.append(size)
                # The tree-head signature (one per merge, not per entry)
                # also happens outside the read lock.
                ts = timestamp_ms(when)
                payload = SignedTreeHead.signed_payload(size, ts, root)
                sth = SignedTreeHead(
                    tree_size=size,
                    timestamp_ms=ts,
                    root_hash=root,
                    signature=crypto.sign(self.log.key, payload),
                )
                with self._submit_lock:
                    for p in batch:
                        # Keys leave the pending map only after the merged
                        # SCT cache covers them: a resubmission always sees
                        # exactly one of the two.
                        self.log.register_sct(p.cache_key, p.sct)
                        self._pending.pop(p.cache_key, None)
                    depth = len(self._queue)
                self._latest_sth = sth
                lag = max(
                    (timestamp_ms(when) - timestamp_ms(p.submitted_at)) / 1e3
                    for p in batch
                )
                self._merges += 1
                self._entries_merged += len(batch)
                self._max_batch_merged = max(self._max_batch_merged, len(batch))
                self._max_lag_s = max(self._max_lag_s, lag)
                self._note_merge(batch, lag, depth, size)
                if span is not None:
                    span.set("merged", len(batch))
                    span.set("tree_size", size)
                    span.set("lag_s", round(lag, 6))
                return MergeResult(
                    merged=len(batch), tree_size=size, sth=sth, max_lag_s=lag
                )

    def run_merges(
        self, n: int, now: Optional[datetime] = None
    ) -> List[MergeResult]:
        """Run up to ``n`` merges (stops early once the queue is dry)."""
        results: List[MergeResult] = []
        for _ in range(n):
            result = self.merge(now)
            if result.empty:
                break
            results.append(result)
        return results

    def drain(self, now: Optional[datetime] = None) -> int:
        """Merge until nothing is pending; returns entries merged.

        Waits out reservations whose SCT signature is still in flight
        on another thread, so after ``drain`` every issued SCT has a
        merged entry behind it.
        """
        total = 0
        while True:
            result = self.merge(now)
            total += result.merged
            if result.merged:
                continue
            with self._submit_lock:
                settled = not self._queue and not self._pending
            if settled:
                return total
            # A submitter holds a reservation but has not enqueued yet
            # (signing in flight); yield and retry.
            time.sleep(0.001)

    # -- background worker ---------------------------------------------------

    def start(self) -> "LogSequencer":
        """Start the background merge worker (no-op in deterministic mode)."""
        if self.merge_interval is None or self._worker is not None:
            return self
        self._stop.clear()
        self._worker = threading.Thread(
            target=self._run_worker,
            name=f"repro-sequencer-{self.log.name}",
            daemon=True,
        )
        self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; by default merge whatever is still queued."""
        worker = self._worker
        if worker is not None:
            self._stop.set()
            worker.join(timeout=30.0)
            self._worker = None
        if drain:
            self.drain()

    def _run_worker(self) -> None:
        interval = self.merge_interval or 0.0
        while not self._stop.wait(timeout=interval):
            while not self.merge().empty:
                pass

    def __enter__(self) -> "LogSequencer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------

    def latest_sth(self) -> Optional[SignedTreeHead]:
        """The STH published by the most recent merge (None pre-merge)."""
        return self._latest_sth

    def batch_boundaries(self) -> List[int]:
        """Cumulative tree sizes at each merge, oldest first.

        Callers wanting a consistent view against the tree should hold
        ``tree_lock`` (boundaries are appended under it during merges).
        """
        with self.tree_lock:
            return list(self._batch_boundaries)

    def pending_count(self) -> int:
        """Entries with an issued (or in-flight) SCT awaiting merge."""
        with self._submit_lock:
            return len(self._pending)

    def queued_count(self) -> int:
        """Signed entries sitting in the merge queue right now."""
        with self._submit_lock:
            return len(self._queue)

    def stats(self) -> Dict[str, float]:
        """Lifetime sequencing counters (kept without a registry too)."""
        with self._submit_lock:
            pending = len(self._pending)
            queued = len(self._queue)
        return {
            "merges": self._merges,
            "entries_merged": self._entries_merged,
            "dedup_hits": self._dedup_hits,
            "pending": pending,
            "queued": queued,
            "max_batch_merged": self._max_batch_merged,
            "max_lag_s": self._max_lag_s,
        }

    # -- obs wiring ----------------------------------------------------------

    def _note_depth(self, depth: int) -> None:
        if self._metrics is not None:
            with self._telemetry_lock:
                self._metrics.set_gauge(
                    "sequencer.pending_depth", depth, log=self.log.name
                )

    def _note_dedup(self, state: str) -> None:
        if self._metrics is not None:
            with self._telemetry_lock:
                self._metrics.inc(
                    "sequencer.dedup_hits", log=self.log.name, state=state
                )

    def _note_merge(
        self,
        batch: List[_PendingEntry],
        lag_s: float,
        depth: int,
        tree_size: int,
    ) -> None:
        if self._metrics is not None:
            with self._telemetry_lock:
                self._metrics.inc("sequencer.merges", log=self.log.name)
                self._metrics.inc(
                    "sequencer.entries_merged", len(batch), log=self.log.name
                )
                self._metrics.observe(
                    "sequencer.merge_batch_size",
                    len(batch),
                    bounds=BATCH_SIZE_BOUNDS,
                    log=self.log.name,
                )
                self._metrics.observe(
                    "sequencer.merge_lag_seconds", lag_s, log=self.log.name
                )
                self._metrics.set_gauge(
                    "sequencer.pending_depth", depth, log=self.log.name
                )
        if self._events is not None:
            self._events.emit(
                "sequencer_merge",
                log=self.log.name,
                batch=len(batch),
                tree_size=tree_size,
                max_lag_ms=round(lag_s * 1e3, 3),
            )


__all__ = [
    "BATCH_SIZE_BOUNDS",
    "DEFAULT_MAX_BATCH",
    "LogSequencer",
    "MergeResult",
]
