"""RFC 6962 HTTP front end for :class:`~repro.ct.log.CTLog` instances.

Everything the paper measures sits downstream of logs answering
``get-sth`` / ``get-entries`` to browsers, monitors, and CAs at
Internet scale.  :class:`LogServer` puts the in-process log object
behind real sockets: a stdlib-only threaded HTTP server exposing the
RFC 6962 section 4 endpoints as JSON, over one or more logs.

Routes (one log also answers at the bare prefix)::

    GET  /                                      server index (non-RFC)
    GET  [/<log-slug>]/ct/v1/get-sth
    GET  [/<log-slug>]/ct/v1/get-entries?start=&end=
    GET  [/<log-slug>]/ct/v1/get-proof-by-hash?hash=&tree_size=
    GET  [/<log-slug>]/ct/v1/get-sth-consistency?first=&second=
    GET  [/<log-slug>]/ct/v1/get-batch-digest?start=     (non-RFC)
    POST [/<log-slug>]/ct/v1/add-pre-chain

Error mapping: malformed or out-of-range parameters answer 400,
an over-capacity log answers 429 (the Nimbus overload incident of
Section 2, now visible to clients), a disqualified log answers 410,
an unknown log or route 404 — always as well-formed JSON, never a bare
500.

The serving side carries the speed work the write path needs under
load: signed tree heads are memoized per tree size (one RSA signature
per tree growth, not per scrape), inclusion/consistency proofs are
memoized in a bounded LRU (proofs over a fixed tree size are
immutable), and the Merkle tree itself caches roots incrementally
(:class:`repro.ct.merkle.MerkleTree`).

The write path scales through the MMD sequencer
(:class:`repro.ct.sequencer.LogSequencer`): pass ``merge_interval``
(plus ``max_batch``) and every mounted :class:`CTLog` gains RFC 6962
maximum-merge-delay semantics — ``add-pre-chain`` signs and returns
the SCT immediately *without taking the per-log read lock*, parks the
entry in a pending queue, and a background worker folds batches into
the Merkle tree, publishing one STH per merge.  A pre-built
:class:`~repro.ct.sequencer.LogSequencer` can also be mounted directly
(deterministic mode: the caller drives ``merge()`` explicitly);
:meth:`LogServer.drain_writes` force-merges everything pending.

Telemetry: with a :class:`~repro.obs.metrics.MetricsRegistry` /
:class:`~repro.obs.events.EventLog` attached, every request records a
per-endpoint latency histogram (``log_server.request_seconds``), a
per-endpoint/status counter (``log_server.responses``), memo hit/miss
counters (``log_server.memo_hits`` / ``log_server.memo_misses``), and
a ``log_server_request`` event — the same obs layer the feed and the
pipeline already report through.

:class:`LogClient` is the matching stdlib client (used by the load
generator of :mod:`repro.workloads.loadgen`), and :func:`harvest_log`
rebuilds a complete, Merkle-verified log replica from the HTTP
endpoints alone — the parity tests prove a corpus built from such a
replica is bit-identical to one read from the in-process object.
"""

from __future__ import annotations

import base64
import hashlib
import json
import re
import threading
import time
from collections import OrderedDict
from datetime import datetime, timezone
from http.server import BaseHTTPRequestHandler
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)
from urllib.error import HTTPError
from urllib.parse import parse_qs, quote, urlsplit
from urllib.request import Request, urlopen

from repro.ct.log import (
    BatchDigest,
    CTLog,
    LogDisqualifiedError,
    LogEntry,
    LogOverloadedError,
    SignedTreeHead,
)
from repro.ct.merkle import MerkleTree
from repro.ct.sequencer import DEFAULT_MAX_BATCH, LogSequencer
from repro.ct.sct import SctEntryType, SignedCertificateTimestamp
from repro.ct.storage import certificate_from_dict, certificate_to_dict
from repro.obs.trace import SpanTracer
from repro.obs.tracectx import TRACEPARENT_HEADER, TraceContext
from repro.util.httpd import HttpServerHandle
from repro.util.timeutil import from_timestamp_ms, timestamp_ms

if TYPE_CHECKING:  # avoid a runtime import cycle through repro.dataset
    from repro.dataset.live import LiveAnalytics
from repro.x509.certificate import Certificate

#: Hard ceiling on entries returned per get-entries page (RFC 6962
#: allows serving fewer entries than requested; real logs page too).
DEFAULT_PAGE_LIMIT = 1024

#: Bound on the per-log proof/page memo (entries, not bytes).
DEFAULT_MEMO_ENTRIES = 4096

_SLUG_CHARS = re.compile(r"[^a-z0-9]+")


def log_slug(name: str) -> str:
    """URL-safe slug for a log name ("Google Pilot log" -> "google-pilot-log")."""
    slug = _SLUG_CHARS.sub("-", name.lower()).strip("-")
    if not slug:
        raise ValueError(f"log name {name!r} does not slugify")
    return slug


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"), validate=True)


class HttpApiError(Exception):
    """An error the server answers with a specific HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def entry_to_wire(entry: LogEntry) -> Dict[str, str]:
    """One get-entries element: RFC-shaped ``leaf_input`` + ``extra_data``.

    ``extra_data`` carries the full certificate record (the same JSON
    schema :mod:`repro.ct.storage` persists), base64-wrapped, so a
    harvester can rebuild the exact :class:`~repro.ct.log.LogEntry`.
    """
    extra = {
        "certificate": certificate_to_dict(entry.certificate),
        "submitted_at": timestamp_ms(entry.submitted_at),
        "entry_type": int(entry.entry_type),
        "index": entry.index,
    }
    return {
        "leaf_input": _b64(entry.leaf_input),
        "extra_data": _b64(
            json.dumps(extra, separators=(",", ":"), sort_keys=True).encode()
        ),
    }


def entry_from_wire(element: Mapping[str, str]) -> LogEntry:
    """Invert :func:`entry_to_wire`."""
    extra = json.loads(_unb64(element["extra_data"]))
    return LogEntry(
        index=extra["index"],
        submitted_at=from_timestamp_ms(extra["submitted_at"]),
        entry_type=SctEntryType(extra["entry_type"]),
        certificate=certificate_from_dict(extra["certificate"]),
        leaf_input=_unb64(element["leaf_input"]),
    )


class _MemoCache:
    """A tiny bounded LRU for immutable responses (proofs, pages).

    Only *validated* responses may be cached: every endpoint raises on
    malformed/out-of-range parameters **before** touching the cache,
    so junk requests can neither evict legitimate proof/page entries
    nor skew the hit-rate accounting.
    """

    def __init__(self, max_entries: int) -> None:
        self.max_entries = max_entries
        self._data: "OrderedDict[tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 before any request (never divides by 0)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: tuple) -> bool:
        # Membership probe for tests/introspection: does not count as
        # a lookup and does not touch LRU order.
        return key in self._data

    def get(self, key: tuple) -> Optional[object]:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: tuple, value: object) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)


def default_split_partition(client_id: str) -> bool:
    """The default victim selector for :class:`SplitView` mounts.

    Returns True when the client should be served the equivocating
    twin.  Anonymous clients (empty id) always see the honest view.
    Named clients split deterministically: ids with a trailing
    ``-<number>`` component (the load generator's ``browser-3`` /
    ``monitor-1`` naming) split on that number's parity, anything else
    on the low bit of a sha256 over the id — never on Python's salted
    ``hash()``, which would change between processes.
    """
    if not client_id:
        return False
    tail = client_id.rsplit("-", 1)[-1]
    if tail.isdigit():
        return int(tail) % 2 == 1
    return hashlib.sha256(client_id.encode("utf-8")).digest()[-1] % 2 == 1


class SplitView:
    """A misbehaving log: honest view plus an equivocating twin.

    Mount this instead of a bare log to model the split-view attacker
    of the gossip literature: the server answers every read endpoint
    from either the honest log or the twin depending on which side the
    requesting client (the ``X-Repro-Client`` header) falls on.  Both
    views share one name/slug — clients cannot tell which side they
    are on without gossiping their STHs.

    ``partition`` maps a client id to True for "serve the twin"
    (default :func:`default_split_partition`).  Submissions always land
    on the honest log: the attack is about reads.
    """

    def __init__(
        self,
        honest: Union[CTLog, LogSequencer],
        twin: CTLog,
        *,
        partition: Optional[Callable[[str], bool]] = None,
    ) -> None:
        honest_log = honest.log if isinstance(honest, LogSequencer) else honest
        if log_slug(twin.name) != log_slug(honest_log.name):
            raise ValueError(
                f"split-view twin {twin.name!r} must share the honest "
                f"log's slug {log_slug(honest_log.name)!r}"
            )
        self.honest = honest
        self.twin = twin
        self.partition = (
            partition if partition is not None else default_split_partition
        )


class _ServedLog:
    """One mounted log: the object, its lock, and its memo caches.

    A mounted :class:`~repro.ct.sequencer.LogSequencer` brings its own
    tree lock (merges and HTTP readers must agree on one), and its
    published STH is reused instead of re-signing on scrape.
    """

    def __init__(
        self, target: Union[CTLog, LogSequencer], memo_entries: int
    ) -> None:
        if isinstance(target, LogSequencer):
            self.sequencer: Optional[LogSequencer] = target
            self.log = target.log
            # Readers take the same lock merges fold batches under.
            self.lock: threading.RLock = target.tree_lock
        else:
            self.sequencer = None
            self.log = target
            # One lock per log: CTLog is not thread-safe, and handler
            # threads race both reads and add-pre-chain mutations.
            self.lock = threading.RLock()
        self.slug = log_slug(self.log.name)
        self.memo = _MemoCache(memo_entries)
        self._sth_memo: Optional[Tuple[int, Dict[str, object]]] = None
        # Split-view mount: (partition fn, the twin's _ServedLog).
        self.split: Optional[
            Tuple[Callable[[str], bool], "_ServedLog"]
        ] = None

    def select(self, client_id: str) -> "_ServedLog":
        """The view this client is served (honest unless partitioned)."""
        if self.split is not None and self.split[0](client_id):
            return self.split[1]
        return self

    def sth_body(self, now: datetime) -> Dict[str, object]:
        """The signed tree head, memoized per tree size.

        One signature per tree growth: a million scrapes between two
        appends cost one RSA signing operation, exactly like a real
        log publishing an STH on an interval.  A sequenced log already
        signed an STH at merge time; that one is served as-is.
        """
        size = self.log.tree.size
        if self._sth_memo is not None and self._sth_memo[0] == size:
            self.memo.hits += 1
            return self._sth_memo[1]
        self.memo.misses += 1
        sth = None
        if self.sequencer is not None:
            published = self.sequencer.latest_sth()
            if published is not None and published.tree_size == size:
                sth = published
        if sth is None:
            sth = self.log.get_sth(now)
        body: Dict[str, object] = {
            "tree_size": sth.tree_size,
            "timestamp": sth.timestamp_ms,
            "sha256_root_hash": _b64(sth.root_hash),
            "tree_head_signature": _b64(sth.signature),
        }
        self._sth_memo = (size, body)
        return body


Clock = Callable[[], datetime]


def _utc_now() -> datetime:
    return datetime.now(timezone.utc)


class LogServer:
    """Serve one or more CT logs over HTTP (RFC 6962 section 4).

    Parameters
    ----------
    logs:
        A single :class:`~repro.ct.log.CTLog`, an iterable of logs, or
        a mapping of them.  Each log mounts at ``/<slug>/ct/v1/...``
        (see :func:`log_slug`); when exactly one log is served it also
        answers at the bare ``/ct/v1/...`` prefix.
    clock:
        Injectable UTC-now source stamping STHs and submissions
        (deterministic tests/storms pass a simulated clock).
    metrics / events:
        Optional obs sinks for the request-logging middleware; pass
        ``telemetry_lock`` when the registry is shared with another
        thread (the registry itself is not thread-safe).
    tracer:
        Optional :class:`~repro.obs.trace.SpanTracer` (thread-safe).
        The middleware opens one ``server.<endpoint>`` span per
        request, parented on the client span named by the incoming
        ``X-Repro-Traceparent`` header — the cross-process half of a
        distributed trace.  Server-created sequencers share the
        tracer, so merges emit consumer spans linked to the folded
        submissions.  Tracing off (``None``) changes nothing.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port — the shared
        :class:`repro.util.httpd.HttpServerHandle` behaviour, identical
        to :class:`repro.obs.export.TelemetryServer`.
    merge_interval / max_batch:
        When ``merge_interval`` is set, every bare :class:`CTLog` is
        wrapped in a :class:`~repro.ct.sequencer.LogSequencer` whose
        background worker merges pending entries every
        ``merge_interval`` seconds in ``max_batch``-sized Merkle
        batches (MMD semantics: SCT first, inclusion later).  The
        worker follows :meth:`start`/:meth:`stop`; ``stop`` drains.
        Mounting a pre-built sequencer instead leaves merge scheduling
        to the caller.
    """

    def __init__(
        self,
        logs: Union[
            CTLog,
            LogSequencer,
            SplitView,
            Iterable[Union[CTLog, LogSequencer, SplitView]],
            Mapping[str, Union[CTLog, LogSequencer, SplitView]],
        ],
        *,
        clock: Optional[Clock] = None,
        metrics: Optional[object] = None,
        events: Optional[object] = None,
        telemetry_lock: Optional[threading.Lock] = None,
        tracer: Optional[SpanTracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        page_limit: int = DEFAULT_PAGE_LIMIT,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
        merge_interval: Optional[float] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        if isinstance(logs, (CTLog, LogSequencer, SplitView)):
            log_list: List[Union[CTLog, LogSequencer, SplitView]] = [logs]
        elif isinstance(logs, Mapping):
            log_list = list(logs.values())
        else:
            log_list = list(logs)
        if not log_list:
            raise ValueError("LogServer needs at least one log")
        self._clock = clock if clock is not None else _utc_now
        self._metrics = metrics
        self._events = events
        self._telemetry_lock = telemetry_lock or threading.Lock()
        self._tracer = tracer
        # Sequencers the server itself created (merge_interval mode):
        # their background workers follow the server's start()/stop().
        # Prebuilt LogSequencer mounts stay caller-managed.
        self._own_sequencers: List[LogSequencer] = []
        self._served: "Dict[str, _ServedLog]" = {}
        for log in log_list:
            split: Optional[SplitView] = None
            if isinstance(log, SplitView):
                # Split-view mounts serve as given: an equivocating
                # operator decides its own merge schedule.
                split = log
                log = log.honest
            elif isinstance(log, CTLog) and merge_interval is not None:
                log = LogSequencer(
                    log,
                    max_batch=max_batch,
                    merge_interval=merge_interval,
                    clock=self._clock,
                    metrics=metrics,
                    events=events,
                    telemetry_lock=self._telemetry_lock,
                    tracer=tracer,
                )
                self._own_sequencers.append(log)
            served = _ServedLog(log, memo_entries)
            if split is not None:
                served.split = (
                    split.partition,
                    _ServedLog(split.twin, memo_entries),
                )
            if served.slug in self._served:
                raise ValueError(f"duplicate log slug {served.slug!r}")
            self._served[served.slug] = served
        self._single = (
            next(iter(self._served.values())) if len(self._served) == 1 else None
        )
        self.page_limit = page_limit
        self._handle = HttpServerHandle(
            _LogServerHandler,
            owner=self,
            host=host,
            port=port,
            thread_name="repro-log-server",
        )

    # -- address / lifecycle (shared handle surface) -------------------------

    @property
    def host(self) -> str:
        return self._handle.host

    @property
    def port(self) -> int:
        return self._handle.port

    @property
    def url(self) -> str:
        return self._handle.url

    def start(self) -> "LogServer":
        self._handle.start()
        for sequencer in self._own_sequencers:
            sequencer.start()
        return self

    def stop(self) -> None:
        self._handle.stop()
        # After the socket closes no new submissions can land; merge
        # whatever is still pending so every issued SCT is honoured.
        for sequencer in self._own_sequencers:
            sequencer.stop(drain=True)

    def __enter__(self) -> "LogServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def log_url(self, name: str) -> str:
        """Base URL of one served log (``.../<slug>``)."""
        slug = log_slug(name)
        if slug not in self._served:
            raise KeyError(f"no served log named {name!r}")
        return f"{self.url}/{slug}"

    @property
    def slugs(self) -> List[str]:
        return sorted(self._served)

    # -- dispatch (handler threads) ------------------------------------------

    def _resolve(self, path: str) -> Tuple[_ServedLog, str]:
        """Split a URL path into (served log, endpoint path)."""
        if path.startswith("/ct/v1/") and self._single is not None:
            return self._single, path[len("/ct/v1/") :]
        parts = path.lstrip("/").split("/", 1)
        if len(parts) == 2 and parts[1].startswith("ct/v1/"):
            served = self._served.get(parts[0])
            if served is not None:
                return served, parts[1][len("ct/v1/") :]
        raise HttpApiError(404, f"unknown route {path!r}")

    def handle_request(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        client: str = "",
        traceparent: str = "",
    ) -> Tuple[int, Dict[str, object], str]:
        """Route one request; returns (status, json body, endpoint label).

        ``client`` is the requester's self-declared identity (the
        ``X-Repro-Client`` header) — only consulted by split-view
        mounts to pick which side of the partition answers reads.
        ``traceparent`` is the raw ``X-Repro-Traceparent`` header; with
        a tracer attached the request runs under a ``server.<endpoint>``
        span parented on the remote client span it names.
        """
        if self._tracer is None:
            return self._handle_routed(method, path, query, body, client)
        parent = TraceContext.parse(traceparent)
        with self._tracer.span(
            "server.request", kind="server", parent=parent
        ) as span:
            status, payload, endpoint = self._handle_routed(
                method, path, query, body, client
            )
            # The endpoint is only known after routing; rename before
            # the span closes so the serialized event carries it.
            span.name = f"server.{endpoint}"
            span.set("endpoint", endpoint)
            span.set("status", status)
            span.set("method", method)
            return status, payload, endpoint

    def _handle_routed(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        client: str = "",
    ) -> Tuple[int, Dict[str, object], str]:
        endpoint = "unknown"
        slug = "-"
        started = time.perf_counter()
        try:
            if path in ("", "/"):
                endpoint = "index"
                if method != "GET":
                    raise HttpApiError(405, "index is GET-only")
                return self._finish(200, self._index_body(), endpoint, slug, started)
            served, endpoint = self._resolve(path)
            slug = served.slug
            params = parse_qs(query)
            if endpoint == "add-pre-chain":
                if method != "POST":
                    raise HttpApiError(405, "add-pre-chain requires POST")
                # Submissions always land on the honest log: the
                # split-view attack is about diverging *reads*.
                status, payload = self._add_pre_chain(served, body)
            elif method != "GET":
                raise HttpApiError(405, f"{endpoint} requires GET")
            else:
                served = served.select(client)
                if endpoint == "get-sth":
                    status, payload = self._get_sth(served)
                elif endpoint == "get-entries":
                    status, payload = self._get_entries(served, params)
                elif endpoint == "get-proof-by-hash":
                    status, payload = self._get_proof_by_hash(served, params)
                elif endpoint == "get-sth-consistency":
                    status, payload = self._get_consistency(served, params)
                elif endpoint == "get-batch-digest":
                    status, payload = self._get_batch_digest(served, params)
                else:
                    raise HttpApiError(404, f"unknown endpoint {endpoint!r}")
            return self._finish(status, payload, endpoint, slug, started)
        except HttpApiError as exc:
            return self._finish(
                exc.status,
                {"error": exc.message, "code": exc.status},
                endpoint,
                slug,
                started,
            )
        except LogOverloadedError as exc:
            return self._finish(
                429, {"error": str(exc), "code": 429}, endpoint, slug, started
            )
        except LogDisqualifiedError as exc:
            return self._finish(
                410, {"error": str(exc), "code": 410}, endpoint, slug, started
            )
        except Exception as exc:  # defensive: never a bare 500 page
            return self._finish(
                500,
                {"error": f"internal error: {exc!r}", "code": 500},
                endpoint,
                slug,
                started,
            )

    def _finish(
        self,
        status: int,
        payload: Dict[str, object],
        endpoint: str,
        slug: str,
        started: float,
    ) -> Tuple[int, Dict[str, object], str]:
        """Request-logging middleware: histogram + counter + event."""
        duration = time.perf_counter() - started
        if self._metrics is not None:
            with self._telemetry_lock:
                self._metrics.observe(
                    "log_server.request_seconds", duration, endpoint=endpoint
                )
                self._metrics.inc(
                    "log_server.responses", endpoint=endpoint, status=status
                )
        if self._events is not None:
            self._events.emit(
                "log_server_request",
                endpoint=endpoint,
                status=status,
                log=slug,
                duration_ms=round(duration * 1e3, 3),
            )
        return status, payload, endpoint

    # -- endpoint bodies -----------------------------------------------------

    def _index_body(self) -> Dict[str, object]:
        logs = []
        for slug in sorted(self._served):
            served = self._served[slug]
            with served.lock:
                entry: Dict[str, object] = {
                    "slug": slug,
                    "name": served.log.name,
                    "operator": served.log.operator,
                    "tree_size": served.log.tree.size,
                    "disqualified": served.log.disqualified,
                    "url": f"/{slug}",
                }
            if served.sequencer is not None:
                entry["pending"] = served.sequencer.pending_count()
            if served.split is not None:
                entry["split_view"] = True
            logs.append(entry)
        return {"logs": logs}

    def _get_sth(self, served: _ServedLog) -> Tuple[int, Dict[str, object]]:
        with served.lock:
            return 200, served.sth_body(self._clock())

    @staticmethod
    def _int_param(params: Mapping[str, List[str]], name: str) -> int:
        values = params.get(name)
        if not values:
            raise HttpApiError(400, f"missing parameter {name!r}")
        try:
            return int(values[0])
        except ValueError:
            raise HttpApiError(
                400, f"parameter {name!r} must be an integer, got {values[0]!r}"
            ) from None

    def _get_entries(
        self, served: _ServedLog, params: Mapping[str, List[str]]
    ) -> Tuple[int, Dict[str, object]]:
        start = self._int_param(params, "start")
        end = self._int_param(params, "end")
        if start < 0 or end < start:
            raise HttpApiError(
                400, f"invalid range: start={start} end={end}"
            )
        with served.lock:
            size = served.log.tree.size
            if size == 0:
                raise HttpApiError(400, "log is empty")
            if start >= size:
                raise HttpApiError(
                    400, f"start={start} beyond tree_size={size}"
                )
            # RFC 6962 lets the log return fewer entries than asked:
            # clamp the tail and page down to the serving limit.
            end = min(end, size - 1, start + self.page_limit - 1)
            key = ("entries", start, end)
            cached = served.memo.get(key)
            if cached is None:
                cached = {
                    "entries": [
                        entry_to_wire(entry)
                        for entry in served.log.get_entries(start, end)
                    ]
                }
                served.memo.put(key, cached)
            return 200, cached  # type: ignore[return-value]

    def _get_proof_by_hash(
        self, served: _ServedLog, params: Mapping[str, List[str]]
    ) -> Tuple[int, Dict[str, object]]:
        tree_size = self._int_param(params, "tree_size")
        hashes = params.get("hash")
        if not hashes:
            raise HttpApiError(400, "missing parameter 'hash'")
        try:
            digest = _unb64(hashes[0])
        except Exception:
            raise HttpApiError(400, "parameter 'hash' is not valid base64") from None
        with served.lock:
            size = served.log.tree.size
            if not 0 < tree_size <= size:
                raise HttpApiError(
                    400, f"tree_size={tree_size} outside (0, {size}]"
                )
            index = served.log.tree.leaf_index(digest)
            if index is None:
                raise HttpApiError(404, "leaf hash not found in this log")
            if index >= tree_size:
                raise HttpApiError(
                    400,
                    f"leaf index {index} not included in tree_size={tree_size}",
                )
            key = ("incl", digest, tree_size)
            cached = served.memo.get(key)
            if cached is None:
                proof = served.log.get_proof_by_hash(index, tree_size)
                cached = {
                    "leaf_index": index,
                    "audit_path": [_b64(node) for node in proof],
                }
                served.memo.put(key, cached)
            return 200, cached  # type: ignore[return-value]

    def _get_consistency(
        self, served: _ServedLog, params: Mapping[str, List[str]]
    ) -> Tuple[int, Dict[str, object]]:
        first = self._int_param(params, "first")
        second = self._int_param(params, "second")
        with served.lock:
            size = served.log.tree.size
            if not 0 <= first <= second <= size:
                raise HttpApiError(
                    400,
                    f"require 0 <= first <= second <= tree_size, got "
                    f"first={first} second={second} tree_size={size}",
                )
            key = ("cons", first, second)
            cached = served.memo.get(key)
            if cached is None:
                proof = served.log.get_consistency(first, second)
                cached = {"consistency": [_b64(node) for node in proof]}
                served.memo.put(key, cached)
            return 200, cached  # type: ignore[return-value]

    def _get_batch_digest(
        self, served: _ServedLog, params: Mapping[str, List[str]]
    ) -> Tuple[int, Dict[str, object]]:
        """Signed domain digest of the merge batch containing ``start``.

        The batch ends at the first published merge boundary past
        ``start`` (sequenced logs), or at the current tree size (bare
        logs, where every entry is merged on arrival) — so a
        light-weight monitor walking digests from its cursor sees the
        same batches the sequencer published STHs for.
        """
        start = self._int_param(params, "start")
        with served.lock:
            size = served.log.tree.size
            if not 0 <= start < size:
                raise HttpApiError(
                    400, f"start={start} outside [0, {size})"
                )
            end = size
            if served.sequencer is not None:
                for boundary in served.sequencer.batch_boundaries():
                    if boundary > start:
                        end = min(end, boundary)
                        break
            key = ("digest", start, end)
            cached = served.memo.get(key)
            if cached is None:
                digest = served.log.batch_digest(start, end, self._clock())
                cached = {
                    "start": digest.start,
                    "end": digest.end,
                    "timestamp": digest.timestamp_ms,
                    "sha256_root_hash": _b64(digest.root_hash),
                    "domains": [
                        [index, list(names)]
                        for index, names in digest.domains
                    ],
                    "signature": _b64(digest.signature),
                }
                served.memo.put(key, cached)
            return 200, cached  # type: ignore[return-value]

    def _add_pre_chain(
        self, served: _ServedLog, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise HttpApiError(400, "request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise HttpApiError(400, "request body must be a JSON object")
        chain = payload.get("chain")
        if not isinstance(chain, list) or not chain:
            raise HttpApiError(400, "body needs a non-empty 'chain' list")
        if "issuer_key_hash" not in payload:
            raise HttpApiError(400, "body needs 'issuer_key_hash'")
        try:
            precert = certificate_from_dict(chain[0])
            issuer_key_hash = _unb64(payload["issuer_key_hash"])
        except HttpApiError:
            raise
        except Exception as exc:
            raise HttpApiError(400, f"malformed chain: {exc}") from None
        if served.sequencer is not None:
            # MMD write path: dedup + SCT signing happen in the
            # sequencer without touching the per-log read lock, so a
            # submission storm on this log never serializes against
            # readers — or against other logs' writers.
            try:
                sct = served.sequencer.submit_pre_chain(
                    precert, issuer_key_hash, self._clock()
                )
            except ValueError as exc:
                raise HttpApiError(400, str(exc)) from None
        else:
            with served.lock:
                try:
                    sct = served.log.add_pre_chain(
                        precert, issuer_key_hash, self._clock()
                    )
                except ValueError as exc:
                    raise HttpApiError(400, str(exc)) from None
        return 200, {
            "sct_version": 0,
            "id": _b64(sct.log_id),
            "timestamp": sct.timestamp_ms,
            "extensions": _b64(sct.extensions),
            "signature": _b64(sct.signature),
        }

    # -- introspection -------------------------------------------------------

    def drain_writes(self) -> int:
        """Merge every pending entry on every sequenced log, now.

        Returns the number of entries folded.  Useful for tests and
        storms that issued SCTs and want inclusion proofs without
        waiting out the merge interval.  Per-entry logs contribute 0.
        """
        return sum(
            served.sequencer.drain()
            for served in self._served.values()
            if served.sequencer is not None
        )

    def sequencer_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-log sequencer counters (sequenced logs only)."""
        return {
            slug: served.sequencer.stats()
            for slug, served in sorted(self._served.items())
            if served.sequencer is not None
        }

    def memo_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-log memo counters (STH memo included).

        ``hit_rate`` is hits per lookup and is 0.0 for a server that
        has not seen a single memoized request yet — scraping the
        stats before any traffic never divides by zero.
        """
        return {
            slug: {
                "hits": served.memo.hits,
                "misses": served.memo.misses,
                "lookups": served.memo.lookups,
                "hit_rate": served.memo.hit_rate(),
            }
            for slug, served in sorted(self._served.items())
        }


class _LogServerHandler(BaseHTTPRequestHandler):
    server_version = "repro-ct-log/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, *args: object) -> None:  # middleware logs instead
        pass

    def _dispatch(self, method: str) -> None:
        owner: LogServer = self.server.owner  # type: ignore[attr-defined]
        parts = urlsplit(self.path)
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        client = self.headers.get("X-Repro-Client", "") or ""
        traceparent = self.headers.get(TRACEPARENT_HEADER, "") or ""
        status, payload, _ = owner.handle_request(
            method, parts.path, parts.query, body, client, traceparent
        )
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


# -- client side --------------------------------------------------------------


class LogClientError(RuntimeError):
    """A non-2xx answer from a log endpoint."""

    def __init__(self, status: int, body: Mapping[str, object]) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = dict(body)


class LogClient:
    """Minimal stdlib client for one served log.

    ``base_url`` is the log's mount point — ``server.log_url(name)``,
    or the server URL itself for a single-log server.  ``client_id``
    is sent as the ``X-Repro-Client`` header (how split-view mounts
    partition their victims).  The client keeps a wire ledger:
    ``requests`` and ``bytes_received`` count every call, including
    error responses — the cost accounting the light-weight monitor
    benchmark gates on.

    With a ``tracer`` attached, every call runs under an
    ``http.<endpoint>`` client span whose context is injected as the
    ``X-Repro-Traceparent`` header, so the server's span joins this
    client's trace.  Tracing off changes nothing on the wire.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        client_id: Optional[str] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id
        self.tracer = tracer
        self.requests = 0
        self.bytes_received = 0

    def _call(
        self,
        endpoint: str,
        params: Optional[Mapping[str, object]] = None,
        post_body: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        if self.tracer is None:
            return self._request(endpoint, params, post_body)
        with self.tracer.span(f"http.{endpoint}", kind="client") as span:
            if self.client_id:
                span.set("client", self.client_id)
            try:
                body = self._request(
                    endpoint, params, post_body, span.context.to_header()
                )
            except LogClientError as exc:
                span.set("status", exc.status)
                raise
            span.set("status", 200)
            return body

    def _request(
        self,
        endpoint: str,
        params: Optional[Mapping[str, object]] = None,
        post_body: Optional[Mapping[str, object]] = None,
        traceparent: str = "",
    ) -> Dict[str, object]:
        url = f"{self.base_url}/ct/v1/{endpoint}"
        if params:
            query = "&".join(
                f"{key}={_quote(str(value))}" for key, value in params.items()
            )
            url = f"{url}?{query}"
        data = None
        headers = {}
        if post_body is not None:
            data = json.dumps(post_body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        if traceparent:
            headers[TRACEPARENT_HEADER] = traceparent
        request = Request(url, data=data, headers=headers)
        self.requests += 1
        try:
            with urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
                self.bytes_received += len(raw)
                return json.loads(raw.decode("utf-8"))
        except HTTPError as exc:
            raw = b""
            try:
                raw = exc.read()
                body = json.loads(raw.decode("utf-8"))
            except Exception:
                body = {"error": f"HTTP {exc.code}"}
            self.bytes_received += len(raw)
            raise LogClientError(exc.code, body) from None

    # -- RFC 6962 calls ------------------------------------------------------

    def get_sth(self) -> Dict[str, object]:
        return self._call("get-sth")

    def get_signed_tree_head(self) -> SignedTreeHead:
        """``get-sth`` parsed into a :class:`~repro.ct.log.SignedTreeHead`."""
        body = self.get_sth()
        return SignedTreeHead(
            tree_size=int(body["tree_size"]),
            timestamp_ms=int(body["timestamp"]),
            root_hash=_unb64(str(body["sha256_root_hash"])),
            signature=_unb64(str(body["tree_head_signature"])),
        )

    def get_batch_digest(self, start: int) -> BatchDigest:
        """The signed batch digest covering entry ``start``."""
        body = self._call("get-batch-digest", {"start": start})
        return BatchDigest(
            start=int(body["start"]),
            end=int(body["end"]),
            timestamp_ms=int(body["timestamp"]),
            root_hash=_unb64(str(body["sha256_root_hash"])),
            domains=tuple(
                (int(index), tuple(names)) for index, names in body["domains"]
            ),
            signature=_unb64(str(body["signature"])),
        )

    def get_entries(self, start: int, end: int) -> List[LogEntry]:
        body = self._call("get-entries", {"start": start, "end": end})
        return [entry_from_wire(element) for element in body["entries"]]

    def get_proof_by_hash(
        self, digest: bytes, tree_size: int
    ) -> Tuple[int, List[bytes]]:
        body = self._call(
            "get-proof-by-hash",
            {"hash": _b64(digest), "tree_size": tree_size},
        )
        return (
            int(body["leaf_index"]),
            [_unb64(node) for node in body["audit_path"]],
        )

    def get_sth_consistency(self, first: int, second: int) -> List[bytes]:
        body = self._call(
            "get-sth-consistency", {"first": first, "second": second}
        )
        return [_unb64(node) for node in body["consistency"]]

    def add_pre_chain(
        self, precert: Certificate, issuer_key_hash: bytes
    ) -> SignedCertificateTimestamp:
        body = self._call(
            "add-pre-chain",
            post_body={
                "chain": [certificate_to_dict(precert)],
                "issuer_key_hash": _b64(issuer_key_hash),
            },
        )
        return SignedCertificateTimestamp(
            log_id=_unb64(body["id"]),
            timestamp_ms=int(body["timestamp"]),
            entry_type=SctEntryType.PRECERT_ENTRY,
            signature=_unb64(body["signature"]),
            extensions=_unb64(body["extensions"]),
        )


class HarvestedLog:
    """A log replica rebuilt purely from HTTP responses.

    Duck-type compatible with :class:`~repro.ct.log.CTLog` where it
    matters downstream: ``name`` / ``operator`` / ``entries`` /
    ``tree``, which is all :func:`repro.ct.storage.dump_log` and
    :meth:`repro.dataset.CertCorpus.from_logs` touch.
    """

    def __init__(self, name: str, operator: str) -> None:
        self.name = name
        self.operator = operator
        self.entries: List[LogEntry] = []
        self.tree = MerkleTree()

    @property
    def size(self) -> int:
        return len(self.entries)


class HarvestMismatchError(RuntimeError):
    """The harvested entries do not reproduce the served tree head."""


def harvest_log(
    client: LogClient,
    *,
    name: str = "",
    operator: str = "",
    page_size: int = 256,
    analytics: Optional["LiveAnalytics"] = None,
) -> HarvestedLog:
    """Rebuild a complete log replica over HTTP and verify it.

    Pages ``get-entries`` from 0 to the ``get-sth`` tree size, rebuilds
    the Merkle tree from the returned ``leaf_input`` bytes, and
    requires the rebuilt root to equal the served
    ``sha256_root_hash`` — a truncated or tampered harvest raises
    :class:`HarvestMismatchError`.

    Every round is pinned to the ``tree_size`` of the STH fetched
    up front: requested page bounds never exceed it, and a log that
    grows mid-harvest (or a replica that over-answers a range) cannot
    slip entries past the verified tree head — over-long pages are
    truncated to the pinned window before they touch the replica.

    An attached :class:`~repro.dataset.live.LiveAnalytics` absorbs
    each verified page as it lands (``analytics=``), so live harvests
    stream straight into the incremental Fig 1a/1b/Table 1 aggregates.
    """
    sth = client.get_sth()
    size = int(sth["tree_size"])
    replica = HarvestedLog(name, operator)
    index = 0
    while index < size:
        page = client.get_entries(index, min(index + page_size - 1, size - 1))
        if not page:
            raise HarvestMismatchError(
                f"empty get-entries page at index {index}"
            )
        if len(page) > size - index:
            # The server answered past the pinned STH window (a log
            # that grew between our fetch and its clamp, or a lying
            # replica): keep only the rows the fetched STH covers.
            page = page[: size - index]
        for entry in page:
            replica.tree.append(entry.leaf_input)
            replica.entries.append(entry)
        if analytics is not None:
            analytics.fold_entries(name, page)
        index += len(page)
    if replica.tree.size != size:
        raise HarvestMismatchError(
            f"harvested {replica.tree.size} entries, STH says {size}"
        )
    if size and replica.tree.root() != _unb64(str(sth["sha256_root_hash"])):
        raise HarvestMismatchError(
            "rebuilt Merkle root does not match the served STH"
        )
    return replica


def _quote(value: str) -> str:
    return quote(value, safe="")


__all__ = [
    "DEFAULT_PAGE_LIMIT",
    "HarvestMismatchError",
    "HarvestedLog",
    "HttpApiError",
    "LogClient",
    "LogClientError",
    "LogServer",
    "SplitView",
    "default_split_partition",
    "entry_from_wire",
    "entry_to_wire",
    "harvest_log",
    "log_slug",
]
