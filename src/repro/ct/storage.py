"""Out-of-core persistence for CT log harvests.

The paper harvested "data of all CT log servers deployed" — hundreds
of millions of entries in reality.  This module serializes log
contents to JSON-lines so harvests survive process restarts and can be
analyzed incrementally, and restores them with the Merkle tree rebuilt
and verified against the stored tree head.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.ct.log import CTLog, LogEntry
from repro.ct.sct import SctEntryType
from repro.util.timeutil import from_timestamp_ms, timestamp_ms
from repro.x509.certificate import Certificate, Extension, GeneralName, SanType


class LogStorageError(RuntimeError):
    """Raised when a stored harvest fails verification on load."""


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def certificate_to_dict(cert: Certificate) -> dict:
    return {
        "serial": cert.serial,
        "issuer_cn": cert.issuer_cn,
        "issuer_org": cert.issuer_org,
        "subject_cn": cert.subject_cn,
        "san": [[entry.san_type.value, entry.value] for entry in cert.san],
        "not_before": timestamp_ms(cert.not_before),
        "not_after": timestamp_ms(cert.not_after),
        "public_key_id": _b64(cert.public_key_id),
        "extensions": [
            [ext.oid, _b64(ext.value), ext.critical] for ext in cert.extensions
        ],
        "signature": _b64(cert.signature),
    }


def certificate_from_dict(data: dict) -> Certificate:
    return Certificate(
        serial=data["serial"],
        issuer_cn=data["issuer_cn"],
        issuer_org=data["issuer_org"],
        subject_cn=data["subject_cn"],
        san=tuple(
            GeneralName(SanType(kind), value) for kind, value in data["san"]
        ),
        not_before=from_timestamp_ms(data["not_before"]),
        not_after=from_timestamp_ms(data["not_after"]),
        public_key_id=_unb64(data["public_key_id"]),
        extensions=tuple(
            Extension(oid, _unb64(value), critical)
            for oid, value, critical in data["extensions"]
        ),
        signature=_unb64(data["signature"]),
    )


def dump_log(log: CTLog, path: Union[str, Path]) -> int:
    """Write a log's entries plus a trailer with the tree head.

    Returns the number of entries written.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for entry in log.entries:
            record = {
                "type": "entry",
                "index": entry.index,
                "submitted_at": timestamp_ms(entry.submitted_at),
                "entry_type": int(entry.entry_type),
                "leaf_input": _b64(entry.leaf_input),
                "certificate": certificate_to_dict(entry.certificate),
            }
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        trailer = {
            "type": "tree-head",
            "name": log.name,
            "operator": log.operator,
            "tree_size": log.tree.size,
            "root_hash": _b64(log.tree.root()),
        }
        handle.write(json.dumps(trailer, separators=(",", ":")) + "\n")
    return len(log.entries)


def iter_stored_entries(
    path: Union[str, Path],
    *,
    on_corrupt: str = "skip",
    metrics: Optional[object] = None,
) -> Iterator[dict]:
    """Stream raw records (entries then the trailer) from a harvest file.

    A harvest interrupted mid-write (crash, full disk, torn copy)
    leaves a truncated or garbled trailing line; with the default
    ``on_corrupt="skip"`` such lines are dropped and counted instead
    of aborting the stream mid-harvest — the Merkle verification in
    :func:`load_log` still rejects the file as a whole if an *entry*
    went missing, while scan-only consumers (tree-head lookup, corpus
    streaming, checkpoint resume) keep working on the intact prefix.

    ``on_corrupt="raise"`` restores the strict behaviour and raises
    :class:`LogStorageError` on the first undecodable line.  ``metrics``
    (a duck-typed :class:`repro.obs.MetricsRegistry`) counts skipped
    lines as ``storage.corrupt_lines_skipped``.
    """
    if on_corrupt not in ("skip", "raise"):
        raise ValueError(
            f'on_corrupt must be "skip" or "raise", got {on_corrupt!r}'
        )
    with Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if on_corrupt == "raise":
                    raise LogStorageError(
                        f"corrupt harvest line {number} in {path}: {exc}"
                    ) from exc
                if metrics is not None:
                    metrics.inc("storage.corrupt_lines_skipped")
                continue
            if not isinstance(record, dict):
                if on_corrupt == "raise":
                    raise LogStorageError(
                        f"corrupt harvest line {number} in {path}: "
                        "record is not an object"
                    )
                if metrics is not None:
                    metrics.inc("storage.corrupt_lines_skipped")
                continue
            yield record


def read_tree_head(path: Union[str, Path]) -> dict:
    """Return a harvest file's tree-head trailer without loading entries."""
    trailer: Optional[dict] = None
    for record in iter_stored_entries(path):
        if record.get("type") == "tree-head":
            trailer = record
    if trailer is None:
        raise LogStorageError("harvest file has no tree-head trailer")
    return trailer


class HarvestCheckpoint:
    """Incremental checkpoint for a sharded analysis of one harvest.

    A JSON-lines sidecar next to the harvest file: a header binding
    the checkpoint to one harvest state (tree size + root hash), one
    analysis pass, and one shard size — followed by one line per
    completed shard carrying its JSON-encoded partial result.  A
    resumed run skips the recorded shards and re-runs only the rest.

    Shard records may carry an ``attempts`` count (how many tries a
    retried shard needed — see :mod:`repro.resilience`), and a
    degraded run appends a ``degraded`` record listing the shard
    indices it lost; :meth:`fault_stats` aggregates both.  If a
    resumed run re-records an index that is already present, the
    duplicate is ignored (first record wins) instead of appending a
    conflicting line.

    Any corruption or mismatch (harvest re-harvested, different pass,
    different shard plan, truncated/garbled lines) raises
    :class:`LogStorageError` instead of silently resuming from
    partials that no longer describe the data.

    An optional :class:`repro.obs.MetricsRegistry` (``metrics=``)
    counts records as they land: ``checkpoint.shards_recorded``,
    ``checkpoint.duplicate_records`` (re-records ignored under the
    first-write-wins rule), and ``checkpoint.degraded_markers``.
    """

    VERSION = 1

    def __init__(
        self,
        path: Union[str, Path],
        *,
        pass_name: str,
        shard_size: int,
        tree_size: int,
        root_hash: str,
        metrics: Optional[object] = None,
    ) -> None:
        self.path = Path(path)
        self.pass_name = pass_name
        self.shard_size = shard_size
        self.tree_size = tree_size
        self.root_hash = root_hash
        self.metrics = metrics
        self._recorded: Optional[set] = None

    @classmethod
    def for_harvest(
        cls,
        harvest_path: Union[str, Path],
        pass_name: str,
        shard_size: int,
        suffix: str = ".checkpoint",
        metrics: Optional[object] = None,
    ) -> "HarvestCheckpoint":
        """Open the sidecar checkpoint for a harvest file's current state."""
        trailer = read_tree_head(harvest_path)
        return cls(
            Path(str(harvest_path) + suffix),
            pass_name=pass_name,
            shard_size=shard_size,
            tree_size=trailer["tree_size"],
            root_hash=trailer["root_hash"],
            metrics=metrics,
        )

    def _header(self) -> dict:
        return {
            "type": "checkpoint-header",
            "version": self.VERSION,
            "pass": self.pass_name,
            "shard_size": self.shard_size,
            "tree_size": self.tree_size,
            "root_hash": self.root_hash,
        }

    def _iter_records(self) -> Iterator[dict]:
        """Validated non-header records of the sidecar, in file order."""
        if not self.path.exists():
            return
        header_seen = False
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise LogStorageError(
                        f"corrupted shard checkpoint {self.path}: {exc}"
                    ) from exc
                if not isinstance(record, dict):
                    raise LogStorageError(
                        f"corrupted shard checkpoint {self.path}: "
                        "record is not an object"
                    )
                if not header_seen:
                    if record != self._header():
                        raise LogStorageError(
                            f"checkpoint {self.path} does not match this "
                            "harvest/pass/shard plan"
                        )
                    header_seen = True
                    continue
                rtype = record.get("type")
                if rtype == "degraded":
                    yield record
                    continue
                if rtype != "shard" or "index" not in record:
                    raise LogStorageError(
                        f"corrupted shard checkpoint {self.path}: "
                        "malformed shard record"
                    )
                index = record["index"]
                if not isinstance(index, int) or index < 0:
                    raise LogStorageError(
                        f"corrupted shard checkpoint {self.path}: "
                        f"bad shard index {index!r}"
                    )
                yield record
        if not header_seen:
            raise LogStorageError(
                f"corrupted shard checkpoint {self.path}: missing header"
            )

    def completed(self) -> Dict[int, object]:
        """Shard index -> recorded payload for every completed shard.

        Duplicate indices (a resumed run that re-recorded a shard)
        resolve to the *first* record, matching :meth:`record`'s
        first-write-wins semantics.
        """
        done: Dict[int, object] = {}
        for record in self._iter_records():
            if record.get("type") == "degraded":
                continue
            if record["index"] not in done:
                done[record["index"]] = record.get("payload")
        return done

    def _append(self, record: dict) -> None:
        new_file = not self.path.exists()
        with self.path.open("a", encoding="utf-8") as handle:
            if new_file:
                handle.write(
                    json.dumps(self._header(), separators=(",", ":")) + "\n"
                )
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()

    def record(self, index: int, payload: object, *, attempts: int = 1) -> None:
        """Append one completed shard's partial result.

        ``attempts`` > 1 marks a shard that needed retries (stored for
        :meth:`fault_stats`).  Re-recording an index that is already in
        the sidecar — e.g. a resumed run racing a stale worker — is a
        no-op rather than a conflicting duplicate record.
        """
        if self._recorded is None:
            self._recorded = set(self.completed()) if self.path.exists() else set()
        if index in self._recorded:
            if self.metrics is not None:
                self.metrics.inc("checkpoint.duplicate_records")
            return
        record: Dict[str, object] = {
            "type": "shard",
            "index": index,
            "payload": payload,
        }
        if attempts > 1:
            record["attempts"] = attempts
        self._append(record)
        self._recorded.add(index)
        if self.metrics is not None:
            self.metrics.inc("checkpoint.shards_recorded")

    def record_degraded(self, report: object) -> None:
        """Append a degraded-run marker (failed shard indices + retries).

        ``report`` is duck-typed against
        :class:`repro.resilience.DegradationReport`.
        """
        self._append(
            {
                "type": "degraded",
                "indices": list(getattr(report, "failed_indices", [])),
                "retries": int(getattr(report, "retries", 0)),
            }
        )
        if self.metrics is not None:
            self.metrics.inc("checkpoint.degraded_markers")

    def fault_stats(self) -> Dict[str, object]:
        """Aggregate retry/degradation accounting out of the sidecar."""
        shards = 0
        retried_shards = 0
        total_attempts = 0
        degraded_runs = 0
        degraded_indices: set = set()
        degraded_retries = 0
        seen: set = set()
        for record in self._iter_records():
            if record.get("type") == "degraded":
                degraded_runs += 1
                degraded_indices.update(record.get("indices", []))
                degraded_retries += record.get("retries", 0)
                continue
            if record["index"] in seen:
                continue
            seen.add(record["index"])
            shards += 1
            attempts = record.get("attempts", 1)
            total_attempts += attempts
            if attempts > 1:
                retried_shards += 1
        return {
            "shards": shards,
            "retried_shards": retried_shards,
            "total_attempts": total_attempts,
            "degraded_runs": degraded_runs,
            "degraded_indices": sorted(degraded_indices),
            "degraded_retries": degraded_retries,
        }

    def clear(self) -> None:
        """Remove the sidecar (e.g. after the analysis completed)."""
        if self.path.exists():
            self.path.unlink()
        self._recorded = None


def load_log(path: Union[str, Path], into: CTLog) -> int:
    """Restore a harvest into an (empty) log object and verify it.

    The Merkle tree is rebuilt from the stored leaf inputs; the rebuilt
    root must match the stored tree head, otherwise the harvest was
    tampered with or truncated and :class:`LogStorageError` is raised.
    """
    if into.entries:
        raise ValueError("load_log requires an empty log object")
    trailer: Optional[dict] = None
    count = 0
    for record in iter_stored_entries(path):
        if record["type"] == "tree-head":
            trailer = record
            continue
        cert = certificate_from_dict(record["certificate"])
        entry_type = SctEntryType(record["entry_type"])
        leaf = _unb64(record["leaf_input"])
        into.tree.append(leaf)
        into.entries.append(
            LogEntry(
                index=record["index"],
                submitted_at=from_timestamp_ms(record["submitted_at"]),
                entry_type=entry_type,
                certificate=cert,
                leaf_input=leaf,
            )
        )
        count += 1
    if trailer is None:
        raise LogStorageError("harvest file has no tree-head trailer")
    if trailer["tree_size"] != into.tree.size:
        raise LogStorageError(
            f"stored tree size {trailer['tree_size']} != rebuilt {into.tree.size}"
        )
    if _unb64(trailer["root_hash"]) != into.tree.root():
        raise LogStorageError("rebuilt Merkle root does not match stored tree head")
    return count


