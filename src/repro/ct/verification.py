"""Embedded-SCT validation by precertificate reconstruction.

This is the forensic pipeline of Section 3.4.  Given a *final*
certificate with embedded SCTs, a validator that never saw the
precertificate reconstructs the bytes the log must have signed —
the TBS with the SCT-list extension removed (and the poison extension,
were one present) prefixed by the issuer key hash — and checks each
embedded SCT's signature against the issuing log's public key.

Any divergence a CA introduced between precertificate and final
certificate (SAN order, extension order, different names…) makes the
reconstruction differ from the originally signed bytes, so the
signature check fails: an *invalid embedded SCT*.

When the original precertificate is available (as it is for log
harvests, and as the paper obtained via crt.sh), :func:`diagnose_mismatch`
explains *why* the reconstruction failed — this mirrors the paper's
root-cause analysis with the four CAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ct.sct import (
    SignedCertificateTimestamp,
    precert_signing_input,
)
from repro.x509 import crypto
from repro.x509.certificate import (
    Certificate,
    POISON_EXTENSION_OID,
    SCT_LIST_EXTENSION_OID,
)


@dataclass(frozen=True)
class SctVerdict:
    """Validation outcome for a single embedded SCT."""

    sct: SignedCertificateTimestamp
    log_name: Optional[str]
    valid: bool
    reason: str = ""


@dataclass(frozen=True)
class SctValidationResult:
    """Validation outcome for all SCTs embedded in one certificate."""

    certificate: Certificate
    verdicts: Tuple[SctVerdict, ...]

    @property
    def all_valid(self) -> bool:
        return all(v.valid for v in self.verdicts)

    @property
    def any_invalid(self) -> bool:
        return any(not v.valid for v in self.verdicts)

    @property
    def invalid_count(self) -> int:
        return sum(1 for v in self.verdicts if not v.valid)


def validate_embedded_scts(
    cert: Certificate,
    issuer_key_hash: bytes,
    log_keys: Dict[bytes, "crypto.KeyPair"],
    log_names: Optional[Dict[bytes, str]] = None,
) -> SctValidationResult:
    """Validate every SCT embedded in ``cert``.

    Parameters
    ----------
    cert:
        A final certificate (validation of a precertificate is a caller
        error — it has no embedded SCTs by construction).
    issuer_key_hash:
        SHA-256 of the issuing CA's public key.
    log_keys:
        LogID -> log public key, i.e. the trusted log list.
    log_names:
        Optional LogID -> display name for reporting.
    """
    if cert.is_precertificate:
        raise ValueError("cannot validate embedded SCTs of a precertificate")
    extension = cert.get_extension(SCT_LIST_EXTENSION_OID)
    if extension is None:
        return SctValidationResult(cert, ())
    entry_input = precert_signing_input(cert, issuer_key_hash)
    verdicts: List[SctVerdict] = []
    for sct in SignedCertificateTimestamp.decode_list(extension.value):
        name = (log_names or {}).get(sct.log_id)
        key = log_keys.get(sct.log_id)
        if key is None:
            verdicts.append(
                SctVerdict(sct, name, False, "unknown log id")
            )
            continue
        if sct.verify(key, entry_input):
            verdicts.append(SctVerdict(sct, name, True))
        else:
            verdicts.append(
                SctVerdict(
                    sct,
                    name,
                    False,
                    "signature does not match reconstructed precertificate",
                )
            )
    return SctValidationResult(cert, tuple(verdicts))


def diagnose_mismatch(precert: Certificate, final: Certificate) -> List[str]:
    """Explain the precert/final divergences (the paper's CA inquiries).

    Returns an empty list when the pair is consistent under the
    RFC 6962 reconstruction rules.
    """
    reasons: List[str] = []
    if precert.issuer_cn != final.issuer_cn:
        reasons.append("issuer names differ between precertificate and final certificate")
    pre_san = list(precert.san)
    fin_san = list(final.san)
    if pre_san != fin_san:
        if sorted(g.encode() for g in pre_san) == sorted(g.encode() for g in fin_san):
            reasons.append("SAN entry order changed in the final certificate")
        else:
            reasons.append("SAN entries differ entirely between precertificate and final certificate")
    pre_ext = [
        e for e in precert.extensions
        if e.oid not in (POISON_EXTENSION_OID, SCT_LIST_EXTENSION_OID)
    ]
    fin_ext = [
        e for e in final.extensions
        if e.oid not in (POISON_EXTENSION_OID, SCT_LIST_EXTENSION_OID)
    ]
    if pre_ext != fin_ext:
        if sorted(e.oid for e in pre_ext) == sorted(e.oid for e in fin_ext):
            reasons.append("X.509 extension order changed in the final certificate")
        else:
            reasons.append("X.509 extension contents differ")
    if precert.serial != final.serial:
        reasons.append("serial numbers differ (SCT likely reused from another certificate)")
    return reasons
