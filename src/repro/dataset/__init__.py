"""The shared columnar certificate corpus and its fused pass graph.

The paper's §2-§4 analyses iterate one certificate population.  This
package materializes that population **once** — columnar, compact,
sliceable — and walks it **once** per shard for every registered
section pass:

* :mod:`repro.dataset.corpus` — :class:`CertCorpus` (parallel column
  tuples for issuer, serial, day, log, month, entry type, CN/SAN
  names) built from in-memory logs or streamed from ``ct.storage``
  JSON-lines harvests, plus zero-copy :class:`CorpusView` windows
  that pickle as just their slice;
* :mod:`repro.dataset.graph` — :class:`PassGraph`, a registry of
  per-record :class:`Extractor`\\ s and typed :class:`SectionPass`
  mergers, fused so each shard is traversed exactly once;
* :mod:`repro.dataset.sections` — the §2 (growth/rates/matrix),
  §3 (adoption) and §4 (leakage) passes registered on the graph,
  wrapping the same fold/reduce primitives the serial analyses use;
* :mod:`repro.dataset.fused` — engine drivers
  (:func:`analyze_corpus` / :func:`analyze_records`) that shard a
  corpus and reduce every pass at once, bit-identically serial or
  process-pooled;
* :mod:`repro.dataset.live` — :class:`LiveAnalytics`, the incremental
  mode: live extractor states folding ``CertFeed.poll`` batches,
  harvest pages, and :class:`CorpusDelta` windows into the current
  Fig 1a/1b/Table 1 aggregates (the ``GET /analytics`` payload),
  bit-identical to a batch recompute over the same entries.

Layer stack: **dataset** (this package) feeds the pipeline engine,
which wears the resilience and obs layers — see README.md.
"""

from repro.dataset.corpus import CertCorpus, CertRecord, CorpusDelta, CorpusView
from repro.dataset.fused import analyze_corpus, analyze_records, fused_shard_task
from repro.dataset.graph import Extractor, PassGraph, SectionPass, ShardResult
from repro.dataset.live import ANALYTICS_SCHEMA_VERSION, LiveAnalytics
from repro.dataset.sections import (
    adoption_extractor,
    adoption_pass,
    growth_extractor,
    growth_pass,
    leakage_extractor,
    leakage_name_extractor,
    leakage_pass,
    matrix_extractor,
    matrix_pass,
    rates_pass,
    section2_graph,
    sections_graph,
)

__all__ = [
    "ANALYTICS_SCHEMA_VERSION",
    "CertCorpus",
    "CertRecord",
    "CorpusDelta",
    "CorpusView",
    "LiveAnalytics",
    "Extractor",
    "PassGraph",
    "SectionPass",
    "ShardResult",
    "analyze_corpus",
    "analyze_records",
    "fused_shard_task",
    "adoption_extractor",
    "adoption_pass",
    "growth_extractor",
    "growth_pass",
    "leakage_extractor",
    "leakage_name_extractor",
    "leakage_pass",
    "matrix_extractor",
    "matrix_pass",
    "rates_pass",
    "section2_graph",
    "sections_graph",
]
