"""The columnar certificate corpus shared by the section passes.

The paper's section analyses (precert growth, the CA x log matrix,
subdomain leakage) all iterate the same certificate population.  A
:class:`CertCorpus` materializes that population **once**, as parallel
column tuples (struct-of-arrays) rather than per-certificate dicts:

* tuples of small immutable values are far denser than a list of
  dicts — no per-record hash table, one object header per cell;
* shared values (issuer names, log names, months) are stored once per
  occurrence as references to the same interned string;
* a :class:`CorpusView` is a zero-copy ``[start, stop)`` window over
  the columns, so the shard planner can hand workers plain picklable
  payloads that carry *only their slice* of the data.

Corpora are built from in-memory :class:`repro.ct.CTLog` objects
(:meth:`CertCorpus.from_logs`) or streamed from a ``ct.storage``
JSON-lines harvest (:meth:`CertCorpus.from_stored`) without ever
holding per-entry dicts beyond the line being parsed.
"""

from __future__ import annotations

import sys
import time
from datetime import date
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.ct.log import CTLog
from repro.ct.sct import SctEntryType
from repro.obs.metrics import MetricsRegistry
from repro.util.timeutil import month_key


class CertRecord(NamedTuple):
    """One row of the corpus, assembled on demand from the columns."""

    issuer_org: str
    serial: int
    day: date
    log_name: str
    month: str
    is_precert: bool
    names: Tuple[str, ...]


class CertCorpus:
    """Columnar storage for a certificate-entry population.

    The constructor takes pre-built column tuples; use
    :meth:`from_logs` / :meth:`from_stored` to build one.  All columns
    have equal length.  ``names`` may be an empty tuple per record when
    the corpus was built with ``with_names=False`` (the Section 2
    passes never look at CN/SAN names, and the names column dominates
    the corpus footprint).
    """

    __slots__ = (
        "issuer_org",
        "serial",
        "day",
        "log_name",
        "month",
        "is_precert",
        "names",
    )

    def __init__(
        self,
        issuer_org: Tuple[str, ...],
        serial: Tuple[int, ...],
        day: Tuple[date, ...],
        log_name: Tuple[str, ...],
        month: Tuple[str, ...],
        is_precert: Tuple[bool, ...],
        names: Tuple[Tuple[str, ...], ...],
    ) -> None:
        lengths = {
            len(issuer_org),
            len(serial),
            len(day),
            len(log_name),
            len(month),
            len(is_precert),
            len(names),
        }
        if len(lengths) > 1:
            raise ValueError(f"ragged corpus columns: lengths {sorted(lengths)}")
        self.issuer_org = issuer_org
        self.serial = serial
        self.day = day
        self.log_name = log_name
        self.month = month
        self.is_precert = is_precert
        self.names = names

    # -- construction --------------------------------------------------------

    @classmethod
    def from_logs(
        cls,
        logs: Union[Mapping[str, CTLog], Iterable[CTLog]],
        *,
        with_names: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "CertCorpus":
        """Build the corpus from in-memory logs, in serial scan order.

        Iterates logs exactly as the serial section passes do (mapping
        value order, entries in append order), so reducing the corpus
        in view order replays the serial iteration byte-for-byte.
        """
        started = time.perf_counter()
        log_iter = logs.values() if isinstance(logs, Mapping) else logs
        builder = _ColumnBuilder(with_names=with_names)
        for log in log_iter:
            for entry in log.entries:
                cert = entry.certificate
                day = entry.submitted_at.date()
                builder.append(
                    issuer_org=cert.issuer_org,
                    serial=cert.serial,
                    day=day,
                    log_name=log.name,
                    is_precert=entry.entry_type is SctEntryType.PRECERT_ENTRY,
                    names=tuple(cert.dns_names()) if with_names else (),
                )
        corpus = builder.freeze()
        _record_build_metrics(corpus, time.perf_counter() - started, metrics)
        return corpus

    @classmethod
    def from_stored(
        cls,
        path: Union[str, Path],
        *,
        with_names: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "CertCorpus":
        """Stream the corpus from a ``ct.storage`` JSON-lines harvest.

        Entry records are folded straight into the columns (no
        intermediate entry list); the log name is taken from the
        tree-head trailer.  Corrupt trailing lines are skipped with a
        counter (see :func:`repro.ct.storage.iter_stored_entries`) and
        duplicate entry indices are dropped first-record-wins, with a
        ``dataset.duplicate_entries_skipped`` counter when ``metrics``
        is attached.
        """
        from repro.ct.storage import certificate_from_dict, iter_stored_entries
        from repro.util.timeutil import from_timestamp_ms

        started = time.perf_counter()
        builder = _ColumnBuilder(with_names=with_names)
        issuer_col: List[str] = builder.issuer_org
        seen_indices: Set[object] = set()
        duplicates = 0
        log_name = ""
        for record in iter_stored_entries(path, metrics=metrics):
            rtype = record.get("type")
            if rtype == "tree-head":
                log_name = str(record.get("name", ""))
                continue
            if rtype != "entry":
                continue
            index = record.get("index")
            if index in seen_indices:
                duplicates += 1
                continue
            seen_indices.add(index)
            cert = certificate_from_dict(record["certificate"])
            builder.append(
                issuer_org=cert.issuer_org,
                serial=cert.serial,
                day=from_timestamp_ms(record["submitted_at"]).date(),
                log_name="",  # patched below once the trailer names the log
                is_precert=(
                    SctEntryType(record["entry_type"])
                    is SctEntryType.PRECERT_ENTRY
                ),
                names=tuple(cert.dns_names()) if with_names else (),
            )
        builder.log_name = [log_name] * len(issuer_col)
        corpus = builder.freeze()
        if metrics is not None and duplicates:
            metrics.inc("dataset.duplicate_entries_skipped", duplicates)
        _record_build_metrics(corpus, time.perf_counter() - started, metrics)
        return corpus

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.issuer_org)

    def record(self, index: int) -> CertRecord:
        return CertRecord(
            self.issuer_org[index],
            self.serial[index],
            self.day[index],
            self.log_name[index],
            self.month[index],
            self.is_precert[index],
            self.names[index],
        )

    def iter_records(self) -> Iterator[CertRecord]:
        return map(
            CertRecord,
            self.issuer_org,
            self.serial,
            self.day,
            self.log_name,
            self.month,
            self.is_precert,
            self.names,
        )

    def view(self, start: int = 0, stop: Optional[int] = None) -> "CorpusView":
        return CorpusView(self, start, len(self) if stop is None else stop)

    def approx_bytes(self) -> int:
        """Estimated resident bytes of the column storage.

        Sums ``sys.getsizeof`` over the column tuples and every cell;
        strings shared across records are counted once per *distinct*
        object, which is what actually happens in memory since the
        builders reuse the same issuer/log/month string objects.
        """
        total = 0
        counted: Set[int] = set()
        for column in (
            self.issuer_org,
            self.serial,
            self.day,
            self.log_name,
            self.month,
            self.is_precert,
            self.names,
        ):
            total += sys.getsizeof(column)
            for cell in column:
                if id(cell) in counted:
                    continue
                counted.add(id(cell))
                total += sys.getsizeof(cell)
                if isinstance(cell, tuple):
                    total += sum(sys.getsizeof(item) for item in cell)
        return total


class CorpusView:
    """A zero-copy ``[start, stop)`` window over a corpus.

    In-process, a view is three words: a corpus reference plus the
    range bounds — iterating it reads the parent columns directly.
    Crossing a process-pool boundary, the view pickles as *only its
    slice* of the columns (a standalone :class:`CertCorpus`), so shard
    payloads stay proportional to the shard, not the corpus.
    """

    __slots__ = ("corpus", "start", "stop")

    def __init__(self, corpus: CertCorpus, start: int, stop: int) -> None:
        if start < 0 or stop < start or stop > len(corpus):
            raise ValueError(
                f"invalid view range [{start}, {stop}) over "
                f"{len(corpus)} records"
            )
        self.corpus = corpus
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def iter_records(self) -> Iterator[CertRecord]:
        corpus = self.corpus
        return map(
            CertRecord,
            corpus.issuer_org[self.start : self.stop],
            corpus.serial[self.start : self.stop],
            corpus.day[self.start : self.stop],
            corpus.log_name[self.start : self.stop],
            corpus.month[self.start : self.stop],
            corpus.is_precert[self.start : self.stop],
            corpus.names[self.start : self.stop],
        )

    def materialize(self) -> CertCorpus:
        """This window's records as a standalone (sliced) corpus."""
        corpus = self.corpus
        return CertCorpus(
            corpus.issuer_org[self.start : self.stop],
            corpus.serial[self.start : self.stop],
            corpus.day[self.start : self.stop],
            corpus.log_name[self.start : self.stop],
            corpus.month[self.start : self.stop],
            corpus.is_precert[self.start : self.stop],
            corpus.names[self.start : self.stop],
        )

    def __reduce__(
        self,
    ) -> Tuple[Callable[[CertCorpus], "CorpusView"], Tuple[CertCorpus]]:
        return (_view_of, (self.materialize(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorpusView([{self.start}, {self.stop}) of {len(self.corpus)})"


def _view_of(corpus: CertCorpus) -> CorpusView:
    """Unpickle helper: a full view over a materialized slice."""
    return CorpusView(corpus, 0, len(corpus))


class _ColumnBuilder:
    """Accumulates column lists, then freezes them into a corpus.

    Months are derived from days through a memo, so every record in
    the same month shares one string object (this also keeps
    :meth:`CertCorpus.approx_bytes` honest about sharing).
    """

    def __init__(self, *, with_names: bool) -> None:
        self.with_names = with_names
        self.issuer_org: List[str] = []
        self.serial: List[int] = []
        self.day: List[date] = []
        self.log_name: List[str] = []
        self.month: List[str] = []
        self.is_precert: List[bool] = []
        self.names: List[Tuple[str, ...]] = []
        self._month_memo: Dict[Tuple[int, int], str] = {}

    def append(
        self,
        *,
        issuer_org: str,
        serial: int,
        day: date,
        log_name: str,
        is_precert: bool,
        names: Tuple[str, ...],
    ) -> None:
        month = self._month_memo.get((day.year, day.month))
        if month is None:
            month = self._month_memo[(day.year, day.month)] = month_key(day)
        self.issuer_org.append(issuer_org)
        self.serial.append(serial)
        self.day.append(day)
        self.log_name.append(log_name)
        self.month.append(month)
        self.is_precert.append(is_precert)
        self.names.append(names)

    def freeze(self) -> CertCorpus:
        return CertCorpus(
            tuple(self.issuer_org),
            tuple(self.serial),
            tuple(self.day),
            tuple(self.log_name),
            tuple(self.month),
            tuple(self.is_precert),
            tuple(self.names),
        )


def _record_build_metrics(
    corpus: CertCorpus, seconds: float, metrics: Optional[MetricsRegistry]
) -> None:
    """Corpus build observability: time, size, and density gauges."""
    if metrics is None:
        return
    metrics.observe("dataset.corpus_build_seconds", seconds)
    metrics.set_gauge("dataset.corpus_records", len(corpus))
    if len(corpus):
        metrics.set_gauge(
            "dataset.bytes_per_record", corpus.approx_bytes() / len(corpus)
        )
