"""The columnar certificate corpus shared by the section passes.

The paper's section analyses (precert growth, the CA x log matrix,
subdomain leakage) all iterate the same certificate population.  A
:class:`CertCorpus` materializes that population **once**, as parallel
columns (struct-of-arrays) rather than per-certificate dicts:

* categorical columns (issuer, log, day, month) are **interned**: the
  column itself is an ``array('I')`` of 4-byte ids into a per-column
  value table, so a million rows cost 4 MB plus one object per
  *distinct* value — no per-row PyObject headers at all;
* serials live in an ``array('Q')`` with a side table for the rare
  values that overflow 64 bits (RFC 5280 allows up to 20 octets);
* the precert flag is one byte per row in an ``array('B')``;
* a :class:`CorpusView` is a zero-copy ``[start, stop)`` window over
  the columns, so the shard planner can hand workers plain picklable
  payloads that carry *only their slice* of the data.

Corpora are **append-only**: :meth:`CertCorpus.append_batch` folds a
``CertFeed.poll`` batch (or any ``(log_name, entry)`` stream) onto the
end of the columns, reusing the existing interner tables, and returns
a :class:`CorpusDelta` window over exactly the new rows — the unit the
incremental analytics layer (:mod:`repro.dataset.live`) consumes.
Existing rows never move, so open views stay valid across appends.

Corpora are built from in-memory :class:`repro.ct.CTLog` objects
(:meth:`CertCorpus.from_logs`) or streamed from a ``ct.storage``
JSON-lines harvest (:meth:`CertCorpus.from_stored`) without ever
holding per-entry dicts beyond the line being parsed.
"""

from __future__ import annotations

import sys
import time
from array import array
from datetime import date, datetime
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
    overload,
)

from repro.ct.log import CTLog, LogEntry
from repro.ct.sct import SctEntryType
from repro.obs.metrics import MetricsRegistry
from repro.util.timeutil import month_key

_T = TypeVar("_T")

#: Largest serial an ``array('Q')`` slot can hold; anything bigger (or
#: negative) is routed through the per-corpus overflow side table.
_SERIAL_SLOT_MAX = 2**64 - 1


class CertRecord(NamedTuple):
    """One row of the corpus, assembled on demand from the columns."""

    issuer_org: str
    serial: int
    day: date
    log_name: str
    month: str
    is_precert: bool
    names: Tuple[str, ...]


class _Interner:
    """A value table plus reverse index: ``intern`` returns a stable
    dense id, ``values[id]`` decodes it.  Decoding always yields the
    *same* object per distinct value, which is what keeps shared
    strings shared (and :meth:`CertCorpus.approx_bytes` honest)."""

    __slots__ = ("values", "_ids")

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self.values: List[Any] = list(values)
        self._ids: Dict[Any, int] = {
            value: index for index, value in enumerate(self.values)
        }

    def intern(self, value: Any) -> int:
        ident = self._ids.get(value)
        if ident is None:
            ident = self._ids[value] = len(self.values)
            self.values.append(value)
        return ident

    def __len__(self) -> int:
        return len(self.values)


class _SequenceEq:
    """Element-wise ``==`` against any sequence (tuple-column parity)."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Sequence, _SequenceEq)):
            return len(self) == len(other) and all(  # type: ignore[arg-type]
                mine == theirs
                for mine, theirs in zip(self, other)  # type: ignore[call-overload]
            )
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]


class _InternedColumn(_SequenceEq, Sequence[_T]):
    """Read view of one interned column: decodes ids on access.

    Iteration snapshots the id array first (a C-level copy), so the
    column can keep growing underneath live iterators without ever
    exporting a buffer (an exported ``memoryview`` would make
    ``array.append`` raise ``BufferError``).
    """

    __slots__ = ("_ids", "_values")

    def __init__(self, ids: "array[int]", values: List[_T]) -> None:
        self._ids = ids
        self._values = values

    def __len__(self) -> int:
        return len(self._ids)

    @overload
    def __getitem__(self, index: int) -> _T: ...

    @overload
    def __getitem__(self, index: slice) -> Tuple[_T, ...]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[_T, Tuple[_T, ...]]:
        if isinstance(index, slice):
            return tuple(map(self._values.__getitem__, self._ids[index]))
        return self._values[self._ids[index]]

    def __iter__(self) -> Iterator[_T]:
        return map(self._values.__getitem__, self._ids[:])


class _SerialColumn(_SequenceEq, Sequence[int]):
    """Serial numbers: a ``Q`` array plus the >64-bit overflow table."""

    __slots__ = ("_low", "_overflow")

    def __init__(self, low: "array[int]", overflow: Dict[int, int]) -> None:
        self._low = low
        self._overflow = overflow

    def __len__(self) -> int:
        return len(self._low)

    @overload
    def __getitem__(self, index: int) -> int: ...

    @overload
    def __getitem__(self, index: slice) -> Tuple[int, ...]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[int, Tuple[int, ...]]:
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self._low))
            return tuple(self._decode(i) for i in range(start, stop, step))
        if index < 0:
            index += len(self._low)
        return self._decode(index)

    def _decode(self, index: int) -> int:
        return self._overflow.get(index, self._low[index])

    def __iter__(self) -> Iterator[int]:
        low = self._low[:]
        if not self._overflow:
            return iter(low)
        overflow = self._overflow
        return (overflow.get(i, v) for i, v in enumerate(low))


class _BoolColumn(_SequenceEq, Sequence[bool]):
    """The precert flag: one byte per row, decoded to ``bool``."""

    __slots__ = ("_bits",)

    def __init__(self, bits: "array[int]") -> None:
        self._bits = bits

    def __len__(self) -> int:
        return len(self._bits)

    @overload
    def __getitem__(self, index: int) -> bool: ...

    @overload
    def __getitem__(self, index: slice) -> Tuple[bool, ...]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[bool, Tuple[bool, ...]]:
        if isinstance(index, slice):
            return tuple(map(bool, self._bits[index]))
        return bool(self._bits[index])

    def __iter__(self) -> Iterator[bool]:
        return map(bool, self._bits[:])


class CorpusDelta:
    """The ``[start, stop)`` window appended by one batch.

    Deltas are what the streaming layer folds: they expose the same
    record iteration as a :class:`CorpusView` but remember that they
    are *the new rows* of a specific append, so an incremental
    consumer can assert gapless coverage (``delta.start`` == previous
    ``delta.stop``).
    """

    __slots__ = ("corpus", "start", "stop")

    def __init__(self, corpus: "CertCorpus", start: int, stop: int) -> None:
        self.corpus = corpus
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def view(self) -> "CorpusView":
        return CorpusView(self.corpus, self.start, self.stop)

    def iter_records(self) -> Iterator[CertRecord]:
        return self.view().iter_records()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorpusDelta([{self.start}, {self.stop}))"


class CertCorpus:
    """Columnar, append-only storage for a certificate population.

    The constructor takes decoded column sequences (the classic
    struct-of-arrays shape); use :meth:`from_logs` /
    :meth:`from_stored` / :meth:`empty` + :meth:`append_batch` to
    build one.  All columns have equal length.  ``names`` may be an
    empty tuple per record when the corpus was built with
    ``with_names=False`` (the Section 2 passes never look at CN/SAN
    names, and the names column dominates the corpus footprint).

    Internally every categorical column is an ``array('I')`` of
    interned ids; the public ``issuer_org`` / ``day`` / ``log_name`` /
    ``month`` / ``serial`` / ``is_precert`` attributes are lazy
    decoding views that still support ``len`` / iteration / indexing /
    slicing like the tuples they replaced.
    """

    __slots__ = (
        "_issuers",
        "_logs",
        "_days",
        "_months",
        "_issuer_ids",
        "_log_ids",
        "_day_ids",
        "_month_ids",
        "_serial_low",
        "_serial_overflow",
        "_precert_bits",
        "_names",
        "_month_memo",
    )

    def __init__(
        self,
        issuer_org: Sequence[str],
        serial: Sequence[int],
        day: Sequence[date],
        log_name: Sequence[str],
        month: Sequence[str],
        is_precert: Sequence[bool],
        names: Sequence[Tuple[str, ...]],
    ) -> None:
        lengths = {
            len(issuer_org),
            len(serial),
            len(day),
            len(log_name),
            len(month),
            len(is_precert),
            len(names),
        }
        if len(lengths) > 1:
            raise ValueError(f"ragged corpus columns: lengths {sorted(lengths)}")
        self._issuers = _Interner()
        self._logs = _Interner()
        self._days = _Interner()
        self._months = _Interner()
        self._issuer_ids: "array[int]" = array("I")
        self._log_ids: "array[int]" = array("I")
        self._day_ids: "array[int]" = array("I")
        self._month_ids: "array[int]" = array("I")
        self._serial_low: "array[int]" = array("Q")
        self._serial_overflow: Dict[int, int] = {}
        self._precert_bits: "array[int]" = array("B")
        self._names: List[Tuple[str, ...]] = []
        self._month_memo: Dict[Tuple[int, int], int] = {}
        for row in zip(
            issuer_org, serial, day, log_name, month, is_precert, names
        ):
            self._append_encoded(
                row[0], row[1], row[2], row[3], row[5], row[6], month=row[4]
            )

    # -- construction --------------------------------------------------------

    @classmethod
    def empty(cls) -> "CertCorpus":
        """A zero-row corpus, ready for :meth:`append_batch`."""
        return cls((), (), (), (), (), (), ())

    @classmethod
    def from_logs(
        cls,
        logs: Union[Mapping[str, CTLog], Iterable[CTLog]],
        *,
        with_names: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "CertCorpus":
        """Build the corpus from in-memory logs, in serial scan order.

        Iterates logs exactly as the serial section passes do (mapping
        value order, entries in append order), so reducing the corpus
        in view order replays the serial iteration byte-for-byte.
        """
        started = time.perf_counter()
        log_iter = logs.values() if isinstance(logs, Mapping) else logs
        corpus = cls.empty()
        for log in log_iter:
            corpus.append_entries(log.name, log.entries, with_names=with_names)
        _record_build_metrics(corpus, time.perf_counter() - started, metrics)
        return corpus

    @classmethod
    def from_stored(
        cls,
        path: Union[str, Path],
        *,
        with_names: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "CertCorpus":
        """Stream the corpus from a ``ct.storage`` JSON-lines harvest.

        Entry records are folded straight into the columns (no
        intermediate entry list); the log name is taken from the
        tree-head trailer.  Corrupt trailing lines are skipped with a
        counter (see :func:`repro.ct.storage.iter_stored_entries`) and
        duplicate entry indices are dropped first-record-wins, with a
        ``dataset.duplicate_entries_skipped`` counter when ``metrics``
        is attached.
        """
        from repro.ct.storage import certificate_from_dict, iter_stored_entries
        from repro.util.timeutil import from_timestamp_ms

        started = time.perf_counter()
        corpus = cls.empty()
        seen_indices: Set[object] = set()
        duplicates = 0
        log_name = ""
        for record in iter_stored_entries(path, metrics=metrics):
            rtype = record.get("type")
            if rtype == "tree-head":
                log_name = str(record.get("name", ""))
                continue
            if rtype != "entry":
                continue
            index = record.get("index")
            if index in seen_indices:
                duplicates += 1
                continue
            seen_indices.add(index)
            cert = certificate_from_dict(record["certificate"])
            corpus._append_encoded(
                cert.issuer_org,
                cert.serial,
                from_timestamp_ms(record["submitted_at"]).date(),
                "",  # patched below once the trailer names the log
                (
                    SctEntryType(record["entry_type"])
                    is SctEntryType.PRECERT_ENTRY
                ),
                tuple(cert.dns_names()) if with_names else (),
            )
        corpus._rename_all_logs(log_name)
        if metrics is not None and duplicates:
            metrics.inc("dataset.duplicate_entries_skipped", duplicates)
        _record_build_metrics(corpus, time.perf_counter() - started, metrics)
        return corpus

    # -- appending -----------------------------------------------------------

    def _append_encoded(
        self,
        issuer_org: str,
        serial: int,
        day: date,
        log_name: str,
        is_precert: bool,
        names: Tuple[str, ...],
        month: Optional[str] = None,
    ) -> None:
        """Encode one row onto the end of every column."""
        if month is None:
            month_id = self._month_memo.get((day.year, day.month))
            if month_id is None:
                month_id = self._months.intern(month_key(day))
                self._month_memo[(day.year, day.month)] = month_id
        else:
            month_id = self._months.intern(month)
            self._month_memo.setdefault((day.year, day.month), month_id)
        if 0 <= serial <= _SERIAL_SLOT_MAX:
            self._serial_low.append(serial)
        else:
            self._serial_overflow[len(self._serial_low)] = serial
            self._serial_low.append(0)
        self._issuer_ids.append(self._issuers.intern(issuer_org))
        self._log_ids.append(self._logs.intern(log_name))
        self._day_ids.append(self._days.intern(day))
        self._month_ids.append(month_id)
        self._precert_bits.append(1 if is_precert else 0)
        self._names.append(names)

    def append_row(
        self,
        *,
        issuer_org: str,
        serial: int,
        day: date,
        log_name: str,
        is_precert: bool,
        names: Tuple[str, ...] = (),
    ) -> int:
        """Append one record; returns its row index.

        The month column is derived from ``day`` through the corpus
        month memo, so every record in the same month decodes to one
        shared string object.
        """
        index = len(self._issuer_ids)
        self._append_encoded(
            issuer_org, serial, day, log_name, is_precert, names
        )
        return index

    def append_entries(
        self,
        log_name: str,
        entries: Iterable[LogEntry],
        *,
        with_names: bool = True,
    ) -> CorpusDelta:
        """Append log entries (a harvest page, a poll's per-log run).

        Returns the :class:`CorpusDelta` covering exactly the new
        rows.  Interner tables are reused, so a delta costs only its
        own rows plus any *new* distinct values it introduces.
        """
        start = len(self._issuer_ids)
        precert = SctEntryType.PRECERT_ENTRY
        for entry in entries:
            cert = entry.certificate
            self._append_encoded(
                cert.issuer_org,
                cert.serial,
                entry.submitted_at.date(),
                log_name,
                entry.entry_type is precert,
                tuple(cert.dns_names()) if with_names else (),
            )
        return CorpusDelta(self, start, len(self._issuer_ids))

    def append_batch(
        self,
        batch: Iterable[Any],
        *,
        with_names: bool = True,
    ) -> CorpusDelta:
        """Append one feed batch; returns the delta window over it.

        ``batch`` items are either :class:`repro.ct.feed.FeedEvent`
        objects (anything with ``.log_name`` and ``.entry``) or plain
        ``(log_name, entry)`` pairs — the two shapes the streaming
        sources (``CertFeed.poll`` and ``harvest_log`` pages) produce.
        """
        start = len(self._issuer_ids)
        precert = SctEntryType.PRECERT_ENTRY
        for item in batch:
            entry = getattr(item, "entry", None)
            if entry is not None:
                log_name = item.log_name
            else:
                log_name, entry = item
            cert = entry.certificate
            submitted: datetime = entry.submitted_at
            self._append_encoded(
                cert.issuer_org,
                cert.serial,
                submitted.date(),
                log_name,
                entry.entry_type is precert,
                tuple(cert.dns_names()) if with_names else (),
            )
        return CorpusDelta(self, start, len(self._issuer_ids))

    def _rename_all_logs(self, log_name: str) -> None:
        """Backfill the log column once a harvest trailer names it."""
        if not len(self._log_ids):
            return
        self._logs = _Interner()
        ident = self._logs.intern(log_name)
        self._log_ids = array("I", [ident]) * len(self._log_ids)

    # -- access --------------------------------------------------------------

    @property
    def issuer_org(self) -> _InternedColumn[str]:
        return _InternedColumn(self._issuer_ids, self._issuers.values)

    @property
    def serial(self) -> _SerialColumn:
        return _SerialColumn(self._serial_low, self._serial_overflow)

    @property
    def day(self) -> _InternedColumn[date]:
        return _InternedColumn(self._day_ids, self._days.values)

    @property
    def log_name(self) -> _InternedColumn[str]:
        return _InternedColumn(self._log_ids, self._logs.values)

    @property
    def month(self) -> _InternedColumn[str]:
        return _InternedColumn(self._month_ids, self._months.values)

    @property
    def is_precert(self) -> _BoolColumn:
        return _BoolColumn(self._precert_bits)

    @property
    def names(self) -> List[Tuple[str, ...]]:
        return self._names

    def __len__(self) -> int:
        return len(self._issuer_ids)

    def record(self, index: int) -> CertRecord:
        return CertRecord(
            self.issuer_org[index],
            self.serial[index],
            self.day[index],
            self.log_name[index],
            self.month[index],
            self.is_precert[index],
            self._names[index],
        )

    def iter_records(self) -> Iterator[CertRecord]:
        return self.iter_range(0, len(self))

    def iter_range(self, start: int, stop: int) -> Iterator[CertRecord]:
        """Decode ``[start, stop)`` rows straight off the id arrays.

        Array slices are C-level copies, so iteration never holds a
        buffer export over the (growable) columns.
        """
        issuers = self._issuers.values
        logs = self._logs.values
        days = self._days.values
        months = self._months.values
        serial_iter: Iterable[int]
        low = self._serial_low[start:stop]
        if self._serial_overflow:
            overflow = self._serial_overflow
            serial_iter = (
                overflow.get(i, v) for i, v in enumerate(low, start)
            )
        else:
            serial_iter = low
        return map(
            CertRecord,
            map(issuers.__getitem__, self._issuer_ids[start:stop]),
            serial_iter,
            map(days.__getitem__, self._day_ids[start:stop]),
            map(logs.__getitem__, self._log_ids[start:stop]),
            map(months.__getitem__, self._month_ids[start:stop]),
            map(bool, self._precert_bits[start:stop]),
            self._names[start:stop],
        )

    def view(self, start: int = 0, stop: Optional[int] = None) -> "CorpusView":
        return CorpusView(self, start, len(self) if stop is None else stop)

    def approx_bytes(self) -> int:
        """Estimated resident bytes of the column storage.

        Sums the array buffers, the interner value tables (each
        distinct string/date is stored exactly once by construction),
        the serial overflow table, and the names column (shared name
        tuples counted once per distinct object — the builders reuse
        the same tuple/string objects where sharing exists).
        """
        total = 0
        for ids in (
            self._issuer_ids,
            self._log_ids,
            self._day_ids,
            self._month_ids,
            self._serial_low,
            self._precert_bits,
        ):
            total += sys.getsizeof(ids)
        for interner in (self._issuers, self._logs, self._days, self._months):
            total += sys.getsizeof(interner.values)
            total += sum(sys.getsizeof(value) for value in interner.values)
        total += sys.getsizeof(self._serial_overflow)
        total += sum(
            sys.getsizeof(value) for value in self._serial_overflow.values()
        )
        total += sys.getsizeof(self._names)
        counted: Set[int] = set()
        for cell in self._names:
            if id(cell) in counted:
                continue
            counted.add(id(cell))
            total += sys.getsizeof(cell)
            for item in cell:
                if id(item) in counted:
                    continue
                counted.add(id(item))
                total += sys.getsizeof(item)
        return total

    def __reduce__(
        self,
    ) -> Tuple[Any, Tuple[Any, ...]]:
        """Pickle as decoded column tuples (pickle memoizes the shared
        strings), so payload size tracks rows + distinct values — the
        id arrays and interner indexes are rebuilt on load."""
        return (
            CertCorpus,
            (
                self.issuer_org[:],
                self.serial[:],
                self.day[:],
                self.log_name[:],
                self.month[:],
                self.is_precert[:],
                tuple(self._names),
            ),
        )


class CorpusView:
    """A zero-copy ``[start, stop)`` window over a corpus.

    In-process, a view is three words: a corpus reference plus the
    range bounds — iterating it decodes the parent columns directly.
    Crossing a process-pool boundary, the view pickles as *only its
    slice* of the columns (a standalone :class:`CertCorpus`), so shard
    payloads stay proportional to the shard, not the corpus.
    """

    __slots__ = ("corpus", "start", "stop")

    def __init__(self, corpus: CertCorpus, start: int, stop: int) -> None:
        if start < 0 or stop < start or stop > len(corpus):
            raise ValueError(
                f"invalid view range [{start}, {stop}) over "
                f"{len(corpus)} records"
            )
        self.corpus = corpus
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def iter_records(self) -> Iterator[CertRecord]:
        return self.corpus.iter_range(self.start, self.stop)

    def materialize(self) -> CertCorpus:
        """This window's records as a standalone (sliced) corpus."""
        corpus = self.corpus
        return CertCorpus(
            corpus.issuer_org[self.start : self.stop],
            corpus.serial[self.start : self.stop],
            corpus.day[self.start : self.stop],
            corpus.log_name[self.start : self.stop],
            corpus.month[self.start : self.stop],
            corpus.is_precert[self.start : self.stop],
            tuple(corpus.names[self.start : self.stop]),
        )

    def __reduce__(
        self,
    ) -> Tuple[Callable[[CertCorpus], "CorpusView"], Tuple[CertCorpus]]:
        return (_view_of, (self.materialize(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorpusView([{self.start}, {self.stop}) of {len(self.corpus)})"


def _view_of(corpus: CertCorpus) -> CorpusView:
    """Unpickle helper: a full view over a materialized slice."""
    return CorpusView(corpus, 0, len(corpus))


def _record_build_metrics(
    corpus: CertCorpus, seconds: float, metrics: Optional[MetricsRegistry]
) -> None:
    """Corpus build observability: time, size, and density gauges."""
    if metrics is None:
        return
    metrics.observe("dataset.corpus_build_seconds", seconds)
    metrics.set_gauge("dataset.corpus_records", len(corpus))
    if len(corpus):
        metrics.set_gauge(
            "dataset.bytes_per_record", corpus.approx_bytes() / len(corpus)
        )
