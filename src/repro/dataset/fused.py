"""Run a fused pass graph over a corpus, serial or sharded.

One entry point per corpus shape:

* :func:`analyze_corpus` — a :class:`CertCorpus`, sharded into
  zero-copy :class:`CorpusView` windows;
* :func:`analyze_records` — any plain record sequence (the §3
  connection stream, the §4 FQDN list), sharded by index range.

Both hand ``(graph, records)`` payloads to a
:class:`repro.pipeline.PipelineEngine` and reduce the ordered shard
partials through the graph, so serial (one shard) and process-pool
runs produce bit-identical results for every registered pass at once.

Observability (when the engine carries a
:class:`repro.obs.MetricsRegistry`):

* ``dataset.shard_traversals`` — actual record-loop runs; the fused
  graph's invariant is **exactly one per shard**, however many passes
  are registered (the acceptance tests assert this);
* ``dataset.separate_traversals_avoided`` — scans a one-pass-at-a-time
  implementation would have added;
* ``dataset.records_scanned`` — total records folded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence, Tuple, Union

from repro.dataset.corpus import CertCorpus, CorpusView
from repro.dataset.graph import PassGraph, ShardResult

if TYPE_CHECKING:  # pipeline imports dataset; keep the reverse edge lazy
    from repro.pipeline.engine import PipelineEngine

FusedPayload = Tuple[PassGraph, Union[CorpusView, Sequence[Any]]]


def _default_engine() -> "PipelineEngine":
    from repro.pipeline.engine import PipelineEngine

    return PipelineEngine()


def fused_shard_task(payload: FusedPayload) -> ShardResult:
    """Run one shard through the graph (module-level: pools pickle it)."""
    graph, records = payload
    if isinstance(records, CorpusView):
        return graph.run_shard(records.iter_records())
    return graph.run_shard(records)


def analyze_corpus(
    corpus: CertCorpus,
    graph: PassGraph,
    engine: Optional["PipelineEngine"] = None,
) -> Any:
    """Every registered pass over the corpus, one traversal per shard.

    Returns ``{pass name: result}``; with a degrading engine, a
    :class:`repro.resilience.DegradedResult` wrapping that mapping.
    """
    from repro.pipeline.shard import plan_sequence_shards

    engine = engine or _default_engine()
    if engine.serial:
        tasks: Sequence[FusedPayload] = [(graph, corpus.view())]
    else:
        shards = plan_sequence_shards(
            len(corpus), engine.shard_size, source="corpus"
        )
        tasks = [
            (graph, corpus.view(shard.start, shard.stop)) for shard in shards
        ]
    return _run(graph, tasks, engine)


def analyze_records(
    records: Sequence[Any],
    graph: PassGraph,
    engine: Optional["PipelineEngine"] = None,
    *,
    source: str = "records",
) -> Any:
    """Every registered pass over a plain record sequence."""
    from repro.pipeline.shard import plan_sequence_shards

    engine = engine or _default_engine()
    if engine.serial:
        tasks: Sequence[FusedPayload] = [(graph, records)]
    else:
        shards = plan_sequence_shards(
            len(records), engine.shard_size, source=source
        )
        tasks = [(graph, shard.slice(records)) for shard in shards]
    return _run(graph, tasks, engine)


def _run(
    graph: PassGraph, tasks: Sequence[FusedPayload], engine: "PipelineEngine"
) -> Any:
    metrics = engine.metrics
    fused = graph.traversals_fused()

    def reduce_fn(shard_results: Sequence[ShardResult]) -> Dict[str, Any]:
        if metrics is not None:
            for result in shard_results:
                metrics.inc("dataset.shard_traversals", result.traversals)
                metrics.inc("dataset.records_scanned", result.records)
                metrics.inc(
                    "dataset.separate_traversals_avoided",
                    (fused - 1) * result.traversals,
                )
        return graph.reduce([result.partials for result in shard_results])

    return engine.map_reduce(fused_shard_task, tasks, reduce_fn)
