"""The fused pass graph: one traversal, every section's partials.

A :class:`PassGraph` separates the two halves of a map/reduce pass:

* an :class:`Extractor` folds records into a shard-local state — the
  per-record work that used to force one full corpus traversal per
  section;
* a :class:`SectionPass` is a typed merger over one extractor's
  ordered shard partials — the reduce half, named after the paper
  artifact it feeds.

Several passes may share one extractor (Figures 1a and 1b both reduce
the same first-submission dictionary), and several extractors run in
the **same traversal**: :meth:`PassGraph.run_shard` walks a shard's
records exactly once, feeding every registered extractor, and returns
all partials at once.  Reducing those partials in shard order then
yields every section result from a single scan of the corpus.

Graphs are plain data (module-level fold functions, ``functools.partial``
for parameters), so a graph travels to process-pool workers inside the
shard payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence, Tuple


def _identity(state: Any) -> Any:
    return state


@dataclass(frozen=True)
class Extractor:
    """Per-record extraction into a mergeable, picklable partial.

    ``init`` builds the empty shard-local state, ``fold`` absorbs one
    record into it, and ``finalize`` turns the state into the partial
    that crosses the pool boundary (identity by default — override it
    when the working state holds unpicklable helpers like a PSL).
    """

    name: str
    init: Callable[[], Any]
    fold: Callable[[Any, Any], None]
    finalize: Callable[[Any], Any] = _identity


@dataclass(frozen=True)
class SectionPass:
    """A typed merger over one extractor's ordered shard partials."""

    name: str
    extractor: str
    reduce: Callable[[List[Any]], Any]


@dataclass
class ShardResult:
    """One shard's fused output: every extractor's partial, plus the
    traversal accounting the obs layer asserts on."""

    partials: Dict[str, Any]
    records: int
    traversals: int = 1


@dataclass
class PassGraph:
    """A registry of extractors and section passes, fused per shard."""

    extractors: Dict[str, Extractor] = field(default_factory=dict)
    passes: Dict[str, SectionPass] = field(default_factory=dict)

    def add_extractor(self, extractor: Extractor) -> "PassGraph":
        if extractor.name in self.extractors:
            raise ValueError(f"duplicate extractor {extractor.name!r}")
        self.extractors[extractor.name] = extractor
        return self

    def add_pass(self, section: SectionPass) -> "PassGraph":
        if section.name in self.passes:
            raise ValueError(f"duplicate pass {section.name!r}")
        if section.extractor not in self.extractors:
            raise ValueError(
                f"pass {section.name!r} references unknown extractor "
                f"{section.extractor!r}"
            )
        self.passes[section.name] = section
        return self

    @property
    def pass_names(self) -> Tuple[str, ...]:
        return tuple(self.passes)

    def traversals_fused(self) -> int:
        """Corpus scans a per-section implementation would have run."""
        return len(self.passes)

    # -- execution -----------------------------------------------------------

    def new_states(self) -> Dict[str, Any]:
        """Fresh working states, one per extractor.

        This is the seed of the graph's **incremental mode**: hold the
        states across calls and keep folding batches into them with
        :meth:`fold_into`; :meth:`results_from_states` reads the
        current section results at any point.  A one-shot
        :meth:`run_shard` is exactly ``new_states`` + one
        ``fold_into`` + finalize.
        """
        if not self.extractors:
            raise ValueError("pass graph has no extractors registered")
        return {
            name: extractor.init()
            for name, extractor in self.extractors.items()
        }

    def fold_into(self, states: Dict[str, Any], records: Iterable[Any]) -> int:
        """Fold one batch of records into live states, **one traversal**.

        The single ``for`` loop below is the whole point of the graph:
        however many sections are registered, each record is touched
        exactly one time per batch.  Returns the number of records
        folded.
        """
        folds = [
            (extractor.fold, states[name])
            for name, extractor in self.extractors.items()
        ]
        count = 0
        # The record loop is the whole program for large corpora;
        # unroll the common small extractor counts so each record
        # costs plain calls, not an inner loop + tuple unpacking.
        if len(folds) == 1:
            fold_a, state_a = folds[0]
            for record in records:
                count += 1
                fold_a(state_a, record)
        elif len(folds) == 2:
            (fold_a, state_a), (fold_b, state_b) = folds
            for record in records:
                count += 1
                fold_a(state_a, record)
                fold_b(state_b, record)
        elif len(folds) == 3:
            (fold_a, state_a), (fold_b, state_b), (fold_c, state_c) = folds
            for record in records:
                count += 1
                fold_a(state_a, record)
                fold_b(state_b, record)
                fold_c(state_c, record)
        else:
            for record in records:
                count += 1
                for fold, state in folds:
                    fold(state, record)
        return count

    def finalize_states(self, states: Dict[str, Any]) -> Dict[str, Any]:
        """Each extractor's pool-crossing partial from its live state.

        Finalize never mutates the state (it is identity for the
        corpus extractors; the leakage/adoption finalizers read their
        state into a fresh partial), so incremental consumers can keep
        folding into the same states afterwards.
        """
        return {
            name: extractor.finalize(states[name])
            for name, extractor in self.extractors.items()
        }

    def results_from_states(self, states: Dict[str, Any]) -> Dict[str, Any]:
        """Every section result from live states (single-partial reduce)."""
        return self.reduce([self.finalize_states(states)])

    def run_shard(self, records: Iterable[Any]) -> ShardResult:
        """Fold one shard's records through every extractor, **once**."""
        states = self.new_states()
        count = self.fold_into(states, records)
        return ShardResult(
            partials=self.finalize_states(states),
            records=count,
            traversals=1,
        )

    def reduce(
        self, shard_results: Sequence[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Merge ordered shard partials into every section's result.

        ``shard_results`` are the per-shard partial mappings (from
        :attr:`ShardResult.partials`), **in shard order** — order is
        what keeps dedup-style reduces bit-identical to the serial
        scan.
        """
        if not self.passes:
            raise ValueError("pass graph has no passes registered")
        results: Dict[str, Any] = {}
        for name, section in self.passes.items():
            results[name] = section.reduce(
                [shard[section.extractor] for shard in shard_results]
            )
        return results

    def run(self, records: Iterable[Any]) -> Dict[str, Any]:
        """Single-shard convenience: one traversal, all results."""
        return self.reduce([self.run_shard(records).partials])
