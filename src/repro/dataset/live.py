"""Streaming incremental analytics: the paper's figures, folded live.

A real CT monitor never rebuilds a finished corpus — it folds an
unbounded entry stream.  :class:`LiveAnalytics` is that fold: it holds
one set of live :class:`~repro.dataset.graph.PassGraph` extractor
states and absorbs batches from any streaming source —

* ``CertFeed.poll`` batches (:meth:`fold_events`, or wire the feed's
  ``analytics=`` parameter and every poll folds itself);
* ``harvest_log`` pages (:meth:`fold_entries`, or the harvester's
  ``analytics=`` parameter);
* :class:`~repro.dataset.corpus.CorpusDelta` windows from
  ``CertCorpus.append_batch`` (:meth:`fold_delta`);

— and can report the *current* Fig 1a / Fig 1b / Table 1 aggregates at
any instant (:meth:`results`), because the section reducers build
fresh outputs without mutating the partials they read.  The
:meth:`to_dict` snapshot is the version-1 JSON served by the telemetry
server's ``GET /analytics`` endpoint and written by ``repro watch``.

Incremental folding uses exactly the same typed extractor/merger code
as the batch path, so N folded polls are bit-identical to one batch
recompute over the same entries — the property the tier-1 suite pins.
"""

from __future__ import annotations

import threading
from datetime import date
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.ct.log import LogEntry
from repro.ct.sct import SctEntryType
from repro.dataset.corpus import CertRecord, CorpusDelta
from repro.dataset.graph import PassGraph
from repro.dataset.sections import section2_graph
from repro.util.stats import Counter2D
from repro.util.timeutil import month_key

if TYPE_CHECKING:  # avoid a runtime import cycle through repro.ct
    from repro.obs.metrics import MetricsRegistry

#: Schema version of the ``to_dict`` / ``GET /analytics`` payload.
ANALYTICS_SCHEMA_VERSION = 1


class LiveAnalytics:
    """Live extractor states plus batch-fold entry points.

    ``graph`` defaults to :func:`~repro.dataset.sections.section2_graph`
    (growth + rates + matrix — Fig 1a/1b/Table 1).  ``with_names``
    controls whether folded records carry the CN/SAN names column
    (needed only when the graph registers the leakage extractor).

    Folding and reading are guarded by one lock, so a telemetry server
    thread can serve ``/analytics`` while the poll loop keeps folding.
    """

    def __init__(
        self,
        graph: Optional[PassGraph] = None,
        *,
        with_names: bool = False,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.graph = graph if graph is not None else section2_graph()
        self.with_names = with_names
        self.metrics = metrics
        self._states = self.graph.new_states()
        self._lock = threading.Lock()
        self._month_memo: Dict[Tuple[int, int], str] = {}
        self.records_folded = 0
        self.batches_folded = 0

    # -- record conversion ---------------------------------------------------

    def _month_of(self, day: date) -> str:
        month = self._month_memo.get((day.year, day.month))
        if month is None:
            month = self._month_memo[(day.year, day.month)] = month_key(day)
        return month

    def _record_from(self, log_name: str, entry: LogEntry) -> CertRecord:
        cert = entry.certificate
        day = entry.submitted_at.date()
        return CertRecord(
            cert.issuer_org,
            cert.serial,
            day,
            log_name,
            self._month_of(day),
            entry.entry_type is SctEntryType.PRECERT_ENTRY,
            tuple(cert.dns_names()) if self.with_names else (),
        )

    # -- folding -------------------------------------------------------------

    def fold_records(self, records: Iterable[CertRecord]) -> int:
        """Fold one batch of pre-built records; returns the count."""
        with self._lock:
            count = self.graph.fold_into(self._states, records)
            self.records_folded += count
            self.batches_folded += 1
        if self.metrics is not None:
            self.metrics.inc("dataset.live_batches")
            if count:
                self.metrics.inc("dataset.live_records", count)
        return count

    def fold_events(self, events: Iterable[Any]) -> int:
        """Fold one ``CertFeed.poll`` batch of ``FeedEvent`` items."""
        return self.fold_records(
            self._record_from(event.log_name, event.entry) for event in events
        )

    def fold_entries(self, log_name: str, entries: Iterable[LogEntry]) -> int:
        """Fold one harvest page (entries of a single named log)."""
        return self.fold_records(
            self._record_from(log_name, entry) for entry in entries
        )

    def fold_delta(self, delta: CorpusDelta) -> int:
        """Fold the rows appended by one ``CertCorpus.append_batch``."""
        return self.fold_records(delta.iter_records())

    # -- reading -------------------------------------------------------------

    def results(self) -> Dict[str, Any]:
        """Every registered section's *current* result.

        Safe to call between (or during, via the lock) folds: the
        reducers build fresh outputs from the live states without
        mutating them, so folding continues seamlessly afterwards.
        """
        with self._lock:
            return self.graph.results_from_states(self._states)

    def to_dict(self) -> Dict[str, Any]:
        """The version-1 analytics snapshot (``GET /analytics`` body).

        Known sections serialize to plain JSON types::

            {
              "version": 1,
              "records_folded": 1234,
              "batches_folded": 56,
              "sections": {
                "growth":  {ca: [["2018-04-01", 17], ...]},   # Fig 1a
                "rates":   {"2018-04-01": {ca: share}, ...},  # Fig 1b
                "matrix":  {"rows": [...], "cols": [...],     # Table 1
                            "cells": [[ca, log, n], ...]}
              }
            }

        Sections this module does not know (e.g. a leakage pass on a
        custom graph) are included when their result has a
        ``to_dict``, and listed under ``"unserialized"`` otherwise.
        """
        with self._lock:
            results = self.graph.results_from_states(self._states)
            records = self.records_folded
            batches = self.batches_folded
        sections: Dict[str, Any] = {}
        unserialized: List[str] = []
        for name, result in results.items():
            if name == "growth":
                sections[name] = _growth_to_json(result)
            elif name == "rates":
                sections[name] = _rates_to_json(result)
            elif name == "matrix":
                sections[name] = _matrix_to_json(result)
            elif hasattr(result, "to_dict"):
                sections[name] = result.to_dict()
            else:
                unserialized.append(name)
        payload: Dict[str, Any] = {
            "version": ANALYTICS_SCHEMA_VERSION,
            "records_folded": records,
            "batches_folded": batches,
            "sections": sections,
        }
        if unserialized:
            payload["unserialized"] = sorted(unserialized)
        return payload

    def render(self) -> str:
        """A deterministic one-page text summary (``repro watch``)."""
        snapshot = self.to_dict()
        lines = [
            "live analytics "
            f"(schema v{snapshot['version']}, "
            f"{snapshot['records_folded']} records, "
            f"{snapshot['batches_folded']} batches)",
        ]
        sections = snapshot["sections"]
        growth = sections.get("growth")
        if growth is not None:
            lines.append("  growth (Fig 1a): cumulative unique precerts")
            for ca in sorted(growth):
                points = growth[ca]
                total = points[-1][1] if points else 0
                lines.append(f"    {ca}: {total} over {len(points)} days")
        rates = sections.get("rates")
        if rates is not None:
            lines.append(f"  rates (Fig 1b): {len(rates)} days of CA shares")
        matrix = sections.get("matrix")
        if matrix is not None:
            lines.append(
                "  matrix (Table 1): "
                f"{len(matrix['rows'])} CAs x {len(matrix['cols'])} logs, "
                f"{sum(cell[2] for cell in matrix['cells'])} entries"
            )
        return "\n".join(lines)


def _growth_to_json(
    growth: Dict[str, List[Tuple[date, int]]],
) -> Dict[str, List[List[Any]]]:
    return {
        ca: [[day.isoformat(), count] for day, count in points]
        for ca, points in sorted(growth.items())
    }


def _rates_to_json(
    rates: Dict[date, Dict[str, float]],
) -> Dict[str, Dict[str, float]]:
    return {
        day.isoformat(): {ca: rates[day][ca] for ca in sorted(rates[day])}
        for day in sorted(rates)
    }


def _matrix_to_json(matrix: Counter2D) -> Dict[str, Any]:
    return {
        "rows": list(matrix.rows()),
        "cols": list(matrix.cols()),
        "cells": [
            [row, col, count]
            for (row, col), count in sorted(matrix.cells().items())
        ],
    }
