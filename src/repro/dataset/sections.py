"""The paper's section passes, registered on the fused graph.

Every extractor/merger here wraps the *same* primitives the serial
analyses use (:func:`repro.core.evolution.growth_fold`,
:class:`repro.core.leakage.NameFold`,
:class:`repro.core.adoption.AdoptionAccumulator`), so the fused
single-traversal outputs are bit-identical to the per-section scans by
construction:

* **§2 evolution** — ``precert_firsts`` (shared by the ``growth`` and
  ``rates`` passes) and ``matrix_cells`` (the ``matrix`` pass), both
  over :class:`~repro.dataset.corpus.CertRecord` streams;
* **§4 leakage** — ``leakage`` over corpus records (CN/SAN names
  column) or, via :func:`leakage_name_extractor`, over plain FQDN
  streams (the Section 4 name corpus);
* **§3 adoption** — ``adoption`` over TLS-connection streams; the
  extractor carries the analyzer's plain
  :class:`~repro.bro.analyzer.AnalyzerConfig` and rebuilds the
  analyzer worker-side.

Fold functions are module-level and parameterized through
``functools.partial``, so graphs pickle into process-pool payloads.
"""

from __future__ import annotations

from datetime import date
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.bro.analyzer import AnalyzerConfig, BroSctAnalyzer
from repro.core import adoption, evolution, leakage
from repro.dataset.corpus import CertCorpus, CertRecord
from repro.dataset.graph import Extractor, PassGraph, SectionPass
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.util.stats import Counter2D

#: Canonical extractor names (one state per traversal, shared by the
#: passes that reduce it).
PRECERT_FIRSTS = "precert_firsts"
MATRIX_CELLS = "matrix_cells"
LEAKAGE_NAMES = "leakage"
ADOPTION = "adoption"

FirstsState = Dict[Tuple[str, int], date]


# -- §2: precert growth / rates (shared extractor) --------------------------


def _firsts_init() -> FirstsState:
    return {}


def _firsts_fold(state: FirstsState, record: CertRecord) -> None:
    if record.is_precert:
        evolution.growth_fold(
            state, record.issuer_org, record.serial, record.day
        )


def growth_extractor() -> Extractor:
    """First submission day per unique (issuer, serial) precert."""
    return Extractor(PRECERT_FIRSTS, _firsts_init, _firsts_fold)


def _growth_reduce(
    partials: List[FirstsState],
    start: Optional[date],
    end: Optional[date],
) -> Dict[str, List[Tuple[date, int]]]:
    return evolution.growth_reduce(partials, start=start, end=end)


def growth_pass(
    start: Optional[date] = None, end: Optional[date] = None
) -> SectionPass:
    """Figure 1a: cumulative unique-precert growth per CA."""
    return SectionPass(
        "growth", PRECERT_FIRSTS, partial(_growth_reduce, start=start, end=end)
    )


def rates_pass() -> SectionPass:
    """Figure 1b: per-day CA shares, over the same firsts partials."""
    return SectionPass("rates", PRECERT_FIRSTS, evolution.rates_reduce)


# -- §2: the CA x log matrix -------------------------------------------------


def _matrix_init() -> Counter2D:
    return Counter2D()


def _matrix_fold(month: str, state: Counter2D, record: CertRecord) -> None:
    if record.is_precert and record.month == month:
        state.add(record.issuer_org, record.log_name, 1)


def matrix_extractor(month: str) -> Extractor:
    """Precert log-entry counts per (CA, log) within one month."""
    return Extractor(
        MATRIX_CELLS, _matrix_init, partial(_matrix_fold, month)
    )


def matrix_pass() -> SectionPass:
    """Figure 1c: merge the monthly (CA, log) entry counts."""
    return SectionPass("matrix", MATRIX_CELLS, evolution.matrix_reduce)


# -- §4: subdomain leakage ---------------------------------------------------


def _leak_init(psl: Optional[PublicSuffixList]) -> leakage.NameFold:
    # ``None`` means "the shared default PSL", rebuilt worker-side
    # instead of pickled into every shard payload.
    return leakage.NameFold(psl)


def _leak_fold_record(state: leakage.NameFold, record: CertRecord) -> None:
    for name in record.names:
        state.add(name)


def _leak_fold_name(state: leakage.NameFold, name: str) -> None:
    state.add(name)


def _leak_finalize(state: leakage.NameFold) -> leakage.LeakagePartial:
    return state.partial


def _leak_payload_psl(
    psl: Optional[PublicSuffixList],
) -> Optional[PublicSuffixList]:
    return None if psl is None or psl is default_psl() else psl


def leakage_extractor(psl: Optional[PublicSuffixList] = None) -> Extractor:
    """Table 2 name pipeline over the corpus CN/SAN names column."""
    return Extractor(
        LEAKAGE_NAMES,
        partial(_leak_init, _leak_payload_psl(psl)),
        _leak_fold_record,
        _leak_finalize,
    )


def leakage_name_extractor(
    psl: Optional[PublicSuffixList] = None,
) -> Extractor:
    """Table 2 name pipeline over a plain FQDN stream (§4 corpus)."""
    return Extractor(
        LEAKAGE_NAMES,
        partial(_leak_init, _leak_payload_psl(psl)),
        _leak_fold_name,
        _leak_finalize,
    )


def leakage_pass() -> SectionPass:
    """Table 2 / Section 4.3: global dedup + label ranking."""
    return SectionPass(
        "leakage", LEAKAGE_NAMES, leakage.reduce_name_partials
    )


# -- §3: SCT adoption in traffic --------------------------------------------


class _AdoptionState:
    """Worker-local analyzer (rebuilt from config) plus accumulator."""

    __slots__ = ("analyzer", "accumulator")

    def __init__(self, config: AnalyzerConfig) -> None:
        self.analyzer = BroSctAnalyzer.from_config(config)
        self.accumulator = adoption.AdoptionAccumulator()


def _adoption_init(config: AnalyzerConfig) -> _AdoptionState:
    return _AdoptionState(config)


def _adoption_fold(state: _AdoptionState, connection: Any) -> None:
    state.accumulator.add(state.analyzer.analyze(connection))


def _adoption_finalize(state: _AdoptionState) -> adoption.AdoptionStats:
    return state.accumulator.finish()


def adoption_extractor(config: AnalyzerConfig) -> Extractor:
    """Figure 2 / Table 1 accounting over a TLS-connection stream.

    The extractor ships only the analyzer's plain config; the analyzer
    itself (with its identity-keyed caches) is rebuilt inside each
    worker.
    """
    return Extractor(
        ADOPTION,
        partial(_adoption_init, config),
        _adoption_fold,
        _adoption_finalize,
    )


def adoption_pass() -> SectionPass:
    """Figure 2 / Table 1: weighted-sum merge of chunk aggregates."""
    return SectionPass("adoption", ADOPTION, adoption.merge_stats)


# -- prebuilt graphs ---------------------------------------------------------


def section2_graph(
    month: str = "2018-04",
    *,
    start: Optional[date] = None,
    end: Optional[date] = None,
) -> PassGraph:
    """Growth + rates + matrix fused into one corpus traversal."""
    graph = PassGraph()
    graph.add_extractor(growth_extractor())
    graph.add_extractor(matrix_extractor(month))
    graph.add_pass(growth_pass(start, end))
    graph.add_pass(rates_pass())
    graph.add_pass(matrix_pass())
    return graph


def sections_graph(
    month: str = "2018-04",
    *,
    start: Optional[date] = None,
    end: Optional[date] = None,
    psl: Optional[PublicSuffixList] = None,
) -> PassGraph:
    """§2 evolution plus §4 leakage, all in one corpus traversal."""
    graph = section2_graph(month, start=start, end=end)
    graph.add_extractor(leakage_extractor(psl))
    graph.add_pass(leakage_pass())
    return graph


# -- serial single-traversal helpers ----------------------------------------


def corpus_growth(
    corpus: CertCorpus,
    *,
    start: Optional[date] = None,
    end: Optional[date] = None,
) -> Dict[str, List[Tuple[date, int]]]:
    """Figure 1a over a corpus, serial single-shard case."""
    graph = PassGraph().add_extractor(growth_extractor())
    graph.add_pass(growth_pass(start, end))
    return graph.run(corpus.iter_records())["growth"]


def corpus_rates(corpus: CertCorpus) -> Dict[date, Dict[str, float]]:
    """Figure 1b over a corpus, serial single-shard case."""
    graph = PassGraph().add_extractor(growth_extractor())
    graph.add_pass(rates_pass())
    return graph.run(corpus.iter_records())["rates"]


def corpus_matrix(corpus: CertCorpus, month: str = "2018-04") -> Counter2D:
    """Figure 1c over a corpus, serial single-shard case."""
    graph = PassGraph().add_extractor(matrix_extractor(month))
    graph.add_pass(matrix_pass())
    return graph.run(corpus.iter_records())["matrix"]


def corpus_leakage(
    corpus: CertCorpus, psl: Optional[PublicSuffixList] = None
) -> leakage.LeakageStats:
    """Table 2 over a corpus's names column, serial single-shard case."""
    graph = PassGraph().add_extractor(leakage_extractor(psl))
    graph.add_pass(leakage_pass())
    return graph.run(corpus.iter_records())["leakage"]
