"""DNS substrate.

Everything Section 4 (information leakage, subdomain enumeration) and
Section 6 (honeypot) need from the DNS:

* :mod:`repro.dnscore.name` — FQDN syntax validation (the paper used
  the Python ``validators`` library to drop malformed names);
* :mod:`repro.dnscore.psl` — a Public Suffix List engine with wildcard
  and exception rules, defining *registrable domain* and *subdomain
  labels* exactly as the paper's parsing does;
* :mod:`repro.dnscore.records` / :mod:`repro.dnscore.zone` — resource
  records and zone storage, including wildcard zones and the
  default-A misconfiguration the control-query methodology detects;
* :mod:`repro.dnscore.authoritative` — authoritative servers with full
  query logging (source AS, EDNS Client Subnet) — the honeypot sensor;
* :mod:`repro.dnscore.resolver` — recursive resolution with CNAME
  chasing (up to 10 indirections, as in Section 4.3);
* :mod:`repro.dnscore.massdns` — a massdns-style bulk resolver.
"""

from repro.dnscore.authoritative import AuthoritativeServer, QueryLogEntry
from repro.dnscore.edns import ClientSubnet
from repro.dnscore.massdns import BulkResolver, BulkResult
from repro.dnscore.name import is_valid_fqdn, normalize_name, split_labels
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.dnscore.records import RecordType, ResourceRecord
from repro.dnscore.resolver import DnsUniverse, RecursiveResolver, Rcode
from repro.dnscore.zone import Zone

__all__ = [
    "AuthoritativeServer",
    "BulkResolver",
    "BulkResult",
    "ClientSubnet",
    "DnsUniverse",
    "PublicSuffixList",
    "QueryLogEntry",
    "Rcode",
    "RecordType",
    "RecursiveResolver",
    "ResourceRecord",
    "Zone",
    "default_psl",
    "is_valid_fqdn",
    "normalize_name",
    "split_labels",
]
