"""Authoritative DNS servers with query logging.

The CT honeypot's key instrument (Section 6.1 item iii): "monitoring
requests to the authoritative DNS server".  Every query is recorded
with its timestamp, source address, source AS, and any EDNS Client
Subnet option — the columns Table 4 aggregates (query count, querying
ASes, unique client subnets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional

from repro.dnscore.edns import ClientSubnet
from repro.dnscore.name import is_subdomain_of, normalize_name
from repro.dnscore.records import RecordType, ResourceRecord
from repro.dnscore.zone import Zone


@dataclass(frozen=True)
class QueryLogEntry:
    """One logged query at an authoritative server."""

    time: datetime
    qname: str
    qtype: RecordType
    source_ip: str
    source_asn: Optional[int] = None
    client_subnet: Optional[ClientSubnet] = None
    resolver_name: Optional[str] = None


@dataclass
class AuthoritativeServer:
    """Serves one or more zones; answers queries and logs them.

    ``log_queries`` can be disabled for bulk-resolution experiments
    (hundreds of thousands of queries) where the log is not consumed.
    """

    name: str = "auth"
    zones: Dict[str, Zone] = field(default_factory=dict)
    query_log: List[QueryLogEntry] = field(default_factory=list)
    log_queries: bool = True

    def add_zone(self, zone: Zone) -> Zone:
        self.zones[zone.origin] = zone
        return zone

    def zone_for(self, qname: str) -> Optional[Zone]:
        """Longest-origin-match zone selection.

        Walks the name's ancestors from most to least specific, so the
        lookup is O(labels) regardless of how many zones are hosted.
        """
        candidate = normalize_name(qname)
        while candidate:
            zone = self.zones.get(candidate)
            if zone is not None:
                return zone
            if "." not in candidate:
                return None
            candidate = candidate.split(".", 1)[1]
        return None

    def query(
        self,
        qname: str,
        qtype: RecordType,
        *,
        now: datetime,
        source_ip: str,
        source_asn: Optional[int] = None,
        client_subnet: Optional[ClientSubnet] = None,
        resolver_name: Optional[str] = None,
    ) -> List[ResourceRecord]:
        """Answer a query and append it to the query log."""
        if self.log_queries:
            self.query_log.append(
                QueryLogEntry(
                    time=now,
                    qname=normalize_name(qname),
                    qtype=qtype,
                    source_ip=source_ip,
                    source_asn=source_asn,
                    client_subnet=client_subnet,
                    resolver_name=resolver_name,
                )
            )
        zone = self.zone_for(qname)
        if zone is None:
            return []
        return zone.lookup(qname, qtype)

    # -- honeypot-analysis helpers -------------------------------------------

    def queries_for(self, qname: str) -> List[QueryLogEntry]:
        """All logged queries whose qname is at or under ``qname``."""
        target = normalize_name(qname)
        return [
            entry
            for entry in self.query_log
            if entry.qname == target or is_subdomain_of(entry.qname, target)
        ]

    def clear_log(self) -> None:
        self.query_log.clear()
