"""CAA (Certification Authority Authorization, RFC 8659) lookups.

The paper's authors studied CAA separately ([35] in the references);
here it closes the loop between the DNS substrate and the CA pipeline:
before issuing, a CA queries CAA records, climbing from the requested
name toward the root until a CAA record set is found.  ``issue`` tags
name the authorized CAs; an empty result authorizes everyone.
"""

from __future__ import annotations

from datetime import datetime
from typing import Callable, List, Optional, Sequence

from repro.dnscore.name import normalize_name, parent_name
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import Rcode, RecursiveResolver


def parse_caa_value(rdata: str) -> Optional[str]:
    """Extract the issuer identity from a CAA rdata string.

    Accepts both the wire-ish form ``0 issue "letsencrypt-org"`` and a
    bare ``issue letsencrypt-org``; returns None for non-issue tags
    (``iodef``, ``issuewild`` is treated as issue for simplicity).
    """
    fields = rdata.replace('"', "").split()
    if not fields:
        return None
    if fields[0].isdigit():
        fields = fields[1:]
    if len(fields) < 2:
        return None
    tag = fields[0].lower()
    if tag not in ("issue", "issuewild"):
        return None
    value = fields[1].strip()
    return value or None


def caa_authorized_issuers(
    resolver: RecursiveResolver,
    name: str,
    now: datetime,
) -> List[str]:
    """RFC 8659 climbing lookup: the relevant CAA ``issue`` set.

    Returns the issuer identities of the *closest* ancestor with CAA
    records; an empty list when no CAA records exist anywhere up the
    tree (meaning: issuance unrestricted).
    """
    current: Optional[str] = normalize_name(name)
    while current:
        result = resolver.resolve(current, RecordType.CAA, now=now)
        if result.rcode is Rcode.NOERROR and result.answers:
            issuers = []
            for record in result.answers:
                if record.rtype is not RecordType.CAA:
                    continue
                value = parse_caa_value(record.value)
                if value is not None:
                    issuers.append(value)
            # CAA present but no valid issue tags => issuance forbidden
            # for everyone; represent as a non-empty impossible set.
            return issuers if issuers else ["<nobody>"]
        current = parent_name(current)
    return []


def make_caa_checker(
    resolver: RecursiveResolver,
) -> Callable[[str, datetime], Sequence[str]]:
    """Adapter producing the ``CaaChecker`` the CA pipeline expects."""

    def check(name: str, now: datetime) -> Sequence[str]:
        return caa_authorized_issuers(resolver, name, now)

    return check
