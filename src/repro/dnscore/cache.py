"""A TTL-honoring caching resolver.

Open resolvers like Google Public DNS answer most repeat queries from
cache — which is exactly why the honeypot's authoritative server sees
*one* upstream query per resolver per TTL window even when many stub
clients ask (Section 6.2's query counts are shaped by this).  The
cache wraps any :class:`~repro.dnscore.resolver.RecursiveResolver`,
caching both positive answers (for ``min(record TTLs)``) and negative
results (for a configurable negative TTL, RFC 2308-style).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, Optional, Tuple

from repro.dnscore.name import normalize_name
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import Rcode, RecursiveResolver, ResolutionResult


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    result: ResolutionResult
    expires_at: datetime


class CachingResolver:
    """TTL cache in front of a recursive resolver."""

    def __init__(
        self,
        upstream: RecursiveResolver,
        *,
        negative_ttl_s: int = 300,
        max_entries: int = 100_000,
    ) -> None:
        self.upstream = upstream
        self.negative_ttl_s = negative_ttl_s
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._cache: Dict[Tuple[str, RecordType], _Entry] = {}

    def resolve(
        self,
        qname: str,
        qtype: RecordType,
        *,
        now: datetime,
        client_ip: Optional[str] = None,
    ) -> ResolutionResult:
        key = (normalize_name(qname), qtype)
        entry = self._cache.get(key)
        if entry is not None:
            if entry.expires_at > now:
                self.stats.hits += 1
                return entry.result
            del self._cache[key]
            self.stats.expirations += 1
        self.stats.misses += 1
        result = self.upstream.resolve(qname, qtype, now=now, client_ip=client_ip)
        ttl = self._ttl_for(result)
        if ttl > 0:
            if len(self._cache) >= self.max_entries:
                self._evict_expired(now)
            if len(self._cache) < self.max_entries:
                self._cache[key] = _Entry(result, now + timedelta(seconds=ttl))
        return result

    def _ttl_for(self, result: ResolutionResult) -> int:
        if result.rcode is Rcode.NOERROR and result.answers:
            return min(record.ttl for record in result.answers)
        if result.rcode is Rcode.NXDOMAIN:
            return self.negative_ttl_s
        return 0  # SERVFAIL: do not cache

    def _evict_expired(self, now: datetime) -> None:
        expired = [key for key, entry in self._cache.items() if entry.expires_at <= now]
        for key in expired:
            del self._cache[key]
            self.stats.expirations += 1

    def flush(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
