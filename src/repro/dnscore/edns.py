"""EDNS Client Subnet (RFC 7871).

Google's public resolver forwards a truncated client prefix to
authoritative servers.  Section 6.2 uses exactly this: 169 honeypot
queries carried ECS data, revealing 12 unique /24 client subnets —
including the Quasi Networks machines that later port-scanned the
honeypot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClientSubnet:
    """A client prefix as carried in the ECS option."""

    prefix: str
    prefix_length: int = 24

    @classmethod
    def from_ipv4(cls, address: str, prefix_length: int = 24) -> "ClientSubnet":
        """Truncate an IPv4 address to the given prefix length."""
        octets = [int(part) for part in address.split(".")]
        if len(octets) != 4 or any(not 0 <= o <= 255 for o in octets):
            raise ValueError(f"invalid IPv4 address: {address}")
        as_int = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        mask = (0xFFFFFFFF << (32 - prefix_length)) & 0xFFFFFFFF if prefix_length else 0
        masked = as_int & mask
        network = ".".join(
            str((masked >> shift) & 0xFF) for shift in (24, 16, 8, 0)
        )
        return cls(prefix=network, prefix_length=prefix_length)

    def __str__(self) -> str:
        return f"{self.prefix}/{self.prefix_length}"

    def covers(self, address: str) -> bool:
        """True when ``address`` falls inside this subnet."""
        return ClientSubnet.from_ipv4(address, self.prefix_length).prefix == self.prefix
