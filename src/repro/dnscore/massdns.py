"""Bulk DNS resolution with the Section 4.3 control methodology.

"We use massdns to determine whether our new FQDNs have an A record.
We need to rule out zones where queries for non-existing subdomains
would return a default A record. To this end, we create a second list
of FQDNs, where we replace the subdomain label with a 16-character
pseudorandom string."

:class:`BulkResolver` resolves candidate names *and* their pseudorandom
controls, chases CNAMEs (inherited from the recursive resolver), and
applies a routing-table validity filter so answers pointing outside
routed space are discarded ("We disregard IP addresses not part of our
border router's routing table").
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Callable, Iterable, List, Optional, Tuple

from repro.dnscore.name import random_control_label, split_labels
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import Rcode, RecursiveResolver
from repro.util.rng import SeededRng


@dataclass(frozen=True)
class BulkResult:
    """Per-candidate outcome of a control-checked bulk resolution."""

    fqdn: str
    candidate_answered: bool
    control_answered: bool
    addresses: Tuple[str, ...] = ()

    @property
    def discovered(self) -> bool:
        """A genuine discovery: candidate resolves, its control does not."""
        return self.candidate_answered and not self.control_answered


def control_name(fqdn: str, rng: SeededRng, label_length: int = 16) -> str:
    """Replace the leftmost label with a pseudorandom one."""
    labels = split_labels(fqdn)
    if len(labels) < 2:
        raise ValueError(f"cannot build a control for {fqdn!r}")
    return ".".join([random_control_label(rng, label_length)] + labels[1:])


class BulkResolver:
    """massdns-style resolution of large candidate lists."""

    def __init__(
        self,
        resolver: RecursiveResolver,
        rng: SeededRng,
        *,
        address_filter: Optional[Callable[[str], bool]] = None,
    ) -> None:
        """``address_filter`` is the border-router routing-table check:
        addresses for which it returns False are treated as unroutable
        and the answer discarded."""
        self._resolver = resolver
        self._rng = rng.fork("massdns")
        self._address_filter = address_filter

    def _routable_addresses(self, fqdn: str, now: datetime) -> Tuple[str, ...]:
        result = self._resolver.resolve(fqdn, RecordType.A, now=now)
        if result.rcode is not Rcode.NOERROR:
            return ()
        addresses = tuple(result.addresses)
        if self._address_filter is not None:
            addresses = tuple(a for a in addresses if self._address_filter(a))
        return addresses

    def resolve_one(self, fqdn: str, now: datetime) -> BulkResult:
        """Resolve a candidate and its pseudorandom control."""
        candidate_addresses = self._routable_addresses(fqdn, now)
        control = control_name(fqdn, self._rng)
        control_addresses = self._routable_addresses(control, now)
        return BulkResult(
            fqdn=fqdn,
            candidate_answered=bool(candidate_addresses),
            control_answered=bool(control_addresses),
            addresses=candidate_addresses,
        )

    def resolve_all(self, fqdns: Iterable[str], now: datetime) -> List[BulkResult]:
        """Resolve every candidate with its control."""
        return [self.resolve_one(fqdn, now) for fqdn in fqdns]

    def resolve_without_controls(
        self, fqdns: Iterable[str], now: datetime
    ) -> List[BulkResult]:
        """Ablation mode: skip the control queries (Section 4.3 would
        then count default-A zones as discoveries)."""
        results = []
        for fqdn in fqdns:
            addresses = self._routable_addresses(fqdn, now)
            results.append(
                BulkResult(
                    fqdn=fqdn,
                    candidate_answered=bool(addresses),
                    control_answered=False,
                    addresses=addresses,
                )
            )
        return results
