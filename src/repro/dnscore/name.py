"""FQDN syntax validation and label handling.

Section 4.1: "Some DNS names in these fields are not valid FQDNs as
defined by RFC 1035 (and later updates). We eliminate these using the
Python validators library."  This module is that filter: hostname
syntax per RFC 1035 as relaxed by RFC 1123 (labels may start with a
digit) with the common operational extensions (leading underscore
labels for service records are rejected for host names, wildcard
labels are accepted only as a leading ``*``).
"""

from __future__ import annotations

import re
from typing import List, Optional

MAX_NAME_LENGTH = 253
MAX_LABEL_LENGTH = 63

_LABEL_RE = re.compile(r"^(?!-)[a-z0-9-]{1,63}(?<!-)$")
_TLD_RE = re.compile(r"^[a-z][a-z0-9-]*(?<!-)$")


def normalize_name(name: str) -> str:
    """Lowercase and strip the optional trailing root dot."""
    return name.strip().lower().rstrip(".")


def split_labels(name: str) -> List[str]:
    """Split an FQDN into labels, most-specific first is NOT applied —
    labels are returned left to right as written."""
    normalized = normalize_name(name)
    if not normalized:
        return []
    return normalized.split(".")


def is_valid_label(label: str) -> bool:
    """Check one hostname label (LDH rule, length 1..63)."""
    return bool(_LABEL_RE.match(label))


def is_valid_fqdn(name: str, *, allow_wildcard: bool = False) -> bool:
    """Validate a fully qualified domain name.

    Rules applied (RFC 1035 / RFC 1123 / operational practice):

    * total length <= 253 bytes, at least two labels;
    * each label 1..63 characters of ``[a-z0-9-]``, not starting or
      ending with a hyphen;
    * the rightmost label (TLD) must not be all-numeric and must start
      with a letter;
    * a single leading ``*`` label is accepted when ``allow_wildcard``.
    """
    normalized = normalize_name(name)
    if not normalized or len(normalized) > MAX_NAME_LENGTH:
        return False
    labels = normalized.split(".")
    if len(labels) < 2:
        return False
    if labels[0] == "*":
        if not allow_wildcard:
            return False
        labels = labels[1:]
        if len(labels) < 2:
            return False
    for label in labels:
        if not is_valid_label(label):
            return False
    return bool(_TLD_RE.match(labels[-1]))


def parent_name(name: str) -> Optional[str]:
    """The name with its leftmost label removed; None at a TLD."""
    labels = split_labels(name)
    if len(labels) <= 1:
        return None
    return ".".join(labels[1:])


def is_subdomain_of(name: str, ancestor: str) -> bool:
    """True when ``name`` is equal to or under ``ancestor``."""
    child = normalize_name(name)
    parent = normalize_name(ancestor)
    return child == parent or child.endswith("." + parent)


def random_control_label(rng, length: int = 16) -> str:
    """A pseudorandom label for the Section 4.3 control queries."""
    return rng.token(length)
