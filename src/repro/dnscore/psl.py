"""Public Suffix List engine.

The paper defines a *base domain* (registrable domain) as "the domain
under a public suffix per Public Suffix List" and extracts *subdomain
labels* as all labels under the base domain.  This module implements
the PSL matching algorithm including wildcard rules (``*.ck``) and
exception rules (``!www.ck``), and bundles a suffix set covering every
suffix the paper's analyses mention (com/net/org, the phishing-heavy
ga/tk/ml/cf/gq, bid/review/live/money, country suffixes, and the
per-suffix examples of Section 4.2: tech, email, cloud, design, gov,
gov.uk, …).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.dnscore.name import normalize_name, split_labels

#: Suffix rules bundled with the reproduction (a representative subset
#: of the real PSL; extend via PublicSuffixList(extra_rules=...)).
DEFAULT_RULES: Tuple[str, ...] = (
    # generic
    "com", "net", "org", "info", "biz", "name", "mobi", "edu", "gov", "mil", "int",
    # new gTLDs used in the paper's analyses
    "tech", "email", "cloud", "design", "bid", "review", "live", "money",
    "online", "site", "xyz", "top", "shop", "app", "dev", "icu",
    # Freenom suffixes dominating the phishing table
    "ga", "tk", "ml", "cf", "gq",
    # country codes
    "de", "fr", "nl", "it", "es", "se", "no", "fi", "pl", "ru", "cn", "jp",
    "br", "in", "ir", "gr", "ch", "at", "be", "cz", "sk", "hu", "ro", "pt",
    "dk", "eu", "us", "ca", "mx", "ar", "cl", "co", "am", "my", "sg", "hk",
    "tw", "kr", "za", "ng", "ke", "eg", "il", "tr", "ua", "by", "kz", "vn",
    "th", "id", "ph", "nz", "ie", "is", "lt", "lv", "ee", "si", "hr", "rs",
    "bg", "md", "ge", "az", "io", "me", "tv", "cc", "ws", "fm", "ai", "sh",
    # multi-label country suffixes
    "co.uk", "org.uk", "me.uk", "ac.uk", "gov.uk", "nhs.uk", "ltd.uk",
    "com.au", "net.au", "org.au", "gov.au", "edu.au", "id.au",
    "co.nz", "net.nz", "org.nz", "govt.nz",
    "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
    "com.br", "net.br", "org.br", "gov.br",
    "co.in", "net.in", "org.in", "gov.in", "ac.in",
    "com.cn", "net.cn", "org.cn", "gov.cn",
    "co.za", "org.za", "gov.za",
    "com.mx", "com.ar", "com.tr", "com.ua", "com.sg", "com.my",
    "co.kr", "co.il", "co.th", "co.id", "co.am",
    # wildcard + exception examples from the real PSL
    "*.ck", "!www.ck",
    "*.bd", "*.er", "*.fk",
)


class PublicSuffixList:
    """PSL matcher implementing the publicsuffix.org algorithm."""

    def __init__(self, rules: Optional[Iterable[str]] = None,
                 extra_rules: Iterable[str] = ()) -> None:
        self._exact: Set[str] = set()
        self._wildcards: Set[str] = set()   # "ck" for "*.ck"
        self._exceptions: Set[str] = set()  # "www.ck" for "!www.ck"
        for rule in list(rules if rules is not None else DEFAULT_RULES) + list(extra_rules):
            self.add_rule(rule)

    def add_rule(self, rule: str) -> None:
        rule = rule.strip().lower()
        if not rule or rule.startswith("//"):
            return
        if rule.startswith("!"):
            self._exceptions.add(rule[1:])
        elif rule.startswith("*."):
            self._wildcards.add(rule[2:])
        else:
            self._exact.add(rule)

    # -- core algorithm ------------------------------------------------------

    def public_suffix(self, name: str) -> Optional[str]:
        """The longest matching public suffix of ``name``.

        Follows the PSL algorithm: exception rules beat wildcard rules;
        if no rule matches, the TLD (rightmost label) is the suffix.
        """
        labels = split_labels(name)
        if not labels:
            return None
        best: Optional[List[str]] = None
        for start in range(len(labels)):
            candidate = labels[start:]
            joined = ".".join(candidate)
            if joined in self._exceptions:
                # The exception's suffix is the rule with one label removed.
                return ".".join(candidate[1:]) if len(candidate) > 1 else joined
            if joined in self._exact:
                if best is None or len(candidate) > len(best):
                    best = candidate
            if len(candidate) >= 2 and ".".join(candidate[1:]) in self._wildcards:
                if best is None or len(candidate) > len(best):
                    best = candidate
        if best is not None:
            return ".".join(best)
        return labels[-1]

    def registrable_domain(self, name: str) -> Optional[str]:
        """Public suffix plus one label (the paper's *base domain*)."""
        normalized = normalize_name(name)
        suffix = self.public_suffix(normalized)
        if suffix is None or normalized == suffix:
            return None
        remainder = normalized[: -(len(suffix) + 1)]
        if not remainder:
            return None
        owner = remainder.split(".")[-1]
        return f"{owner}.{suffix}"

    def subdomain_labels(self, name: str) -> List[str]:
        """All labels under the registrable domain, left to right.

        ``www.mail.example.co.uk`` -> ``["www", "mail"]``; an empty list
        when the name *is* a registrable domain or public suffix.
        """
        normalized = normalize_name(name)
        registrable = self.registrable_domain(normalized)
        if registrable is None or normalized == registrable:
            return []
        prefix = normalized[: -(len(registrable) + 1)]
        return prefix.split(".") if prefix else []

    def split(self, name: str) -> Tuple[List[str], Optional[str], Optional[str]]:
        """Return ``(subdomain_labels, registrable_domain, public_suffix)``."""
        return (
            self.subdomain_labels(name),
            self.registrable_domain(name),
            self.public_suffix(name),
        )

    def is_public_suffix(self, name: str) -> bool:
        normalized = normalize_name(name)
        return self.public_suffix(normalized) == normalized

    def suffixes(self) -> Set[str]:
        """All exact suffix rules (used by workload generators)."""
        return set(self._exact)


_DEFAULT: Optional[PublicSuffixList] = None


def default_psl() -> PublicSuffixList:
    """A process-wide shared PSL with the bundled rules."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PublicSuffixList()
    return _DEFAULT
