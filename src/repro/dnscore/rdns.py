"""Reverse DNS and rDNS-tree walking.

Section 6.1: "For each subdomain, we create an AAAA record with a
unique IPv6 address.  We do not enter these IPv6 addresses into the
rDNS tree to avoid discovery through rDNS walking."

This module supplies both sides of that sentence:

* :class:`ReverseZone` — PTR records under ``ip6.arpa`` / ``in-addr.arpa``
  with NXDOMAIN semantics that distinguish *empty non-terminals* (an
  ancestor of an existing name) from truly absent subtrees;
* :func:`walk_rdns_tree` — the enumeration technique (semantic
  NXDOMAIN walking, as used against DNSSEC-style trees and studied for
  IPv6 hitlists): descend nibble by nibble, pruning subtrees whose
  root does not exist, and collect every PTR present.

The honeypot ablation benchmark uses these to show that *had* the
operators entered the honeypot's IPv6 addresses into rDNS, a walker
would have found them without any help from CT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

_HEX = "0123456789abcdef"


def ipv6_to_nibbles(address: str) -> List[str]:
    """Expand an IPv6 address to its 32 reverse-order nibbles."""
    head, _, tail = address.lower().partition("::")
    head_groups = head.split(":") if head else []
    tail_groups = tail.split(":") if tail else []
    missing = 8 - len(head_groups) - len(tail_groups)
    if missing < 0:
        raise ValueError(f"invalid IPv6 address: {address}")
    groups = head_groups + ["0"] * missing + tail_groups
    nibbles: List[str] = []
    for group in groups:
        if not group or len(group) > 4 or any(c not in _HEX for c in group):
            raise ValueError(f"invalid IPv6 group in {address!r}: {group!r}")
        nibbles.extend(group.zfill(4))
    nibbles.reverse()
    return nibbles


def ipv6_ptr_name(address: str) -> str:
    """The ip6.arpa name of an address."""
    return ".".join(ipv6_to_nibbles(address)) + ".ip6.arpa"


@dataclass
class ReverseZone:
    """A reverse zone holding PTR records.

    Lookup distinguishes three outcomes the walker relies on:
    ``"ptr"`` (record exists), ``"empty-non-terminal"`` (no record, but
    names exist below), and ``"nxdomain"`` (nothing in this subtree).
    """

    origin: str = "ip6.arpa"
    _ptr: Dict[str, str] = field(default_factory=dict)
    _non_terminals: Set[str] = field(default_factory=set)
    queries: int = 0

    def add_ptr(self, address: str, hostname: str) -> str:
        """Register a PTR for an IPv6 address; returns the owner name."""
        owner = ipv6_ptr_name(address)
        self._ptr[owner] = hostname.lower()
        # Every ancestor becomes an empty non-terminal.
        parts = owner.split(".")
        for depth in range(1, len(parts)):
            self._non_terminals.add(".".join(parts[depth:]))
        return owner

    def status(self, name: str) -> str:
        """``ptr`` | ``empty-non-terminal`` | ``nxdomain`` for a name."""
        self.queries += 1
        name = name.lower().rstrip(".")
        if name in self._ptr:
            return "ptr"
        if name in self._non_terminals:
            return "empty-non-terminal"
        return "nxdomain"

    def ptr(self, name: str) -> Optional[str]:
        return self._ptr.get(name.lower().rstrip("."))

    def __len__(self) -> int:
        return len(self._ptr)


@dataclass
class WalkResult:
    """Outcome of an rDNS tree walk."""

    discovered: Dict[str, str]  # ptr owner -> hostname
    queries_used: int
    nodes_visited: int


def walk_rdns_tree(
    zone: ReverseZone,
    prefix_nibbles: Iterable[str],
    *,
    max_queries: int = 1_000_000,
) -> WalkResult:
    """Enumerate all PTRs under a prefix by NXDOMAIN-pruned descent.

    ``prefix_nibbles`` is the *reversed* nibble path of the prefix to
    start from (e.g. the nibbles of ``2001:db8::/32`` under ip6.arpa).
    The walk explores children nibble by nibble and prunes any subtree
    that answers NXDOMAIN at its root, making enumeration proportional
    to the number of *existing* names, not the 2^128 address space.
    """
    start = list(prefix_nibbles)
    base = ".".join(start) + "." + zone.origin if start else zone.origin
    queries_before = zone.queries
    discovered: Dict[str, str] = {}
    visited = 0
    stack = [base]
    while stack and zone.queries - queries_before < max_queries:
        node = stack.pop()
        visited += 1
        state = zone.status(node)
        if state == "nxdomain":
            continue
        if state == "ptr":
            hostname = zone.ptr(node)
            if hostname is not None:
                discovered[node] = hostname
            continue
        for nibble in _HEX:
            stack.append(f"{nibble}.{node}")
    return WalkResult(
        discovered=discovered,
        queries_used=zone.queries - queries_before,
        nodes_visited=visited,
    )


def random_ipv6_scan_hit_probability(targets: int, prefix_bits: int = 64) -> float:
    """Probability that one random probe in a /``prefix_bits`` hits one
    of ``targets`` addresses — the paper's point that IPv6 'challenges
    scanning per se', making CT the attractive discovery channel."""
    space = 2 ** (128 - prefix_bits)
    return min(1.0, targets / space)
