"""DNS resource records."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class RecordType(str, Enum):
    """Record types the paper's measurements touch."""

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"
    MX = "MX"
    NS = "NS"
    SOA = "SOA"
    TXT = "TXT"
    CAA = "CAA"


@dataclass(frozen=True)
class ResourceRecord:
    """One record: owner name, type, value (rdata as text), TTL."""

    name: str
    rtype: RecordType
    value: str
    ttl: int = 300

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} IN {self.rtype.value} {self.value}"
