"""Recursive DNS resolution over the simulated universe.

:class:`DnsUniverse` is the closed world of authoritative servers;
:class:`RecursiveResolver` models an open resolver (Google Public DNS,
OpenDNS, …) with an AS identity, optional EDNS Client Subnet
forwarding, and CNAME chasing capped at 10 indirections — the limit
the paper applies in its Section 4.3 verification scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.dnscore.authoritative import AuthoritativeServer
from repro.dnscore.edns import ClientSubnet
from repro.dnscore.name import normalize_name
from repro.dnscore.records import RecordType, ResourceRecord
from repro.dnscore.zone import Zone

#: Maximum CNAME indirections followed (Section 4.3).
MAX_CNAME_CHAIN = 10


class Rcode(str, Enum):
    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    SERVFAIL = "SERVFAIL"


@dataclass(frozen=True)
class ResolutionResult:
    """Outcome of a recursive lookup."""

    qname: str
    qtype: RecordType
    rcode: Rcode
    answers: Tuple[ResourceRecord, ...] = ()
    cname_chain: Tuple[str, ...] = ()

    @property
    def addresses(self) -> List[str]:
        """Terminal A/AAAA values."""
        return [
            r.value
            for r in self.answers
            if r.rtype in (RecordType.A, RecordType.AAAA)
        ]


class DnsUniverse:
    """All authoritative servers of the simulated Internet.

    Maintains a zone-origin index so that finding the authoritative
    server for a name is O(labels), not O(zones) — the Section 4.3
    verification issues hundreds of thousands of queries.
    """

    def __init__(self) -> None:
        self._servers: List[AuthoritativeServer] = []
        self._default_server = AuthoritativeServer(name="default-auth")
        self._servers.append(self._default_server)
        self._origin_index: Dict[str, AuthoritativeServer] = {}

    def add_server(self, server: AuthoritativeServer) -> AuthoritativeServer:
        self._servers.append(server)
        for origin in server.zones:
            self._origin_index[origin] = server
        return server

    def add_zone(self, zone: Zone, server: Optional[AuthoritativeServer] = None) -> Zone:
        """Host ``zone`` on ``server`` (or the shared default server)."""
        target = server if server is not None else self._default_server
        if server is not None and server not in self._servers:
            self._servers.append(server)
        target.add_zone(zone)
        self._origin_index[zone.origin] = target
        return zone

    def server_for(self, qname: str) -> Optional[AuthoritativeServer]:
        """The server hosting the longest-matching zone for ``qname``."""
        candidate = normalize_name(qname)
        while candidate:
            server = self._origin_index.get(candidate)
            if server is not None:
                return server
            if "." not in candidate:
                return None
            candidate = candidate.split(".", 1)[1]
        return None

    def zone_exists_for(self, qname: str) -> bool:
        return self.server_for(qname) is not None

    @property
    def servers(self) -> List[AuthoritativeServer]:
        return list(self._servers)


@dataclass
class RecursiveResolver:
    """An open recursive resolver with a network identity.

    Parameters
    ----------
    forwards_ecs:
        Google Public DNS behaviour: forward a /24 of the stub client
        to the authoritative server via the EDNS Client Subnet option.
    """

    name: str
    universe: DnsUniverse
    ip: str = "192.0.2.53"
    asn: Optional[int] = None
    forwards_ecs: bool = False
    queries_sent: int = field(default=0)

    def resolve(
        self,
        qname: str,
        qtype: RecordType,
        *,
        now: datetime,
        client_ip: Optional[str] = None,
    ) -> ResolutionResult:
        """Resolve ``qname``, chasing CNAMEs up to the RFC-practical cap."""
        qname = normalize_name(qname)
        ecs: Optional[ClientSubnet] = None
        if self.forwards_ecs and client_ip is not None:
            ecs = ClientSubnet.from_ipv4(client_ip)
        current = qname
        chain: List[str] = []
        for _ in range(MAX_CNAME_CHAIN + 1):
            server = self.universe.server_for(current)
            if server is None:
                return ResolutionResult(qname, qtype, Rcode.NXDOMAIN, cname_chain=tuple(chain))
            self.queries_sent += 1
            records = server.query(
                current,
                qtype,
                now=now,
                source_ip=self.ip,
                source_asn=self.asn,
                client_subnet=ecs,
                resolver_name=self.name,
            )
            if not records:
                return ResolutionResult(qname, qtype, Rcode.NXDOMAIN, cname_chain=tuple(chain))
            cnames = [r for r in records if r.rtype is RecordType.CNAME]
            if cnames and qtype is not RecordType.CNAME:
                chain.append(cnames[0].value)
                current = normalize_name(cnames[0].value)
                continue
            return ResolutionResult(
                qname, qtype, Rcode.NOERROR, tuple(records), tuple(chain)
            )
        # CNAME loop / chain too deep.
        return ResolutionResult(qname, qtype, Rcode.SERVFAIL, cname_chain=tuple(chain))
