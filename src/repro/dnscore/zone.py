"""DNS zone storage.

Zones support three behaviours the Section 4.3 enumeration methodology
must contend with:

* plain record sets;
* wildcard records (``*.zone``) matching any name under the zone;
* the *default-A* misconfiguration: zones that answer **every** query
  with a fixed A record.  The paper's pseudorandom control queries
  exist precisely to rule these out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dnscore.name import is_subdomain_of, normalize_name
from repro.dnscore.records import RecordType, ResourceRecord


@dataclass
class Zone:
    """A zone rooted at ``origin``.

    Parameters
    ----------
    origin:
        Zone apex, e.g. ``example.co.uk``.
    default_a:
        When set, any name under the zone resolves to this address —
        the misconfiguration class the control methodology detects.
    """

    origin: str
    default_a: Optional[str] = None
    _records: Dict[Tuple[str, RecordType], List[ResourceRecord]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        self.origin = normalize_name(self.origin)

    def add(self, record: ResourceRecord) -> None:
        """Add a record; the owner must be at or under the origin."""
        name = normalize_name(record.name)
        bare = name[2:] if name.startswith("*.") else name
        if not is_subdomain_of(bare, self.origin):
            raise ValueError(f"{record.name} is not within zone {self.origin}")
        key = (name, record.rtype)
        self._records.setdefault(key, []).append(record)

    def add_simple(self, name: str, rtype: RecordType, value: str, ttl: int = 300) -> None:
        self.add(ResourceRecord(normalize_name(name), rtype, value, ttl))

    def contains(self, name: str) -> bool:
        """True when this zone is authoritative for ``name``."""
        return is_subdomain_of(name, self.origin)

    def lookup(self, name: str, rtype: RecordType) -> List[ResourceRecord]:
        """Resolve one name/type within the zone.

        Resolution order: exact records, exact CNAME (returned so the
        resolver can chase it), wildcard match, default-A fallback.
        An empty list means NODATA/NXDOMAIN at this zone.
        """
        name = normalize_name(name)
        exact = self._records.get((name, rtype))
        if exact:
            return list(exact)
        cname = self._records.get((name, RecordType.CNAME))
        if cname:
            return list(cname)
        if name != self.origin:
            wildcard = self._find_wildcard(name, rtype)
            if wildcard:
                return wildcard
        if self.default_a is not None and rtype is RecordType.A:
            return [ResourceRecord(name, RecordType.A, self.default_a)]
        return []

    def _find_wildcard(self, name: str, rtype: RecordType) -> List[ResourceRecord]:
        """Match ``*.<ancestor>`` wildcards, closest ancestor first."""
        labels = name.split(".")
        for depth in range(1, len(labels)):
            ancestor = ".".join(labels[depth:])
            if not is_subdomain_of(ancestor, self.origin):
                break
            for wtype in (rtype, RecordType.CNAME):
                records = self._records.get((f"*.{ancestor}", wtype))
                if records:
                    return [
                        ResourceRecord(name, r.rtype, r.value, r.ttl)
                        for r in records
                    ]
        return []

    def names(self) -> List[str]:
        """All owner names with explicit records."""
        return sorted({name for name, _ in self._records})

    def all_records(self) -> List[ResourceRecord]:
        """Every explicit record, sorted by (owner, type)."""
        out: List[ResourceRecord] = []
        for (name, rtype), records in sorted(self._records.items()):
            out.extend(records)
        return out

    def record_count(self) -> int:
        return sum(len(v) for v in self._records.values())
