"""RFC 1035-style zone file parsing and serialization.

The paper's domain list is "mainly constructed from various large zone
files, e.g., .com, .net, and .org" (Section 4.1).  This module reads
and writes the master-file format those zones are distributed in —
enough of it for realistic pipelines: ``$ORIGIN`` / ``$TTL``
directives, relative and absolute owner names, ``@`` for the origin,
owner inheritance from the previous record, comments, and the record
types the rest of the package understands.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.dnscore.name import normalize_name
from repro.dnscore.records import RecordType, ResourceRecord
from repro.dnscore.zone import Zone


class ZoneFileError(ValueError):
    """Raised on malformed zone file content."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _strip_comment(line: str) -> str:
    out = []
    for char in line:
        if char == ";":
            break
        out.append(char)
    return "".join(out)


def parse_zone_file(
    text: str,
    *,
    default_origin: Optional[str] = None,
) -> List[ResourceRecord]:
    """Parse master-file text into resource records."""
    origin = normalize_name(default_origin) if default_origin else None
    default_ttl = 3600
    previous_owner: Optional[str] = None
    records: List[ResourceRecord] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).rstrip()
        if not line.strip():
            continue
        # Directives.
        stripped = line.strip()
        if stripped.startswith("$ORIGIN"):
            parts = stripped.split()
            if len(parts) != 2:
                raise ZoneFileError(line_number, "$ORIGIN needs exactly one argument")
            origin = normalize_name(parts[1])
            continue
        if stripped.startswith("$TTL"):
            parts = stripped.split()
            try:
                default_ttl = int(parts[1])
            except (IndexError, ValueError):
                raise ZoneFileError(line_number, "$TTL needs an integer argument")
            continue
        if stripped.startswith("$"):
            raise ZoneFileError(line_number, f"unsupported directive {stripped.split()[0]}")

        # Owner inheritance: a line starting with whitespace reuses the
        # previous owner.
        if line[0] in " \t":
            owner = previous_owner
            fields = stripped.split()
        else:
            fields = stripped.split()
            owner = fields[0]
            fields = fields[1:]
        if owner is None:
            raise ZoneFileError(line_number, "first record has no owner name")

        # Optional TTL, optional class, type, rdata.
        ttl = default_ttl
        if fields and fields[0].isdigit():
            ttl = int(fields[0])
            fields = fields[1:]
        if fields and fields[0].upper() == "IN":
            fields = fields[1:]
        if len(fields) < 2:
            raise ZoneFileError(line_number, "record needs a type and rdata")
        type_text = fields[0].upper()
        try:
            rtype = RecordType(type_text)
        except ValueError:
            raise ZoneFileError(line_number, f"unsupported record type {type_text!r}")
        rdata = " ".join(fields[1:])

        full_owner = _resolve_name(owner, origin, line_number)
        if rtype in (RecordType.CNAME, RecordType.NS, RecordType.MX):
            # Name-valued rdata: resolve relative names too.  MX keeps
            # its preference prefix.
            if rtype is RecordType.MX:
                pref, _, exchange = rdata.partition(" ")
                if not exchange:
                    raise ZoneFileError(line_number, "MX needs preference and exchange")
                rdata = f"{pref} {_resolve_name(exchange, origin, line_number)}"
            else:
                rdata = _resolve_name(rdata, origin, line_number)
        previous_owner = owner
        records.append(ResourceRecord(full_owner, rtype, rdata, ttl))
    return records


def _resolve_name(name: str, origin: Optional[str], line_number: int) -> str:
    name = name.strip()
    if name == "@":
        if origin is None:
            raise ZoneFileError(line_number, "'@' used without $ORIGIN")
        return origin
    if name.endswith("."):
        return normalize_name(name)
    if origin is None:
        raise ZoneFileError(line_number, f"relative name {name!r} without $ORIGIN")
    if name.startswith("*."):
        return "*." + normalize_name(f"{name[2:]}.{origin}")
    if name == "*":
        return f"*.{origin}"
    return normalize_name(f"{name}.{origin}")


def load_zone(
    source: Union[str, Path],
    origin: str,
) -> Zone:
    """Parse a zone file into a served :class:`Zone`.

    Pass a :class:`~pathlib.Path` to read from disk, or a ``str`` of
    master-file text directly.
    """
    text = source.read_text(encoding="utf-8") if isinstance(source, Path) else source
    zone = Zone(origin)
    for record in parse_zone_file(text, default_origin=origin):
        zone.add(record)
    return zone


def serialize_zone(zone: Zone, *, ttl: int = 3600) -> str:
    """Render a zone back to master-file text (sorted, absolute names)."""
    lines = [f"$ORIGIN {zone.origin}.", f"$TTL {ttl}"]
    for record in zone.all_records():
        value = record.value
        # Name-valued rdata must serialize absolute, or re-parsing
        # would append the origin again.
        if record.rtype in (RecordType.CNAME, RecordType.NS):
            value = value.rstrip(".") + "."
        elif record.rtype is RecordType.MX:
            pref, _, exchange = value.partition(" ")
            value = f"{pref} {exchange.rstrip('.')}."
        lines.append(
            f"{record.name}. {record.ttl} IN {record.rtype.value} {value}"
        )
    return "\n".join(lines) + "\n"


def extract_registrable_domains(
    records: Iterable[ResourceRecord],
    psl=None,
) -> List[str]:
    """The paper's domain-list construction step: pull registrable
    domains out of zone-file records (NS/A owners, mostly)."""
    from repro.dnscore.psl import default_psl

    psl = psl or default_psl()
    seen = set()
    out: List[str] = []
    for record in records:
        owner = record.name
        if owner.startswith("*."):
            owner = owner[2:]
        registrable = psl.registrable_domain(owner)
        if registrable and registrable not in seen:
            seen.add(registrable)
            out.append(registrable)
    return out
