"""Simulated Internet: autonomous systems, addressing, routing, time.

The honeypot analysis (Section 6) attributes DNS queries and scans to
autonomous systems; :mod:`repro.inet.asn` carries the exact ASes of
Table 4 with the paper's footnote symbols.  The border-router routing
table of Section 4.3 ("we disregard IP addresses not part of our
border router's routing table") lives in :mod:`repro.inet.routing`.
"""

from repro.inet.addressing import Ipv4Allocator, Ipv6Allocator
from repro.inet.asn import AS_REGISTRY, AutonomousSystem, as_by_number
from repro.inet.clock import EventScheduler, SimEvent
from repro.inet.routing import RoutingTable

__all__ = [
    "AS_REGISTRY",
    "AutonomousSystem",
    "EventScheduler",
    "Ipv4Allocator",
    "Ipv6Allocator",
    "RoutingTable",
    "SimEvent",
    "as_by_number",
]
