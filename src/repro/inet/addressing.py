"""Deterministic IPv4/IPv6 address allocation per AS.

Hosts get addresses inside their AS's blocks; the honeypot's unique
per-subdomain IPv6 addresses (Section 6.1) come from the operator AS's
IPv6 prefix and are never published anywhere but CT-leaked DNS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.inet.asn import AutonomousSystem


@dataclass
class Ipv4Allocator:
    """Hands out addresses from an AS's /16 blocks, round-robin."""

    asys: AutonomousSystem
    _next_host: int = 0

    def allocate(self) -> str:
        if not self.asys.ipv4_blocks:
            raise ValueError(f"AS{self.asys.asn} has no IPv4 blocks")
        block_count = len(self.asys.ipv4_blocks)
        block = self.asys.ipv4_blocks[self._next_host % block_count]
        host = self._next_host // block_count
        self._next_host += 1
        third = (host // 250) % 250 + 1
        fourth = host % 250 + 1
        return f"{block[0]}.{block[1]}.{third}.{fourth}"

    def peek_subnet(self) -> str:
        """The /24 an allocation at the current cursor would land in."""
        block = self.asys.ipv4_blocks[self._next_host % len(self.asys.ipv4_blocks)]
        host = self._next_host // len(self.asys.ipv4_blocks)
        third = (host // 250) % 250 + 1
        return f"{block[0]}.{block[1]}.{third}.0"


@dataclass
class Ipv6Allocator:
    """Hands out addresses under the AS's IPv6 prefix."""

    asys: AutonomousSystem
    _next_host: int = 0

    def allocate(self) -> str:
        if not self.asys.ipv6_prefix:
            raise ValueError(f"AS{self.asys.asn} has no IPv6 prefix")
        self._next_host += 1
        prefix = self.asys.ipv6_prefix.rstrip(":")
        return f"{prefix}:{self._next_host:x}"


@dataclass
class AddressSpace:
    """Shared allocator registry so modules agree on host addresses."""

    _v4: Dict[int, Ipv4Allocator] = field(default_factory=dict)
    _v6: Dict[int, Ipv6Allocator] = field(default_factory=dict)

    def ipv4(self, asys: AutonomousSystem) -> str:
        allocator = self._v4.setdefault(asys.asn, Ipv4Allocator(asys))
        return allocator.allocate()

    def ipv6(self, asys: AutonomousSystem) -> str:
        allocator = self._v6.setdefault(asys.asn, Ipv6Allocator(asys))
        return allocator.allocate()
