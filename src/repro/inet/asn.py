"""Autonomous systems of the study.

Table 4's footnote defines the cast: ★ Google (AS 15169), ▲ 1&1
(AS 8560), ■ Deteque (AS 54054), ● Petersburg Internet (AS 44050),
✤ Amazon (AS 16509 / 14618), ◗ DigitalOcean (AS 14061), plus Hetzner
(24940), Online S.A.S. (12876), ACN (19397), OpenDNS (36692), and the
bulletproof Quasi Networks (AS 29073), "reincorporated in the
Seychelles in 2015 and … known to ignore all abuse messages".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS with the attributes the analyses report."""

    asn: int
    name: str
    symbol: str = ""
    #: Behavioural category used by workload generators:
    #: resolver | cloud | hosting | threat-intel | bulletproof | other
    category: str = "other"
    #: First /16s of the AS's IPv4 space, as (firstOctet, secondOctet).
    ipv4_blocks: Tuple[Tuple[int, int], ...] = ()
    ipv6_prefix: str = ""
    #: Whether the AS's scanners follow best practices (informative
    #: rDNS, abuse contacts) — the paper found none of the honeypot
    #: scanners did.
    follows_scanning_best_practices: bool = False


def _blocks(*pairs: Tuple[int, int]) -> Tuple[Tuple[int, int], ...]:
    return tuple(pairs)


#: The cast of the paper, keyed by ASN.
AS_REGISTRY: Dict[int, AutonomousSystem] = {
    asys.asn: asys
    for asys in [
        AutonomousSystem(15169, "Google", "★", "resolver", _blocks((74, 125), (172, 217)), "2607:f8b0::"),
        AutonomousSystem(8560, "1&1 Internet", "▲", "resolver", _blocks((82, 165)), "2001:8d8::"),
        AutonomousSystem(54054, "Deteque (Spamhaus)", "■", "threat-intel", _blocks((185, 49)), "2a06:1680::"),
        AutonomousSystem(44050, "Petersburg Internet", "●", "hosting", _blocks((5, 8)), "2a00:1678::"),
        AutonomousSystem(16509, "Amazon", "✤", "cloud", _blocks((52, 95), (54, 240)), "2600:1f00::"),
        AutonomousSystem(14618, "Amazon AES", "✤", "cloud", _blocks((18, 204)), "2600:1f18::"),
        AutonomousSystem(14061, "DigitalOcean", "◗", "cloud", _blocks((104, 131), (159, 89)), "2604:a880::"),
        AutonomousSystem(36692, "OpenDNS", "", "resolver", _blocks((208, 67)), "2620:119::"),
        AutonomousSystem(29073, "Quasi Networks", "", "bulletproof", _blocks((191, 96)), "2a06:5280::"),
        AutonomousSystem(24940, "Hetzner", "", "hosting", _blocks((88, 198)), "2a01:4f8::"),
        AutonomousSystem(12876, "Online S.A.S.", "", "hosting", _blocks((51, 15)), "2001:bc8::"),
        AutonomousSystem(19397, "ACN", "", "other", _blocks((66, 228)), "2610:e0::"),
        # Infrastructure of the simulation itself:
        AutonomousSystem(64500, "Honeypot Operator", "", "research", _blocks((198, 18)), "2001:db8:1::"),
        AutonomousSystem(64501, "Let's Encrypt Validation", "", "ca", _blocks((64, 78)), "2600:1401::"),
        AutonomousSystem(64496, "University Uplink", "", "research", _blocks((169, 229)), "2607:f140::"),
    ]
}


def as_by_number(asn: int) -> Optional[AutonomousSystem]:
    return AS_REGISTRY.get(asn)


def generic_ases(count: int, start_asn: int = 50000) -> List[AutonomousSystem]:
    """Synthesize the long tail of 'other' ASes (the 76 one-off
    batch queriers of Section 6.2)."""
    out = []
    for index in range(count):
        asn = start_asn + index
        first = 100 + (asn % 90)
        second = (asn * 7) % 250
        out.append(
            AutonomousSystem(
                asn,
                f"AS{asn} Transit",
                "",
                "other",
                _blocks((first, second)),
                f"2a0{index % 10:x}:{asn & 0xffff:x}::",
            )
        )
    return out


def table4_symbol(asn: int) -> str:
    """Render an ASN as the paper does: symbol if defined, else number."""
    asys = AS_REGISTRY.get(asn)
    if asys is not None and asys.symbol:
        return f"{asys.symbol}{asn}"
    return str(asn)
