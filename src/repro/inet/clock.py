"""Discrete-event simulation scheduler.

The honeypot study is event-driven: a precertificate hits a log, a
streaming monitor fires minutes later, DNS queries trickle in, a
scanner follows hours later.  :class:`EventScheduler` orders these as
timestamped events and runs callbacks in time order; callbacks may
schedule further events (a scanner reacting to a DNS answer).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, List, Optional

Callback = Callable[[datetime], None]


@dataclass(order=True)
class SimEvent:
    """One scheduled event; ordering is (time, insertion sequence)."""

    time: datetime
    seq: int
    callback: Callback = field(compare=False)
    label: str = field(compare=False, default="")


class EventScheduler:
    """A time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: List[SimEvent] = []
        self._counter = itertools.count()
        self._now: Optional[datetime] = None
        self.processed = 0

    @property
    def now(self) -> Optional[datetime]:
        """Timestamp of the event currently/last being processed."""
        return self._now

    def schedule(self, when: datetime, callback: Callback, label: str = "") -> SimEvent:
        """Enqueue ``callback`` to run at ``when``."""
        if self._now is not None and when < self._now:
            raise ValueError(
                f"cannot schedule into the past: {when} < {self._now}"
            )
        event = SimEvent(when, next(self._counter), callback, label)
        heapq.heappush(self._queue, event)
        return event

    def run_until(self, end: datetime) -> int:
        """Process events with time <= ``end``; returns the count run."""
        ran = 0
        while self._queue and self._queue[0].time <= end:
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.callback(event.time)
            ran += 1
            self.processed += 1
        return ran

    def run_all(self) -> int:
        """Drain the queue entirely (callbacks may extend it)."""
        ran = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.callback(event.time)
            ran += 1
            self.processed += 1
        return ran

    def pending(self) -> int:
        return len(self._queue)
