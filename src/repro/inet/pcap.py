"""Packet-capture-style storage and filtering for honeypot traffic.

Section 6.1: "We store full packet captures from our monitors from
2018-04-12 14:00 UTC until 2018-05-15 14:00 UTC."  This module is the
capture store: an append-only list of flow records with a small
filter language (the role tcpdump/BPF expressions play on a real
capture), plus JSONL persistence so captures outlive the process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Union

from repro.util.timeutil import from_timestamp_ms, timestamp_ms


@dataclass(frozen=True)
class ConnectionRecord:
    """One inbound packet/flow at a monitored machine."""

    time: datetime
    src_ip: str
    src_asn: int
    dst_ip: str
    dst_port: int
    sni: Optional[str] = None
    ipv6: bool = False


@dataclass(frozen=True)
class CaptureFilter:
    """A conjunctive flow filter (all set fields must match)."""

    src_asn: Optional[int] = None
    dst_ip: Optional[str] = None
    dst_port: Optional[int] = None
    sni: Optional[str] = None
    ipv6: Optional[bool] = None
    after: Optional[datetime] = None
    before: Optional[datetime] = None

    def matches(self, record: ConnectionRecord) -> bool:
        if self.src_asn is not None and record.src_asn != self.src_asn:
            return False
        if self.dst_ip is not None and record.dst_ip != self.dst_ip:
            return False
        if self.dst_port is not None and record.dst_port != self.dst_port:
            return False
        if self.sni is not None and record.sni != self.sni:
            return False
        if self.ipv6 is not None and record.ipv6 != self.ipv6:
            return False
        if self.after is not None and record.time < self.after:
            return False
        if self.before is not None and record.time > self.before:
            return False
        return True


class PacketCapture:
    """An append-only capture of connection records."""

    def __init__(self, records: Iterable[ConnectionRecord] = ()) -> None:
        self._records: List[ConnectionRecord] = sorted(
            records, key=lambda r: r.time
        )

    def append(self, record: ConnectionRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ConnectionRecord]:
        return iter(self._records)

    # -- querying -------------------------------------------------------------

    def filter(self, flt: CaptureFilter) -> List[ConnectionRecord]:
        return [record for record in self._records if flt.matches(record)]

    def where(self, predicate: Callable[[ConnectionRecord], bool]) -> List[ConnectionRecord]:
        return [record for record in self._records if predicate(record)]

    def first(self, flt: CaptureFilter) -> Optional[ConnectionRecord]:
        for record in self._records:
            if flt.matches(record):
                return record
        return None

    def unique_sources(self) -> List[str]:
        return sorted({record.src_ip for record in self._records})

    def ports_probed(self, src_ip: str) -> List[int]:
        return sorted({
            record.dst_port
            for record in self._records
            if record.src_ip == src_ip
        })

    # -- persistence -------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> int:
        with Path(path).open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps({
                    "t": timestamp_ms(record.time),
                    "src": record.src_ip,
                    "asn": record.src_asn,
                    "dst": record.dst_ip,
                    "port": record.dst_port,
                    "sni": record.sni,
                    "v6": record.ipv6,
                }, separators=(",", ":")) + "\n")
        return len(self._records)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PacketCapture":
        records = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                records.append(
                    ConnectionRecord(
                        time=from_timestamp_ms(data["t"]),
                        src_ip=data["src"],
                        src_asn=data["asn"],
                        dst_ip=data["dst"],
                        dst_port=data["port"],
                        sni=data["sni"],
                        ipv6=data["v6"],
                    )
                )
        return cls(records)
