"""The border router's view of routable address space.

Section 4.3: "We disregard IP addresses not part of our border
router's routing table as invalid. This rules out misconfigured DNS
servers. It also makes our numbers lower bounds."

The table holds /16 prefixes; membership is a dictionary probe on the
first two octets, so filtering hundreds of thousands of answers stays
cheap.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.inet.asn import AS_REGISTRY, AutonomousSystem


class RoutingTable:
    """A set of routed /16s with an IPv4 membership test."""

    def __init__(self, prefixes: Iterable[Tuple[int, int]] = ()) -> None:
        self._prefixes: Set[Tuple[int, int]] = set(prefixes)

    @classmethod
    def from_ases(cls, ases: Iterable[AutonomousSystem]) -> "RoutingTable":
        table = cls()
        for asys in ases:
            for block in asys.ipv4_blocks:
                table.add_prefix(block)
        return table

    @classmethod
    def global_table(cls) -> "RoutingTable":
        """Routes for every registered AS."""
        return cls.from_ases(AS_REGISTRY.values())

    def add_prefix(self, prefix: Tuple[int, int]) -> None:
        self._prefixes.add(prefix)

    def add_ases(self, ases: Iterable[AutonomousSystem]) -> None:
        for asys in ases:
            for block in asys.ipv4_blocks:
                self.add_prefix(block)

    def contains(self, address: str) -> bool:
        """True when the address falls in a routed /16."""
        parts = address.split(".")
        if len(parts) != 4:
            return False
        try:
            first, second = int(parts[0]), int(parts[1])
        except ValueError:
            return False
        return (first, second) in self._prefixes

    def __contains__(self, address: str) -> bool:
        return self.contains(address)

    def __len__(self) -> int:
        return len(self._prefixes)
