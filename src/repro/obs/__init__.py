"""Observability: metrics, spans, and live telemetry for the pipeline.

The paper's headline numbers come out of sharded, retrying runs; this
package is how those runs describe themselves.  Everything is
dependency-free and deterministic where it matters:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters,
  gauges, histograms) whose :class:`MetricsSnapshot` is picklable,
  JSON-exportable with sorted keys, and merges associatively and
  commutatively — per-shard metrics survive process-pool workers and
  reduce bit-identically;
* :mod:`repro.obs.trace` — :class:`SpanTracer`, a context-manager
  span stack with wall-time, nesting, and JSON export;
* :mod:`repro.obs.export` — :func:`render_prometheus` (deterministic
  Prometheus text exposition of a snapshot) and
  :class:`TelemetryServer`, a stdlib HTTP endpoint serving
  ``/metrics``, ``/health``, and ``/events/tail`` for long-running
  loops;
* :mod:`repro.obs.events` — :class:`EventLog`, a structured JSONL
  event stream (run/shard lifecycle, per-log fetch outcomes) with
  per-run correlation IDs, :func:`replay_counters` to fold the stream
  back into the counters it mirrors, and
  :class:`SnapshotDeltaFlusher` for interval-based live counter
  deltas;
* :mod:`repro.obs.health` — the per-log SLO engine:
  :func:`evaluate_stats` folds fetch counters into
  ``healthy|degraded|failing`` verdicts under an :class:`SloPolicy`.

Wired consumers: :class:`repro.pipeline.PipelineEngine` (per-shard
duration, queue wait, attempts, degraded shards, checkpoint resume hit
rate, lifecycle events), :class:`repro.ct.CertFeed` and the Section 6
monitors (per-log fetch latency, entries, error/retry counters,
``feed_poll``/``monitor_fetch`` events, health reports),
:class:`repro.ct.LogAuditor` (poll latency, consistency pass/fail,
tree-size gauge), :class:`repro.resilience.RetryPolicy`
(attempt/backoff histograms), :class:`repro.ct.storage.
HarvestCheckpoint` (record accounting), the CLI (``--metrics-out`` /
``--trace`` / ``--trace-out`` / ``--events-out`` and the ``status``
artifact), and the benchmark harness (JSON sidecars).
"""

from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EventLog,
    SnapshotDeltaFlusher,
    counter_delta,
    new_run_id,
    read_events,
    replay_counters,
)
from repro.obs.export import (
    EXPOSITION_CONTENT_TYPE,
    TelemetryServer,
    escape_label_value,
    format_number,
    parse_exposition,
    prometheus_name,
    render_prometheus,
    split_metric_key,
)
from repro.obs.health import (
    DEFAULT_POLICY,
    HealthReport,
    LogHealth,
    SloPolicy,
    evaluate_log,
    evaluate_stats,
)
from repro.obs.metrics import (
    COUNT_BOUNDS,
    DEFAULT_TIME_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    metric_key,
)
from repro.obs.trace import Span, SpanTracer, maybe_span

__all__ = [
    "COUNT_BOUNDS",
    "DEFAULT_POLICY",
    "DEFAULT_TIME_BOUNDS",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "EXPOSITION_CONTENT_TYPE",
    "Counter",
    "EventLog",
    "Gauge",
    "HealthReport",
    "Histogram",
    "LogHealth",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SloPolicy",
    "SnapshotDeltaFlusher",
    "Span",
    "SpanTracer",
    "TelemetryServer",
    "counter_delta",
    "escape_label_value",
    "evaluate_log",
    "evaluate_stats",
    "format_number",
    "maybe_span",
    "metric_key",
    "new_run_id",
    "parse_exposition",
    "prometheus_name",
    "read_events",
    "render_prometheus",
    "replay_counters",
    "split_metric_key",
]
