"""Observability: metrics, spans, and live telemetry for the pipeline.

The paper's headline numbers come out of sharded, retrying runs; this
package is how those runs describe themselves.  Everything is
dependency-free and deterministic where it matters:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters,
  gauges, histograms) whose :class:`MetricsSnapshot` is picklable,
  JSON-exportable with sorted keys, and merges associatively and
  commutatively — per-shard metrics survive process-pool workers and
  reduce bit-identically;
* :mod:`repro.obs.trace` — :class:`SpanTracer`, a thread-safe
  context-manager span stack with wall-time, nesting, trace-context
  identity, and JSON export;
* :mod:`repro.obs.tracectx` — distributed-tracing glue:
  :class:`TraceContext` (the ``X-Repro-Traceparent`` wire encoding),
  :class:`TraceIdSource` (seeded deterministic trace/span ids),
  :class:`TraceStore` (span assembly grouped by trace id from live
  tracers, worker-shipped records, or replayed ``span`` events), and
  :func:`certificate_lifecycles` (the Sec. 6 submit → SCT → merge →
  inclusion → detection timeline read out of spans alone);
* :mod:`repro.obs.export` — :func:`render_prometheus` (deterministic
  Prometheus text exposition of a snapshot) and
  :class:`TelemetryServer`, a stdlib HTTP endpoint serving
  ``/metrics``, ``/health``, and ``/events/tail`` for long-running
  loops;
* :mod:`repro.obs.events` — :class:`EventLog`, a structured JSONL
  event stream (run/shard lifecycle, per-log fetch outcomes) with
  per-run correlation IDs, :func:`replay_counters` to fold the stream
  back into the counters it mirrors, and
  :class:`SnapshotDeltaFlusher` for interval-based live counter
  deltas;
* :mod:`repro.obs.health` — the per-log SLO engine:
  :func:`evaluate_stats` folds fetch counters into
  ``healthy|degraded|failing`` verdicts under an :class:`SloPolicy`.

Wired consumers: :class:`repro.pipeline.PipelineEngine` (per-shard
duration, queue wait, attempts, degraded shards, checkpoint resume hit
rate, lifecycle events), :class:`repro.ct.CertFeed` and the Section 6
monitors (per-log fetch latency, entries, error/retry counters,
``feed_poll``/``monitor_fetch`` events, health reports),
:class:`repro.ct.LogAuditor` (poll latency, consistency pass/fail,
tree-size gauge), :class:`repro.resilience.RetryPolicy`
(attempt/backoff histograms), :class:`repro.ct.storage.
HarvestCheckpoint` (record accounting), the CLI (``--metrics-out`` /
``--trace`` / ``--trace-out`` / ``--events-out`` and the ``status``
artifact), and the benchmark harness (JSON sidecars).
"""

from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EventLog,
    SnapshotDeltaFlusher,
    counter_delta,
    new_run_id,
    read_events,
    replay_counters,
)
from repro.obs.export import (
    EXPOSITION_CONTENT_TYPE,
    TelemetryServer,
    escape_label_value,
    format_number,
    parse_exposition,
    prometheus_name,
    render_prometheus,
    split_metric_key,
)
from repro.obs.health import (
    DEFAULT_POLICY,
    HealthReport,
    LogHealth,
    SloPolicy,
    WritePathHealth,
    WritePathReport,
    evaluate_log,
    evaluate_stats,
    evaluate_write_path,
)
from repro.obs.metrics import (
    COUNT_BOUNDS,
    DEFAULT_TIME_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    metric_key,
)
from repro.obs.trace import Span, SpanTracer, maybe_span
from repro.obs.tracectx import (
    SPAN_KINDS,
    SPAN_RECORD_FIELDS,
    TRACEPARENT_HEADER,
    TraceContext,
    TraceIdSource,
    TraceStore,
    certificate_lifecycles,
    normalize_span_record,
    render_lifecycles,
)

__all__ = [
    "COUNT_BOUNDS",
    "DEFAULT_POLICY",
    "DEFAULT_TIME_BOUNDS",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "EXPOSITION_CONTENT_TYPE",
    "SPAN_KINDS",
    "SPAN_RECORD_FIELDS",
    "TRACEPARENT_HEADER",
    "Counter",
    "EventLog",
    "Gauge",
    "HealthReport",
    "Histogram",
    "LogHealth",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SloPolicy",
    "SnapshotDeltaFlusher",
    "Span",
    "SpanTracer",
    "TelemetryServer",
    "TraceContext",
    "TraceIdSource",
    "TraceStore",
    "WritePathHealth",
    "WritePathReport",
    "certificate_lifecycles",
    "counter_delta",
    "escape_label_value",
    "evaluate_log",
    "evaluate_stats",
    "evaluate_write_path",
    "format_number",
    "maybe_span",
    "metric_key",
    "new_run_id",
    "normalize_span_record",
    "parse_exposition",
    "prometheus_name",
    "read_events",
    "render_lifecycles",
    "render_prometheus",
    "replay_counters",
    "split_metric_key",
]
