"""Observability: metrics and spans for the reproduction pipeline.

The paper's headline numbers come out of sharded, retrying runs; this
package is how those runs describe themselves.  Everything is
dependency-free and deterministic where it matters:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters,
  gauges, histograms) whose :class:`MetricsSnapshot` is picklable,
  JSON-exportable with sorted keys, and merges associatively and
  commutatively — per-shard metrics survive process-pool workers and
  reduce bit-identically;
* :mod:`repro.obs.trace` — :class:`SpanTracer`, a context-manager
  span stack with wall-time, nesting, and JSON export.

Wired consumers: :class:`repro.pipeline.PipelineEngine` (per-shard
duration, queue wait, attempts, degraded shards, checkpoint resume hit
rate), :class:`repro.ct.CertFeed` and the Section 6 monitors (per-log
fetch latency, entries, error/retry counters),
:class:`repro.resilience.RetryPolicy` (attempt/backoff histograms),
:class:`repro.ct.storage.HarvestCheckpoint` (record accounting), the
CLI (``--metrics-out FILE`` / ``--trace``), and the benchmark harness
(JSON sidecars with metric snapshots).
"""

from repro.obs.metrics import (
    COUNT_BOUNDS,
    DEFAULT_TIME_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    metric_key,
)
from repro.obs.trace import Span, SpanTracer, maybe_span

__all__ = [
    "COUNT_BOUNDS",
    "DEFAULT_TIME_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "SpanTracer",
    "maybe_span",
    "metric_key",
]
