"""Structured JSONL event log with per-run correlation IDs.

Where :mod:`repro.obs.metrics` answers "how much, in total", this
module answers "what happened, in order" — an append-only stream of
JSON objects emitted *live* (one line per event, flushed as written),
so a long-running monitoring loop can be tailed while it runs instead
of inspected post-mortem.

Every event carries the same envelope::

    {"v": 1, "run": "<correlation id>", "seq": N, "ts": <unix s>,
     "kind": "<event kind>", ...kind-specific fields...}

``seq`` is a gapless per-log sequence number, so a consumer can detect
torn tails; ``run`` correlates every event of one process/run.  Kind
names and their fields are a stable schema (documented in
docs/API.md); the emitting layers are the pipeline engine (run/shard
lifecycle, retries, degradation, checkpoint resume), the feed and the
monitors (per-log fetch outcomes), and the STH auditor.

:func:`replay_counters` folds a stream of events back into the metric
counters the instrumented layers record, keyed exactly like
:func:`repro.obs.metrics.metric_key` — the event log and the final
:class:`~repro.obs.metrics.MetricsSnapshot` are two views of the same
run, and the replay is how tests prove they agree.

:class:`SnapshotDeltaFlusher` is the live-export half: it diffs the
registry against the last flush on an interval and emits the delta as
a ``metrics_flush`` event, so tailing the event log shows counters
move while the loop is still running.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    TextIO,
    Union,
)

from repro.obs.metrics import MetricsSnapshot, Number, metric_key

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: Event schema version; bump on any envelope change.
#: v2: added the ``span`` kind (distributed-tracing span records).
EVENT_SCHEMA_VERSION = 2

#: Envelope keys; ``emit`` rejects field names that would shadow them.
ENVELOPE_FIELDS = ("v", "run", "seq", "ts", "kind")
_ENVELOPE_SET = frozenset(ENVELOPE_FIELDS)

#: The stable event kinds (see docs/API.md for their fields).
EVENT_KINDS = (
    "run_start",
    "run_finish",
    "map_start",
    "map_finish",
    "shard_finish",
    "shard_failed",
    "checkpoint_resume",
    "degraded",
    "feed_poll",
    "monitor_fetch",
    "auditor_poll",
    "audit_finding",
    "metrics_flush",
    "log_server_request",
    "sequencer_merge",
    "lightweight_poll",
    "span",
)


def new_run_id() -> str:
    """A fresh correlation ID (12 hex chars; not seeded — identity, not data)."""
    return uuid.uuid4().hex[:12]


class EventLog:
    """Append-only JSONL event stream with an in-memory tail.

    Parameters
    ----------
    path:
        Optional JSONL file; each event is written as one
        ``json.dumps(..., sort_keys=True)`` line and flushed
        immediately, so the file is tail-able while the run is live.
        With ``path=None`` events only fill the in-memory ring.
    run_id:
        Correlation ID stamped on every event; defaults to a fresh
        :func:`new_run_id`.
    clock:
        Unix-seconds source for the ``ts`` field (injectable for
        deterministic tests).
    tail_size:
        Ring-buffer capacity backing :meth:`tail` (and the telemetry
        server's ``/events/tail`` endpoint).

    Thread-safe: emission takes a lock, so feed/monitor loops and the
    telemetry server's handler threads can share one log.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        run_id: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        tail_size: int = 1024,
    ) -> None:
        if tail_size < 1:
            raise ValueError(f"tail_size must be >= 1, got {tail_size}")
        self.path = Path(path) if path is not None else None
        self.run_id = run_id if run_id is not None else new_run_id()
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._seq = 0
        self._tail: Deque[Dict[str, object]] = deque(maxlen=tail_size)
        self._file: Optional[TextIO] = (
            open(self.path, "a", encoding="utf-8")
            if self.path is not None
            else None
        )

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> Dict[str, object]:
        """Record one event; returns the full record (envelope + fields)."""
        if not _ENVELOPE_SET.isdisjoint(fields):
            shadowed = sorted(_ENVELOPE_SET.intersection(fields))
            raise ValueError(
                f"event fields {shadowed} shadow envelope keys {ENVELOPE_FIELDS}"
            )
        with self._lock:
            record: Dict[str, object] = {
                "v": EVENT_SCHEMA_VERSION,
                "run": self.run_id,
                "seq": self._seq,
                "ts": round(float(self._clock()), 6),
                "kind": kind,
            }
            for key in sorted(fields):
                record[key] = fields[key]
            self._seq += 1
            self._tail.append(record)
            if self._file is not None:
                self._file.write(json.dumps(record, sort_keys=True) + "\n")
                self._file.flush()
            return record

    # -- inspection ----------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Events emitted so far (== the next ``seq``)."""
        return self._seq

    def tail(self, n: int = 100) -> List[Dict[str, object]]:
        """The most recent ``n`` events, oldest first."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        with self._lock:
            events = list(self._tail)
        return events[len(events) - n :] if n else []

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load a JSONL event file; blank lines are ignored."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def replay_counters(events: Iterable[Mapping[str, object]]) -> Dict[str, Number]:
    """Fold events back into the counters their emitters recorded.

    Covers the counter families whose instruments and events are
    emitted by the same code paths — per-log feed/monitor fetch
    outcomes and per-shard pipeline lifecycle — so for a run with both
    metrics and events attached, the replay of those families equals
    the final snapshot's counters exactly (asserted in
    ``tests/obs/test_events.py`` and the live telemetry test).
    """
    counters: Dict[str, Number] = {}

    def add(name: str, amount: Number = 1, **labels: object) -> None:
        key = metric_key(name, labels)
        counters[key] = counters.get(key, 0) + amount

    for event in events:
        kind = event.get("kind")
        if kind == "feed_poll":
            log = event["log"]
            if event.get("ok"):
                add("feed.entries", int(event.get("entries", 0)), log=log)
            else:
                add("feed.poll_errors", 1, log=log)
            retried = int(event.get("retried", 0))
            if retried:
                add("feed.poll_retries", retried, log=log)
        elif kind == "monitor_fetch":
            labels = {"monitor": event["monitor"], "log": event["log"]}
            if event.get("ok"):
                add("monitor.entries", int(event.get("entries", 0)), **labels)
            else:
                add("monitor.errors", 1, **labels)
            retried = int(event.get("retried", 0))
            if retried:
                add("monitor.retries", retried, **labels)
        elif kind == "lightweight_poll":
            labels = {"monitor": event["monitor"], "log": event["log"]}
            add("monitor.wire_entries", int(event.get("wire_entries", 0)), **labels)
            add("monitor.wire_bytes", int(event.get("wire_bytes", 0)), **labels)
            add("monitor.matches", int(event.get("matches", 0)), **labels)
        elif kind == "map_start":
            add("pipeline.shards_planned", int(event.get("shards", 0)))
        elif kind == "shard_finish":
            attempts = int(event.get("attempts", 1))
            add("pipeline.shards_completed")
            add("pipeline.shard_attempts", attempts)
            if attempts > 1:
                add("pipeline.shard_retries", attempts - 1)
                add("pipeline.retries_total", attempts - 1)
        elif kind == "shard_failed":
            attempts = int(event.get("attempts", 1))
            add("pipeline.shards_failed")
            add("pipeline.shard_failures", 1, shard=event["shard"])
            add("pipeline.failed_shard_attempts", attempts)
            if attempts > 1:
                add("pipeline.retries_total", attempts - 1)
        elif kind == "checkpoint_resume":
            add("pipeline.shards_resumed", int(event.get("shards", 0)))
    return counters


def counter_delta(
    old: MetricsSnapshot, new: MetricsSnapshot
) -> Dict[str, Number]:
    """Counter increments from ``old`` to ``new`` (changed keys only)."""
    delta: Dict[str, Number] = {}
    for key, value in new.counters.items():
        moved = value - old.counters.get(key, 0)
        if moved:
            delta[key] = moved
    return delta


class SnapshotDeltaFlusher:
    """Interval-based live export of counter movement as events.

    Attached to a polling loop (``CertFeed.poll`` calls
    :meth:`maybe_flush` once per round), it emits a ``metrics_flush``
    event whenever ``interval_s`` has elapsed since the last flush,
    carrying the counter *delta* since that flush plus the current
    gauges.  Deltas baseline from an empty snapshot, so the running sum
    of all flushed deltas equals the registry's counters at the last
    flush — :meth:`flush` with no interval check is the loop-shutdown
    hook that makes the stream complete.
    """

    def __init__(
        self,
        metrics: "MetricsRegistry",
        events: EventLog,
        interval_s: float = 5.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval_s < 0:
            raise ValueError(f"interval_s must be >= 0, got {interval_s}")
        self.metrics = metrics
        self.events = events
        self.interval_s = interval_s
        self._clock = clock if clock is not None else time.monotonic
        self._last = MetricsSnapshot.empty()
        self._last_at = self._clock()
        self.flushes = 0

    def maybe_flush(self) -> bool:
        """Flush when the interval has elapsed; returns whether it did."""
        now = self._clock()
        if now - self._last_at < self.interval_s:
            return False
        return self._flush(now)

    def flush(self) -> bool:
        """Flush unconditionally (e.g. on loop shutdown)."""
        return self._flush(self._clock())

    def _flush(self, now: float) -> bool:
        current = self.metrics.snapshot()
        delta = counter_delta(self._last, current)
        self.events.emit(
            "metrics_flush",
            flush=self.flushes,
            counters={key: delta[key] for key in sorted(delta)},
            gauges={key: current.gauges[key] for key in sorted(current.gauges)},
        )
        self._last = current
        self._last_at = now
        self.flushes += 1
        return True
