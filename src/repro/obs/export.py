"""Live telemetry export: Prometheus exposition + HTTP endpoints.

The batch observability layer writes a :class:`MetricsSnapshot` once,
at process exit; this module is the *live* half for long-running loops
(``CertFeed.poll``, the monitors, the STH auditor):

* :func:`render_prometheus` renders a snapshot in the Prometheus text
  exposition format (version 0.0.4) — counters (``_total`` suffix),
  gauges, and histograms (cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count``) with escaped label values and fully
  deterministic ordering: two equal snapshots render to equal bytes;
* :class:`TelemetryServer` is a dependency-free ``http.server``
  endpoint serving ``GET /metrics`` (exposition text), ``GET /health``
  (the SLO verdicts of :mod:`repro.obs.health` as JSON; 503 once any
  log is ``failing``), ``GET /events/tail?n=N`` (the most recent
  events of an attached :class:`~repro.obs.events.EventLog` as JSONL),
  ``GET /analytics`` (the version-1 live-analytics snapshot of an
  attached :class:`~repro.dataset.live.LiveAnalytics` — the paper's
  Fig 1a/1b/Table 1 aggregates, folded incrementally), and
  ``GET /spans?trace_id=...`` (one assembled trace from an attached
  :class:`~repro.obs.tracectx.TraceStore` source; without the query
  parameter, a summary of every known trace).

The server never touches a registry directly — it calls the injected
provider callables on every request, so the owner of the loop decides
what (and under which lock) gets exposed.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import MetricsSnapshot, Number
from repro.util.httpd import HttpServerHandle

if TYPE_CHECKING:
    from repro.obs.events import EventLog
    from repro.obs.tracectx import TraceStore

#: Content type of the Prometheus text exposition format.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: One exposition sample line: ``name{labels} value`` (labels optional).
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9].*$|"
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [+-]?Inf$"
)


def split_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`repro.obs.metrics.metric_key`.

    ``name{k=v,...}`` → ``(name, {k: v, ...})``.  A comma inside a
    label *value* (label keys are identifiers) is re-joined onto the
    preceding pair, so values containing commas round-trip.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: Dict[str, str] = {}
    last: Optional[str] = None
    for part in inner.split(","):
        if "=" in part and (last is None or not part.startswith(" ")):
            label, _, value = part.partition("=")
            labels[label] = value
            last = label
        elif last is not None:
            labels[last] += "," + part
        else:  # pragma: no cover - malformed key
            raise ValueError(f"unparseable metric key {key!r}")
    return name, labels


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """A valid exposition metric name: prefixed, ``[a-zA-Z0-9_:]`` only."""
    sanitized = _INVALID_NAME_CHARS.sub("_", prefix + name)
    if sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def format_number(value: Number) -> str:
    """Deterministic sample-value rendering (ints bare, floats ``repr``)."""
    if isinstance(value, bool):  # pragma: no cover - counters reject bools
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_block(labels: Mapping[str, str], extra: str = "") -> str:
    """``{k="v",...}`` with keys sorted; empty string when no labels."""
    pairs = [
        f'{key}="{escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _families(
    samples: Mapping[str, Number],
) -> "Dict[str, List[Tuple[str, Dict[str, str], Number]]]":
    """Group samples by bare metric name, preserving canonical key order."""
    families: Dict[str, List[Tuple[str, Dict[str, str], Number]]] = {}
    for key in sorted(samples):
        name, labels = split_metric_key(key)
        families.setdefault(name, []).append((key, labels, samples[key]))
    return families


def render_prometheus(
    snapshot: MetricsSnapshot, prefix: str = "repro_"
) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Output is fully deterministic: families sorted by name within each
    section (counters, then gauges, then histograms), series sorted by
    their canonical label key.  Counter families get the conventional
    ``_total`` suffix; histogram buckets are cumulative with a closing
    ``le="+Inf"`` bucket equal to ``_count``.
    """
    lines: List[str] = []

    for name, series in sorted(_families(snapshot.counters).items()):
        exposed = prometheus_name(name, prefix) + "_total"
        lines.append(f"# TYPE {exposed} counter")
        for _, labels, value in series:
            lines.append(
                f"{exposed}{_label_block(labels)} {format_number(value)}"
            )

    for name, series in sorted(_families(snapshot.gauges).items()):
        exposed = prometheus_name(name, prefix)
        lines.append(f"# TYPE {exposed} gauge")
        for _, labels, value in series:
            lines.append(
                f"{exposed}{_label_block(labels)} {format_number(value)}"
            )

    histogram_families = _families(
        {key: 0 for key in snapshot.histograms}
    )
    for name, series in sorted(histogram_families.items()):
        exposed = prometheus_name(name, prefix)
        lines.append(f"# TYPE {exposed} histogram")
        for key, labels, _ in series:
            hist = snapshot.histograms[key]
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                le = _label_block(labels, f'le="{format_number(bound)}"')
                lines.append(f"{exposed}_bucket{le} {cumulative}")
            inf = _label_block(labels, 'le="+Inf"')
            lines.append(f"{exposed}_bucket{inf} {hist['count']}")
            block = _label_block(labels)
            lines.append(f"{exposed}_sum{block} {format_number(hist['sum'])}")
            lines.append(f"{exposed}_count{block} {hist['count']}")

    return "\n".join(lines) + ("\n" if lines else "")


SnapshotSource = Callable[[], MetricsSnapshot]
HealthSource = Callable[[], object]  # HealthReport or plain dict
AnalyticsSource = Callable[[], object]  # LiveAnalytics to_dict() or plain dict
TraceSource = Callable[[], "TraceStore"]  # current assembled trace store


class TelemetryServer:
    """A stdlib HTTP endpoint for live scraping of a running loop.

    Parameters
    ----------
    snapshot_source:
        Callable returning the current :class:`MetricsSnapshot`
        (typically ``registry.snapshot`` behind the loop's lock).
    health_source:
        Optional callable returning a
        :class:`repro.obs.health.HealthReport` (or an equivalent dict)
        for ``/health``; without it the route answers 404.
    events:
        Optional :class:`~repro.obs.events.EventLog` backing
        ``/events/tail``; without it the route answers 404.
    analytics_source:
        Optional callable returning the current live-analytics
        snapshot for ``/analytics`` — typically
        :meth:`repro.dataset.live.LiveAnalytics.to_dict` (any mapping
        works); without it the route answers 404.
    trace_source:
        Optional callable returning the current
        :class:`~repro.obs.tracectx.TraceStore` for ``/spans``;
        without it the route answers 404.
    host / port:
        Bind address; ``port=0`` (the default) picks an ephemeral port,
        exposed as :attr:`port` / :attr:`url` after construction.

    Use as a context manager, or call :meth:`start` / :meth:`stop`;
    requests are served on daemon threads and never block the loop.
    The bind/serve/shutdown lifecycle (and the ephemeral-port
    behaviour) is the shared :class:`repro.util.httpd.HttpServerHandle`
    — the same helper behind :class:`repro.ct.server.LogServer`.
    """

    def __init__(
        self,
        snapshot_source: SnapshotSource,
        *,
        health_source: Optional[HealthSource] = None,
        events: Optional["EventLog"] = None,
        analytics_source: Optional[AnalyticsSource] = None,
        trace_source: Optional[TraceSource] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro_",
    ) -> None:
        self._snapshot_source = snapshot_source
        self._health_source = health_source
        self._events = events
        self._analytics_source = analytics_source
        self._trace_source = trace_source
        self._prefix = prefix
        self._handle = HttpServerHandle(
            _TelemetryHandler,
            owner=self,
            host=host,
            port=port,
            thread_name="repro-telemetry",
        )

    @property
    def host(self) -> str:
        return self._handle.host

    @property
    def port(self) -> int:
        return self._handle.port

    @property
    def url(self) -> str:
        return self._handle.url

    def start(self) -> "TelemetryServer":
        self._handle.start()
        return self

    def stop(self) -> None:
        self._handle.stop()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- responses (called from handler threads) -----------------------------

    def _metrics_response(self) -> Tuple[int, str, str]:
        text = render_prometheus(self._snapshot_source(), self._prefix)
        return 200, EXPOSITION_CONTENT_TYPE, text

    def _health_response(self) -> Tuple[int, str, str]:
        if self._health_source is None:
            return 404, "application/json", '{"error": "no health source"}\n'
        report = self._health_source()
        body: Mapping[str, object] = (
            report.to_dict() if hasattr(report, "to_dict") else report  # type: ignore[union-attr]
        )
        status = 503 if body.get("overall") == "failing" else 200
        return status, "application/json", json.dumps(body, sort_keys=True) + "\n"

    def _analytics_response(self) -> Tuple[int, str, str]:
        if self._analytics_source is None:
            return 404, "application/json", '{"error": "no analytics source"}\n'
        snapshot = self._analytics_source()
        body: Mapping[str, object] = (
            snapshot.to_dict() if hasattr(snapshot, "to_dict") else snapshot  # type: ignore[union-attr]
        )
        return 200, "application/json", json.dumps(body, sort_keys=True) + "\n"

    def _events_response(self, query: str) -> Tuple[int, str, str]:
        if self._events is None:
            return 404, "application/json", '{"error": "no event log"}\n'
        params = parse_qs(query)
        try:
            n = int(params.get("n", ["100"])[0])
        except ValueError:
            return 400, "application/json", '{"error": "n must be an int"}\n'
        lines = [
            json.dumps(event, sort_keys=True)
            for event in self._events.tail(max(0, n))
        ]
        body = "\n".join(lines) + ("\n" if lines else "")
        return 200, "application/x-ndjson", body

    def _spans_response(self, query: str) -> Tuple[int, str, str]:
        if self._trace_source is None:
            return 404, "application/json", '{"error": "no trace source"}\n'
        store = self._trace_source()
        params = parse_qs(query)
        trace_id = params.get("trace_id", [""])[0].strip().lower()
        if trace_id:
            spans = store.spans_for(trace_id)
            if not spans:
                return (
                    404,
                    "application/json",
                    '{"error": "unknown trace_id"}\n',
                )
            body = {"trace_id": trace_id, "spans": spans}
        else:
            body = {
                "traces": [
                    {
                        "trace_id": known,
                        "spans": len(store.spans_for(known)),
                    }
                    for known in store.trace_ids()
                ]
            }
        return 200, "application/json", json.dumps(body, sort_keys=True) + "\n"


class _TelemetryHandler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1"

    def log_message(self, *args: object) -> None:  # silence stderr
        pass

    def do_GET(self) -> None:
        telemetry: TelemetryServer = self.server.owner  # type: ignore[attr-defined]
        parts = urlsplit(self.path)
        try:
            if parts.path == "/metrics":
                status, ctype, body = telemetry._metrics_response()
            elif parts.path == "/health":
                status, ctype, body = telemetry._health_response()
            elif parts.path == "/analytics":
                status, ctype, body = telemetry._analytics_response()
            elif parts.path == "/events/tail":
                status, ctype, body = telemetry._events_response(parts.query)
            elif parts.path == "/spans":
                status, ctype, body = telemetry._spans_response(parts.query)
            else:
                status, ctype, body = (
                    404,
                    "application/json",
                    '{"error": "unknown route"}\n',
                )
        except Exception as exc:  # pragma: no cover - defensive
            status, ctype, body = (
                500,
                "application/json",
                json.dumps({"error": repr(exc)}) + "\n",
            )
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


def parse_exposition(text: str) -> Dict[str, Union[int, float]]:
    """Parse exposition text back into ``{sample-key: value}``.

    The inverse of :func:`render_prometheus` for tests and smoke
    checks: comment lines are skipped, each sample line must match
    :data:`SAMPLE_LINE`, and keys are the literal ``name{labels}``
    text.  Raises :class:`ValueError` on a malformed line.
    """
    samples: Dict[str, Union[int, float]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            if line and not line.startswith("# TYPE "):
                raise ValueError(f"unexpected comment line: {line!r}")
            continue
        if not SAMPLE_LINE.match(line):
            raise ValueError(f"malformed exposition line: {line!r}")
        key, _, value = line.rpartition(" ")
        number = float(value)
        samples[key] = int(number) if number.is_integer() else number
    return samples
