"""Per-log health verdicts: the SLO engine over the fetch counters.

The paper's Section 2 observation — log load concentrates on a handful
of logs, so the ecosystem's health hinges on a few operators — is
exactly the condition a per-log health view detects in a running
monitoring loop.  This module folds the per-log counters the feed and
the monitors already keep (entries, errors, retries, successes, and
the consecutive-failure streak, i.e. staleness) into one of three SLO
verdicts per log:

* ``healthy`` — fetches succeed, error ratio within budget, no retry
  churn;
* ``degraded`` — the log answers, but only after retries, or its error
  ratio exceeds the policy budget (it is being served by the retry
  layer, not by the log);
* ``failing`` — the log has not answered for ``failing_after``
  consecutive fetches: its cursor is stale and entries are piling up
  unseen.

Verdicts are pure functions of the counters and the
:class:`SloPolicy` — no clocks, no I/O — so the same counters always
yield the same report, and the report is cheap enough to compute on
every ``/health`` scrape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

#: Verdicts ordered from best to worst; ``overall`` is the worst seen.
VERDICTS = ("healthy", "degraded", "failing")


@dataclass(frozen=True)
class SloPolicy:
    """Thresholds that turn counters into verdicts.

    ``failing_after``: consecutive failed fetches before a log is
    ``failing`` (staleness: its cursor has not advanced for that many
    attempts).  ``max_error_ratio``: errors / (successes + errors)
    budget; above it the log is ``degraded`` even though it currently
    answers.  ``degraded_retries``: total retries at or above which a
    log is ``degraded`` — it recovers, but only through the retry
    layer.
    """

    failing_after: int = 3
    max_error_ratio: float = 0.1
    degraded_retries: int = 1

    def __post_init__(self) -> None:
        if self.failing_after < 1:
            raise ValueError(
                f"failing_after must be >= 1, got {self.failing_after}"
            )
        if not 0.0 <= self.max_error_ratio <= 1.0:
            raise ValueError(
                f"max_error_ratio must be in [0, 1], got {self.max_error_ratio}"
            )
        if self.degraded_retries < 1:
            raise ValueError(
                f"degraded_retries must be >= 1, got {self.degraded_retries}"
            )


DEFAULT_POLICY = SloPolicy()


@dataclass(frozen=True)
class LogHealth:
    """One log's verdict plus the counters it was derived from."""

    log: str
    verdict: str
    entries: int
    successes: int
    errors: int
    retries: int
    consecutive_failures: int
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "entries": self.entries,
            "successes": self.successes,
            "errors": self.errors,
            "retries": self.retries,
            "consecutive_failures": self.consecutive_failures,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class HealthReport:
    """Per-log verdicts plus the roll-up; the ``/health`` payload."""

    logs: Tuple[LogHealth, ...]

    @property
    def overall(self) -> str:
        """The worst per-log verdict (``healthy`` when there are none)."""
        worst = 0
        for health in self.logs:
            worst = max(worst, VERDICTS.index(health.verdict))
        return VERDICTS[worst]

    @property
    def ok(self) -> bool:
        """True unless any log is ``failing``."""
        return self.overall != "failing"

    def verdicts(self) -> Dict[str, str]:
        return {health.log: health.verdict for health in self.logs}

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable report (sorted, JSON-ready)."""
        return {
            "version": 1,
            "overall": self.overall,
            "logs": {
                health.log: health.to_dict()
                for health in sorted(self.logs, key=lambda h: h.log)
            },
        }

    def render(self) -> str:
        """Aligned text table for the ``repro status`` command."""
        rows = sorted(self.logs, key=lambda h: h.log)
        width = max([len("log"), *(len(h.log) for h in rows)], default=3)
        lines = [
            f"Log health — {len(rows)} logs, overall {self.overall}",
            f"  {'log':<{width}}  verdict   entries  errors  retries"
            "  streak  reason",
        ]
        for h in rows:
            lines.append(
                f"  {h.log:<{width}}  {h.verdict:<8}  {h.entries:7d}"
                f"  {h.errors:6d}  {h.retries:7d}"
                f"  {h.consecutive_failures:6d}  {h.reason}"
            )
        return "\n".join(lines)


def evaluate_log(
    log: str,
    stats: Mapping[str, object],
    policy: SloPolicy = DEFAULT_POLICY,
) -> LogHealth:
    """Verdict for one log from its fetch counters.

    ``stats`` keys (all optional, default 0): ``entries``,
    ``successes``, ``errors``, ``retries``, ``consecutive_failures``.
    The feed's :meth:`~repro.ct.feed.CertFeed.log_health` and the
    monitors' ``log_health()`` produce exactly this shape.
    """
    entries = int(stats.get("entries", 0))  # type: ignore[arg-type]
    successes = int(stats.get("successes", 0))  # type: ignore[arg-type]
    errors = int(stats.get("errors", 0))  # type: ignore[arg-type]
    retries = int(stats.get("retries", 0))  # type: ignore[arg-type]
    streak = int(stats.get("consecutive_failures", 0))  # type: ignore[arg-type]
    attempts = successes + errors
    ratio = (errors / attempts) if attempts else (1.0 if errors else 0.0)

    if streak >= policy.failing_after:
        verdict = "failing"
        reason = f"{streak} consecutive failed fetches"
    elif ratio > policy.max_error_ratio:
        verdict = "degraded"
        reason = (
            f"error ratio {ratio:.0%} exceeds {policy.max_error_ratio:.0%}"
        )
    elif retries >= policy.degraded_retries:
        verdict = "degraded"
        reason = f"recovered only after {retries} retries"
    else:
        verdict = "healthy"
        reason = "ok"
    return LogHealth(
        log=log,
        verdict=verdict,
        entries=entries,
        successes=successes,
        errors=errors,
        retries=retries,
        consecutive_failures=streak,
        reason=reason,
    )


def evaluate_stats(
    stats: Mapping[str, Mapping[str, object]],
    policy: Optional[SloPolicy] = None,
) -> HealthReport:
    """Fold a per-log stats mapping into a :class:`HealthReport`."""
    policy = policy if policy is not None else DEFAULT_POLICY
    return HealthReport(
        logs=tuple(
            evaluate_log(log, stats[log], policy) for log in sorted(stats)
        )
    )
