"""Per-log health verdicts: the SLO engine over the fetch counters.

The paper's Section 2 observation — log load concentrates on a handful
of logs, so the ecosystem's health hinges on a few operators — is
exactly the condition a per-log health view detects in a running
monitoring loop.  This module folds the per-log counters the feed and
the monitors already keep (entries, errors, retries, successes, and
the consecutive-failure streak, i.e. staleness) into one of three SLO
verdicts per log:

* ``healthy`` — fetches succeed, error ratio within budget, no retry
  churn;
* ``degraded`` — the log answers, but only after retries, or its error
  ratio exceeds the policy budget (it is being served by the retry
  layer, not by the log);
* ``failing`` — the log has not answered for ``failing_after``
  consecutive fetches: its cursor is stale and entries are piling up
  unseen.

Verdicts are pure functions of the counters and the
:class:`SloPolicy` — no clocks, no I/O — so the same counters always
yield the same report, and the report is cheap enough to compute on
every ``/health`` scrape.

The *write path* has its own failure modes the fetch counters never
see: a sequencer that accepts submissions but merges them late (SCTs
are promises — a slow merge silently stretches the MMD), and a log
server shedding load with 429/410 responses.  :func:`evaluate_write_path`
folds ``sequencer.merge_lag_seconds{log=}`` histograms and the
``log_server.responses{status=429|410}`` counters from a
:class:`~repro.obs.metrics.MetricsSnapshot` into the same three
verdicts, so ``repro status`` surfaces slow merges and overload, not
just fetch errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsSnapshot

#: Verdicts ordered from best to worst; ``overall`` is the worst seen.
VERDICTS = ("healthy", "degraded", "failing")


@dataclass(frozen=True)
class SloPolicy:
    """Thresholds that turn counters into verdicts.

    ``failing_after``: consecutive failed fetches before a log is
    ``failing`` (staleness: its cursor has not advanced for that many
    attempts).  ``max_error_ratio``: errors / (successes + errors)
    budget; above it the log is ``degraded`` even though it currently
    answers.  ``degraded_retries``: total retries at or above which a
    log is ``degraded`` — it recovers, but only through the retry
    layer.

    Write-path thresholds (see :func:`evaluate_write_path`):
    ``degraded_merge_lag_s`` / ``failing_merge_lag_s`` bound the worst
    observed submission-to-merge lag before a sequenced log is
    ``degraded`` / ``failing`` (an SCT is an MMD promise — lag is how
    close the log is to breaking it); ``max_overload_ratio`` /
    ``failing_overload_ratio`` bound the fraction of responses shed as
    429/410 before the serving front end is ``degraded`` / ``failing``.
    """

    failing_after: int = 3
    max_error_ratio: float = 0.1
    degraded_retries: int = 1
    degraded_merge_lag_s: float = 30.0
    failing_merge_lag_s: float = 120.0
    max_overload_ratio: float = 0.05
    failing_overload_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.failing_after < 1:
            raise ValueError(
                f"failing_after must be >= 1, got {self.failing_after}"
            )
        if not 0.0 <= self.max_error_ratio <= 1.0:
            raise ValueError(
                f"max_error_ratio must be in [0, 1], got {self.max_error_ratio}"
            )
        if self.degraded_retries < 1:
            raise ValueError(
                f"degraded_retries must be >= 1, got {self.degraded_retries}"
            )
        if self.degraded_merge_lag_s <= 0.0:
            raise ValueError(
                f"degraded_merge_lag_s must be > 0, got {self.degraded_merge_lag_s}"
            )
        if self.failing_merge_lag_s < self.degraded_merge_lag_s:
            raise ValueError(
                "failing_merge_lag_s must be >= degraded_merge_lag_s, got "
                f"{self.failing_merge_lag_s} < {self.degraded_merge_lag_s}"
            )
        if not 0.0 <= self.max_overload_ratio <= 1.0:
            raise ValueError(
                f"max_overload_ratio must be in [0, 1], got {self.max_overload_ratio}"
            )
        if not self.max_overload_ratio <= self.failing_overload_ratio <= 1.0:
            raise ValueError(
                "failing_overload_ratio must be in [max_overload_ratio, 1], "
                f"got {self.failing_overload_ratio}"
            )


DEFAULT_POLICY = SloPolicy()


@dataclass(frozen=True)
class LogHealth:
    """One log's verdict plus the counters it was derived from."""

    log: str
    verdict: str
    entries: int
    successes: int
    errors: int
    retries: int
    consecutive_failures: int
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "entries": self.entries,
            "successes": self.successes,
            "errors": self.errors,
            "retries": self.retries,
            "consecutive_failures": self.consecutive_failures,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class HealthReport:
    """Per-log verdicts plus the roll-up; the ``/health`` payload."""

    logs: Tuple[LogHealth, ...]

    @property
    def overall(self) -> str:
        """The worst per-log verdict (``healthy`` when there are none)."""
        worst = 0
        for health in self.logs:
            worst = max(worst, VERDICTS.index(health.verdict))
        return VERDICTS[worst]

    @property
    def ok(self) -> bool:
        """True unless any log is ``failing``."""
        return self.overall != "failing"

    def verdicts(self) -> Dict[str, str]:
        return {health.log: health.verdict for health in self.logs}

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable report (sorted, JSON-ready)."""
        return {
            "version": 1,
            "overall": self.overall,
            "logs": {
                health.log: health.to_dict()
                for health in sorted(self.logs, key=lambda h: h.log)
            },
        }

    def render(self) -> str:
        """Aligned text table for the ``repro status`` command."""
        rows = sorted(self.logs, key=lambda h: h.log)
        width = max([len("log"), *(len(h.log) for h in rows)], default=3)
        lines = [
            f"Log health — {len(rows)} logs, overall {self.overall}",
            f"  {'log':<{width}}  verdict   entries  errors  retries"
            "  streak  reason",
        ]
        for h in rows:
            lines.append(
                f"  {h.log:<{width}}  {h.verdict:<8}  {h.entries:7d}"
                f"  {h.errors:6d}  {h.retries:7d}"
                f"  {h.consecutive_failures:6d}  {h.reason}"
            )
        return "\n".join(lines)


def evaluate_log(
    log: str,
    stats: Mapping[str, object],
    policy: SloPolicy = DEFAULT_POLICY,
) -> LogHealth:
    """Verdict for one log from its fetch counters.

    ``stats`` keys (all optional, default 0): ``entries``,
    ``successes``, ``errors``, ``retries``, ``consecutive_failures``.
    The feed's :meth:`~repro.ct.feed.CertFeed.log_health` and the
    monitors' ``log_health()`` produce exactly this shape.
    """
    entries = int(stats.get("entries", 0))  # type: ignore[arg-type]
    successes = int(stats.get("successes", 0))  # type: ignore[arg-type]
    errors = int(stats.get("errors", 0))  # type: ignore[arg-type]
    retries = int(stats.get("retries", 0))  # type: ignore[arg-type]
    streak = int(stats.get("consecutive_failures", 0))  # type: ignore[arg-type]
    attempts = successes + errors
    ratio = (errors / attempts) if attempts else (1.0 if errors else 0.0)

    if streak >= policy.failing_after:
        verdict = "failing"
        reason = f"{streak} consecutive failed fetches"
    elif ratio > policy.max_error_ratio:
        verdict = "degraded"
        reason = (
            f"error ratio {ratio:.0%} exceeds {policy.max_error_ratio:.0%}"
        )
    elif retries >= policy.degraded_retries:
        verdict = "degraded"
        reason = f"recovered only after {retries} retries"
    else:
        verdict = "healthy"
        reason = "ok"
    return LogHealth(
        log=log,
        verdict=verdict,
        entries=entries,
        successes=successes,
        errors=errors,
        retries=retries,
        consecutive_failures=streak,
        reason=reason,
    )


def evaluate_stats(
    stats: Mapping[str, Mapping[str, object]],
    policy: Optional[SloPolicy] = None,
) -> HealthReport:
    """Fold a per-log stats mapping into a :class:`HealthReport`."""
    policy = policy if policy is not None else DEFAULT_POLICY
    return HealthReport(
        logs=tuple(
            evaluate_log(log, stats[log], policy) for log in sorted(stats)
        )
    )


#: Response statuses that count as load shedding on the write path.
OVERLOAD_STATUSES = ("429", "410")


@dataclass(frozen=True)
class WritePathHealth:
    """One write-path verdict row plus the numbers it derives from.

    Sequenced-log rows carry merge counters (``responses`` /
    ``overloaded`` stay 0); the serving front end's row carries the
    response ledger (``merges`` stays 0, ``max_lag_s`` None) —
    ``log_server.responses`` is labelled per endpoint/status, not per
    log, so overload is a per-server aggregate.
    """

    name: str
    verdict: str
    merges: int
    entries_merged: int
    max_lag_s: Optional[float]
    responses: int
    overloaded: int
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "merges": self.merges,
            "entries_merged": self.entries_merged,
            "max_lag_s": self.max_lag_s,
            "responses": self.responses,
            "overloaded": self.overloaded,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class WritePathReport:
    """Write-path verdicts; same roll-up semantics as :class:`HealthReport`."""

    rows: Tuple[WritePathHealth, ...]

    @property
    def overall(self) -> str:
        worst = 0
        for row in self.rows:
            worst = max(worst, VERDICTS.index(row.verdict))
        return VERDICTS[worst]

    @property
    def ok(self) -> bool:
        return self.overall != "failing"

    def verdicts(self) -> Dict[str, str]:
        return {row.name: row.verdict for row in self.rows}

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "overall": self.overall,
            "rows": {
                row.name: row.to_dict()
                for row in sorted(self.rows, key=lambda r: r.name)
            },
        }

    def render(self) -> str:
        rows = sorted(self.rows, key=lambda r: r.name)
        width = max([len("target"), *(len(r.name) for r in rows)], default=6)
        lines = [
            f"Write-path health — {len(rows)} targets, overall {self.overall}",
            f"  {'target':<{width}}  verdict   merges  entries  lag_s"
            "  shed  reason",
        ]
        for r in rows:
            lag = f"{r.max_lag_s:5.1f}" if r.max_lag_s is not None else "    -"
            lines.append(
                f"  {r.name:<{width}}  {r.verdict:<8}  {r.merges:6d}"
                f"  {r.entries_merged:7d}  {lag}"
                f"  {r.overloaded:4d}  {r.reason}"
            )
        return "\n".join(lines)


def evaluate_write_path(
    snapshot: "MetricsSnapshot",
    policy: Optional[SloPolicy] = None,
    server: str = "log_server",
) -> WritePathReport:
    """Write-path verdicts from a metrics snapshot.

    One row per sequenced log (from the
    ``sequencer.merge_lag_seconds{log=}`` histogram and the merge
    counters) judged on worst observed merge lag, plus one row named
    ``server`` for the serving front end, judged on the fraction of
    responses shed as 429/410.  Pure function of the snapshot and the
    policy, like :func:`evaluate_stats`.
    """
    from repro.obs.export import split_metric_key

    policy = policy if policy is not None else DEFAULT_POLICY
    rows = []
    seen_logs = set()
    for key, hist in sorted(snapshot.histograms.items()):
        base, labels = split_metric_key(key)
        if base != "sequencer.merge_lag_seconds" or "log" not in labels:
            continue
        log = labels["log"]
        seen_logs.add(log)
        max_lag = float(hist["max"]) if hist["max"] is not None else 0.0
        merges = int(snapshot.counter(f"sequencer.merges{{log={log}}}"))
        entries = int(snapshot.counter(f"sequencer.entries_merged{{log={log}}}"))
        if max_lag > policy.failing_merge_lag_s:
            verdict = "failing"
            reason = (
                f"merge lag {max_lag:.1f}s exceeds "
                f"{policy.failing_merge_lag_s:.0f}s"
            )
        elif max_lag > policy.degraded_merge_lag_s:
            verdict = "degraded"
            reason = (
                f"merge lag {max_lag:.1f}s exceeds "
                f"{policy.degraded_merge_lag_s:.0f}s"
            )
        else:
            verdict = "healthy"
            reason = "ok"
        rows.append(
            WritePathHealth(
                name=log,
                verdict=verdict,
                merges=merges,
                entries_merged=entries,
                max_lag_s=round(max_lag, 3),
                responses=0,
                overloaded=0,
                reason=reason,
            )
        )

    responses = 0
    overloaded = 0
    for key, value in snapshot.counters.items():
        base, labels = split_metric_key(key)
        if base != "log_server.responses":
            continue
        responses += int(value)
        if labels.get("status") in OVERLOAD_STATUSES:
            overloaded += int(value)
    if responses:
        ratio = overloaded / responses
        if ratio > policy.failing_overload_ratio:
            verdict = "failing"
            reason = (
                f"shed {ratio:.0%} of responses (429/410) exceeds "
                f"{policy.failing_overload_ratio:.0%}"
            )
        elif ratio > policy.max_overload_ratio:
            verdict = "degraded"
            reason = (
                f"shed {ratio:.0%} of responses (429/410) exceeds "
                f"{policy.max_overload_ratio:.0%}"
            )
        else:
            verdict = "healthy"
            reason = "ok"
        rows.append(
            WritePathHealth(
                name=server,
                verdict=verdict,
                merges=0,
                entries_merged=0,
                max_lag_s=None,
                responses=responses,
                overloaded=overloaded,
                reason=reason,
            )
        )
    return WritePathReport(rows=tuple(rows))
