"""A dependency-free metrics registry with deterministic snapshots.

Three instrument kinds, Prometheus-shaped but merge-first:

* **counters** — monotonically increasing numbers; merge by summing;
* **gauges** — last-set values; merge by taking the maximum (the only
  order-independent choice that still answers "how bad did it get");
* **histograms** — fixed-bound buckets plus count/sum/min/max; merge
  bucket-wise (bounds must match).

The mutable :class:`MetricsRegistry` is process-local; a
:class:`MetricsSnapshot` is the frozen, picklable view that crosses
process-pool boundaries.  Snapshot merging is associative and
commutative (integer counters and bucket counts merge exactly; float
sums rely on IEEE addition being commutative, and are exact whenever
the observed values are — see the merge property tests), and JSON
export sorts keys, so any shard plan reduces to the same bytes.

Metric identity is ``name`` plus optional labels, encoded as
``name{key=value,...}`` with label keys sorted — the registry and the
snapshot both key on that string.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Number = Union[int, float]

#: Default histogram bounds for wall-time observations, in seconds.
DEFAULT_TIME_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Bounds for small discrete quantities (retry attempt counts).
COUNT_BOUNDS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 16.0)


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical metric identity: ``name`` or ``name{k=v,...}``, keys sorted."""
    if "{" in name or "}" in name:
        raise ValueError(f"metric name must not contain braces: {name!r}")
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing number."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A last-set value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Fixed-bound buckets plus count/sum/min/max.

    ``bounds`` are upper bucket edges; an observation lands in the
    first bucket whose bound is >= the value, with one implicit
    overflow bucket at the end (``len(counts) == len(bounds) + 1``).
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_TIME_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bounds must be non-empty and sorted, got {bounds}")
        self.bounds = tuple(float(edge) for edge in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


def _merge_histogram_dicts(left: Mapping, right: Mapping) -> Dict:
    if tuple(left["bounds"]) != tuple(right["bounds"]):
        raise ValueError(
            f"cannot merge histograms with bounds {left['bounds']} != "
            f"{right['bounds']}"
        )
    mins = [m for m in (left["min"], right["min"]) if m is not None]
    maxes = [m for m in (left["max"], right["max"]) if m is not None]
    return {
        "bounds": list(left["bounds"]),
        "counts": [a + b for a, b in zip(left["counts"], right["counts"])],
        "count": left["count"] + right["count"],
        "sum": left["sum"] + right["sum"],
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
    }


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, picklable, mergeable view of a registry.

    ``histograms`` values are plain dicts with keys ``bounds``,
    ``counts``, ``count``, ``sum``, ``min``, ``max`` — the JSON schema
    is exactly :meth:`to_dict` (see docs/API.md).
    """

    counters: Dict[str, Number] = field(default_factory=dict)
    gauges: Dict[str, Number] = field(default_factory=dict)
    histograms: Dict[str, Dict] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls()

    # -- accessors -----------------------------------------------------------

    def counter(self, name: str, default: Number = 0) -> Number:
        return self.counters.get(name, default)

    def gauge(self, name: str, default: Number = 0) -> Number:
        return self.gauges.get(name, default)

    def histogram_count(self, name: str) -> int:
        hist = self.histograms.get(name)
        return hist["count"] if hist else 0

    def counter_total(self, prefix: str) -> Number:
        """Sum of every counter whose key starts with ``prefix``."""
        return sum(
            value for key, value in self.counters.items()
            if key.startswith(prefix)
        )

    def labeled(self, name: str) -> Dict[str, Number]:
        """Counters of one metric family, keyed by their label block."""
        opening = name + "{"
        return {
            key[len(opening) - 1 :]: value
            for key, value in self.counters.items()
            if key.startswith(opening)
        }

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, value in other.gauges.items():
            gauges[key] = max(gauges[key], value) if key in gauges else value
        histograms = {key: dict(hist) for key, hist in self.histograms.items()}
        for key, hist in other.histograms.items():
            if key in histograms:
                histograms[key] = _merge_histogram_dicts(histograms[key], hist)
            else:
                histograms[key] = dict(hist)
        return MetricsSnapshot(counters, gauges, histograms)

    @classmethod
    def merge_all(cls, snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        merged = cls.empty()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": 1,
            "counters": {key: self.counters[key] for key in sorted(self.counters)},
            "gauges": {key: self.gauges[key] for key in sorted(self.gauges)},
            "histograms": {
                key: {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                }
                for key, hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={
                key: dict(hist)
                for key, hist in data.get("histograms", {}).items()
            },
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        return cls.from_dict(json.loads(text))

    def write(self, path: Union[str, Path]) -> Path:
        """Write the snapshot as JSON; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path


class MetricsRegistry:
    """Mutable, process-local metric store.

    Instruments are created on first touch and identified by
    ``metric_key(name, labels)``.  Not thread-safe by design: the
    engine folds worker results in its own thread, and workers build
    their own local registries whose snapshots are merged back via
    :meth:`absorb`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Tuple[float, ...] = DEFAULT_TIME_BOUNDS,
        **labels: object,
    ) -> Histogram:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        elif instrument.bounds != tuple(float(edge) for edge in bounds):
            raise ValueError(
                f"histogram {key!r} already registered with bounds "
                f"{instrument.bounds}, got {bounds}"
            )
        return instrument

    # -- convenience recording ----------------------------------------------

    def inc(self, name: str, amount: Number = 1, **labels: object) -> None:
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: Number, **labels: object) -> None:
        self.gauge(name, **labels).set(value)

    def observe(
        self,
        name: str,
        value: Number,
        bounds: Tuple[float, ...] = DEFAULT_TIME_BOUNDS,
        **labels: object,
    ) -> None:
        self.histogram(name, bounds, **labels).observe(value)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={key: c.value for key, c in self._counters.items()},
            gauges={key: g.value for key, g in self._gauges.items()},
            histograms={
                key: {
                    "bounds": list(hist.bounds),
                    "counts": list(hist.counts),
                    "count": hist.count,
                    "sum": hist.sum,
                    "min": hist.min,
                    "max": hist.max,
                }
                for key, hist in self._histograms.items()
            },
        )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot (e.g. from a pool worker) into this registry."""
        for key, value in snapshot.counters.items():
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter()
            counter.inc(value)
        for key, value in snapshot.gauges.items():
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
                gauge.set(value)
            else:
                gauge.set(max(gauge.value, value))
        for key, hist_data in snapshot.histograms.items():
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(
                    tuple(hist_data["bounds"])
                )
            merged = _merge_histogram_dicts(
                {
                    "bounds": list(hist.bounds),
                    "counts": list(hist.counts),
                    "count": hist.count,
                    "sum": hist.sum,
                    "min": hist.min,
                    "max": hist.max,
                },
                hist_data,
            )
            hist.counts = list(merged["counts"])
            hist.count = merged["count"]
            hist.sum = merged["sum"]
            hist.min = merged["min"]
            hist.max = merged["max"]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
