"""Thread-safe wall-time spans with trace context and JSON export.

A :class:`SpanTracer` records nested spans; ``span(name)`` is a
context manager that captures start time (Unix seconds), duration
(monotonic clock), the parent span, and a :class:`TraceContext`
identity (``trace_id``/``span_id``) minted from a seeded
:class:`~repro.obs.tracectx.TraceIdSource`.

The tracer is safe to share across threads — exactly what a
``ThreadingHTTPServer`` middleware needs: each thread keeps its own
stack of open spans (``threading.local``) while the recorded ``spans``
list is guarded by one lock.  Spans therefore appear in *global start
order*, which is no longer tree order; :meth:`SpanTracer.render`
rebuilds the tree from parent links instead.

Cross-process traces stitch together through two hooks:

* ``span(..., parent=TraceContext(...))`` opens a span as the child of
  a *remote* span (e.g. the client span named in an incoming
  ``X-Repro-Traceparent`` header);
* :meth:`SpanTracer.record_remote` files an already-finished span
  shipped home from a worker process.

When an :class:`~repro.obs.events.EventLog` is attached, every span
serializes on close as one ``span`` event, so replaying the JSONL log
rebuilds the identical :class:`~repro.obs.tracectx.TraceStore`.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.tracectx import (
    TraceContext,
    TraceIdSource,
    _jsonify,
    normalize_span_record,
)

if False:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.events import EventLog


@dataclass(slots=True)
class Span:
    """One recorded span; ``duration_s`` is None while still open."""

    name: str
    index: int
    parent: Optional[int]
    depth: int
    started_at: float
    duration_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: Optional[str] = None
    kind: str = "internal"
    links: Tuple[Dict[str, str], ...] = ()

    @property
    def context(self) -> TraceContext:
        """The propagable identity of this span."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def set(self, key: str, value: object) -> None:
        """Attach or update one attribute on the span."""
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "kind": self.kind,
            "links": [dict(link) for link in self.links],
        }

    def to_record(self) -> Dict[str, object]:
        """Canonical cross-process record (see ``SPAN_RECORD_FIELDS``).

        Built directly rather than via :func:`normalize_span_record` —
        this runs on every span close, inside the request path, and the
        fields here are already canonical by construction.  Must stay
        field-for-field identical to what the normalizer would return.
        """
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "kind": self.kind,
            "started_at": round(self.started_at, 6),
            "duration_ms": (
                None
                if self.duration_s is None
                else round(self.duration_s * 1e3, 3)
            ),
            "attrs": _jsonify(self.attrs),
            "links": [dict(link) for link in self.links],
        }


class SpanTracer:
    """Collects nested spans; export with :meth:`to_json` / :meth:`render`.

    ``seed``/``name`` make trace and span ids deterministic (same
    stream for the same pair — give concurrent participants distinct
    names).  ``events`` serializes each finished span as a ``span``
    event into the versioned JSONL log.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        name: str = "tracer",
        events: Optional["EventLog"] = None,
    ) -> None:
        self.spans: List[Span] = []
        self.events = events
        self._ids = TraceIdSource(seed, name)
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_context(self) -> Optional[TraceContext]:
        """Context of the innermost span open on the calling thread."""
        stack = self._stack()
        return stack[-1].context if stack else None

    def span(
        self,
        name: str,
        *,
        kind: str = "internal",
        parent: Optional[TraceContext] = None,
        links: Sequence[TraceContext] = (),
        **attrs: object,
    ) -> "_OpenSpan":
        """Open a span (use as a context manager).

        ``parent`` is an explicit (usually remote) parent context; when
        omitted the innermost open span on this thread is the parent,
        and a span with neither starts a new trace.  ``links`` connect
        this span to N other spans across an async boundary without
        parenting it to any of them.
        """
        return _OpenSpan(self, name, kind, parent, links, attrs)

    def record_remote(self, record: Mapping[str, object]) -> Span:
        """File a finished span shipped home from another process.

        The record is normalized, appended to ``spans``, and serialized
        as a ``span`` event exactly like a locally-closed span, so the
        event log stays the single source of truth for trace assembly.
        """
        canonical = normalize_span_record(record)
        duration_ms = canonical["duration_ms"]
        span = Span(
            name=str(canonical["name"]),
            index=0,
            parent=None,
            depth=0,
            started_at=float(canonical["started_at"]),  # type: ignore[arg-type]
            duration_s=(
                None if duration_ms is None else float(duration_ms) / 1e3  # type: ignore[arg-type]
            ),
            attrs=dict(canonical["attrs"]),  # type: ignore[call-overload]
            trace_id=str(canonical["trace_id"]),
            span_id=str(canonical["span_id"]),
            parent_span_id=canonical["parent_span_id"],  # type: ignore[arg-type]
            kind=str(canonical["kind"]),
            links=tuple(dict(link) for link in canonical["links"]),  # type: ignore[union-attr]
        )
        with self._lock:
            span.index = len(self.spans)
            self.spans.append(span)
        self._emit(span)
        return span

    def _emit(self, span: Span) -> None:
        if self.events is None:
            return
        record = span.to_record()
        kind = record.pop("kind")
        self.events.emit("span", span_kind=kind, **record)

    def snapshot(self) -> List[Span]:
        """A consistent copy of the recorded spans."""
        with self._lock:
            return list(self.spans)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self.snapshot()]

    def to_records(self) -> List[Dict[str, object]]:
        """Canonical picklable records (what workers ship home)."""
        return [span.to_record() for span in self.snapshot()]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dicts(), sort_keys=True, indent=indent)

    def render(self) -> str:
        """Human-readable span tree (durations in ms, attrs inline).

        The tree is rebuilt from parent links — global start order is
        interleaved across threads, so it no longer implies tree order.
        Siblings are stable-sorted by ``started_at`` (index breaks
        ties).
        """
        spans = self.snapshot()
        by_span_id = {span.span_id: span for span in spans if span.span_id}
        children: Dict[int, List[Span]] = {}
        roots: List[Span] = []
        for span in spans:
            parent: Optional[Span] = None
            if span.parent is not None and span.parent < len(spans):
                parent = spans[span.parent]
            elif span.parent_span_id is not None:
                parent = by_span_id.get(span.parent_span_id)
            if parent is None or parent is span:
                roots.append(span)
            else:
                children.setdefault(parent.index, []).append(span)

        def order(items: List[Span]) -> List[Span]:
            return sorted(items, key=lambda s: (s.started_at, s.index))

        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            duration = (
                f"{span.duration_s * 1e3:10.2f} ms"
                if span.duration_s is not None
                else "      open"
            )
            attrs = "".join(
                f" {key}={span.attrs[key]}" for key in sorted(span.attrs)
            )
            lines.append(f"{duration}  {'  ' * depth}{span.name}{attrs}")
            for child in order(children.get(span.index, [])):
                walk(child, depth + 1)

        for root in order(roots):
            walk(root, 0)
        return "\n".join(lines)


class _OpenSpan:
    """Hand-rolled context manager for :meth:`SpanTracer.span`.

    Spans open and close on the request path (every traced HTTP call
    pays for two), so this avoids ``@contextmanager``'s generator
    machinery.  All work happens in ``__enter__``/``__exit__``; the
    ``with`` statement evaluates context expressions just before
    entering them, so nesting order is identical to the generator form.
    """

    __slots__ = ("_tracer", "_name", "_kind", "_parent", "_links",
                 "_attrs", "_span", "_stack", "_started")

    def __init__(self, tracer, name, kind, parent, links, attrs):
        self._tracer = tracer
        self._name = name
        self._kind = kind
        self._parent = parent
        self._links = links
        self._attrs = attrs

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack()
        local_parent = stack[-1] if stack else None
        parent = self._parent
        if parent is not None:
            trace_id = parent.trace_id
            parent_span_id: Optional[str] = parent.span_id
        elif local_parent is not None:
            trace_id = local_parent.trace_id
            parent_span_id = local_parent.span_id
        else:
            trace_id = tracer._ids.trace_id()
            parent_span_id = None
        span = Span(
            name=self._name,
            index=0,
            parent=local_parent.index if local_parent is not None else None,
            depth=len(stack),
            started_at=time.time(),
            # Already a private dict: built from ``**attrs`` in span().
            attrs=self._attrs,
            trace_id=trace_id,
            span_id=tracer._ids.span_id(),
            parent_span_id=parent_span_id,
            kind=self._kind,
            links=tuple(link.to_dict() for link in self._links),
        )
        with tracer._lock:
            span.index = len(tracer.spans)
            tracer.spans.append(span)
        stack.append(span)
        self._span = span
        self._stack = stack
        self._started = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - self._started
        self._stack.pop()
        self._tracer._emit(span)
        return False


def maybe_span(
    tracer: Optional[SpanTracer],
    name: str,
    *,
    kind: str = "internal",
    parent: Optional[TraceContext] = None,
    links: Sequence[TraceContext] = (),
    **attrs: object,
):
    """``tracer.span(...)`` or an inert context when no tracer is attached.

    The null context yields ``None``, so callers guard attribute
    updates with ``if span is not None``.
    """
    if tracer is None:
        return nullcontext()
    return tracer.span(name, kind=kind, parent=parent, links=links, **attrs)
