"""Lightweight wall-time spans with nesting and JSON export.

A :class:`SpanTracer` keeps a stack of open spans; ``span(name)`` is a
context manager that records start time (Unix seconds), duration
(monotonic clock), depth, and the parent span's index.  Spans are
listed in *start* order, so the exported JSON replays the run's call
tree top-down.

The tracer is intentionally single-threaded: the pipeline engine opens
spans only from the coordinating thread (per-shard timing crosses the
pool boundary as metrics, not spans).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Span:
    """One recorded span; ``duration_s`` is None while still open."""

    name: str
    index: int
    parent: Optional[int]
    depth: int
    started_at: float
    duration_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def set(self, key: str, value: object) -> None:
        """Attach or update one attribute on the span."""
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Collects nested spans; export with :meth:`to_json` / :meth:`render`."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[int] = []

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        record = Span(
            name=name,
            index=len(self.spans),
            parent=self._stack[-1] if self._stack else None,
            depth=len(self._stack),
            started_at=time.time(),
            attrs=dict(attrs),
        )
        self.spans.append(record)
        self._stack.append(record.index)
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.duration_s = time.perf_counter() - started
            self._stack.pop()

    def to_dicts(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self.spans]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dicts(), sort_keys=True, indent=indent)

    def render(self) -> str:
        """Human-readable span tree (durations in ms, attrs inline)."""
        lines = []
        for span in self.spans:
            duration = (
                f"{span.duration_s * 1e3:10.2f} ms"
                if span.duration_s is not None
                else "      open"
            )
            attrs = "".join(
                f" {key}={span.attrs[key]}" for key in sorted(span.attrs)
            )
            lines.append(f"{duration}  {'  ' * span.depth}{span.name}{attrs}")
        return "\n".join(lines)


def maybe_span(tracer: Optional[SpanTracer], name: str, **attrs: object):
    """``tracer.span(...)`` or an inert context when no tracer is attached.

    The null context yields ``None``, so callers guard attribute
    updates with ``if span is not None``.
    """
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)
