"""Cross-process trace context: IDs, wire encoding, and trace assembly.

Distributed tracing needs three things the in-process tracer cannot
provide on its own:

* **Identity** — :class:`TraceIdSource` mints trace ids (32 hex chars)
  and span ids (16 hex chars).  Seeded sources are deterministic: the
  same ``(seed, name)`` pair replays the same id sequence, so two runs
  of a seeded storm produce comparable traces.  Distinct participants
  (server, each storm client) must use distinct ``name``s or their id
  streams collide.
* **Propagation** — :class:`TraceContext` is the wire form of "the
  currently open span", carried across the HTTP boundary in the
  :data:`TRACEPARENT_HEADER` header as ``<trace_id>-<span_id>``
  (a traceparent-style encoding without version/flags fields).  The
  server parses the header and opens its span as a *child* of the
  remote client span, stitching the two processes into one trace.
* **Assembly** — :class:`TraceStore` folds span records back together:
  live spans from a tracer, picklable dicts shipped home from worker
  processes, and ``span`` events replayed from a JSONL event log all
  normalize to the same canonical record, grouped by ``trace_id``.
  :func:`certificate_lifecycles` then reads the paper's Sec. 6
  timeline (submit -> SCT -> merge -> inclusion -> first monitor
  detection) out of the assembled store, from spans alone.
"""

from __future__ import annotations

import hashlib
import itertools
import uuid
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

TRACEPARENT_HEADER = "X-Repro-Traceparent"

TRACE_ID_HEX = 32
SPAN_ID_HEX = 16

SPAN_KINDS = ("client", "server", "internal", "producer", "consumer")

_HEX_DIGITS = frozenset("0123456789abcdef")

#: Canonical span-record fields, as serialized into ``span`` events and
#: stored by :class:`TraceStore`.  ``kind`` travels as ``span_kind`` in
#: events because ``kind`` is claimed by the event envelope.
SPAN_RECORD_FIELDS = (
    "name",
    "trace_id",
    "span_id",
    "parent_span_id",
    "kind",
    "started_at",
    "duration_ms",
    "attrs",
    "links",
)


def _is_hex(value: str, width: int) -> bool:
    return len(value) == width and set(value) <= _HEX_DIGITS


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one open span."""

    trace_id: str
    span_id: str

    def to_header(self) -> str:
        return f"{self.trace_id}-{self.span_id}"

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def parse(cls, header: object) -> Optional["TraceContext"]:
        """Parse a ``trace_id-span_id`` header; None when absent/invalid."""
        if not isinstance(header, str) or not header:
            return None
        parts = header.strip().lower().split("-")
        if len(parts) != 2:
            return None
        trace_id, span_id = parts
        if not _is_hex(trace_id, TRACE_ID_HEX) or not _is_hex(span_id, SPAN_ID_HEX):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class TraceIdSource:
    """Thread-safe id mint; deterministic when seeded.

    Ids are sha256 digests of ``"{seed}:{name}:{counter}"`` so every
    ``(seed, name)`` stream is reproducible yet streams with different
    names never collide.  Unseeded sources key off a process-unique
    UUID instead.
    """

    def __init__(self, seed: Optional[int] = None, name: str = "tracer") -> None:
        self.seed = seed
        self.name = name
        if seed is None:
            self._material = f"{uuid.uuid4().hex}:{name}"
        else:
            self._material = f"{seed}:{name}"
        # ``next()`` on an itertools counter is atomic under the GIL,
        # so minting needs no lock on the request path.
        self._counter = itertools.count()

    def _next_hex(self, width: int) -> str:
        counter = next(self._counter)
        digest = hashlib.sha256(f"{self._material}:{counter}".encode("ascii"))
        return digest.hexdigest()[:width]

    def trace_id(self) -> str:
        return self._next_hex(TRACE_ID_HEX)

    def span_id(self) -> str:
        return self._next_hex(SPAN_ID_HEX)


def _jsonify(value: object) -> object:
    """Mirror a JSON encode/decode cycle without serializing.

    Tuples become lists and mapping keys become strings — exactly what
    a round-trip through the JSONL event log does to attribute values —
    at a fraction of the cost, which matters because every span close
    canonicalizes its record on the request path.
    """
    # Concrete-type checks first: attrs are overwhelmingly flat dicts
    # of scalars, and abc/typing isinstance checks are slow.
    if type(value) in (str, int, float, bool, type(None)):
        return value
    if type(value) is dict:
        return {str(key): _jsonify(item) for key, item in value.items()}
    if type(value) in (list, tuple):
        return [_jsonify(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


def normalize_span_record(record: Mapping[str, object]) -> Dict[str, object]:
    """Canonicalize a span dict from any source.

    Accepts live ``Span.to_record()`` dicts, pickled worker copies, and
    replayed ``span`` events (which carry the envelope fields and spell
    the span kind ``span_kind``).  Floats are rounded exactly as the
    event writer rounds them, so a store built from live spans compares
    equal to one rebuilt from the JSONL replay.
    """
    kind = record.get("span_kind", record.get("kind", "internal"))
    duration = record.get("duration_ms")
    if duration is None and record.get("duration_s") is not None:
        duration = float(record["duration_s"]) * 1e3  # type: ignore[arg-type]
    attrs = record.get("attrs") or {}
    links = record.get("links") or ()
    return {
        "name": str(record.get("name", "")),
        "trace_id": str(record.get("trace_id", "")),
        "span_id": str(record.get("span_id", "")),
        "parent_span_id": record.get("parent_span_id"),
        "kind": str(kind),
        "started_at": round(float(record.get("started_at", 0.0)), 6),  # type: ignore[arg-type]
        "duration_ms": None if duration is None else round(float(duration), 3),  # type: ignore[arg-type]
        # Live records (tuples, etc.) must compare equal to the same
        # records replayed from the JSONL event log.
        "attrs": _jsonify(attrs),
        "links": [dict(link) for link in links],  # type: ignore[union-attr]
    }


class TraceStore:
    """Span records grouped by ``trace_id``.

    The store is the merge point for spans produced on both sides of
    the HTTP boundary: feed it a server's tracer, the span dicts each
    storm worker ships home, or a replayed event log — the resulting
    store is identical regardless of the route the spans took.
    """

    def __init__(self) -> None:
        self._traces: Dict[str, List[Dict[str, object]]] = {}

    def add(self, record: Mapping[str, object]) -> Dict[str, object]:
        """Normalize and file one span record; returns the stored copy."""
        span = normalize_span_record(record)
        self._traces.setdefault(str(span["trace_id"]), []).append(span)
        return span

    def add_many(self, records: Iterable[Mapping[str, object]]) -> int:
        count = 0
        for record in records:
            self.add(record)
            count += 1
        return count

    @classmethod
    def from_events(cls, events: Iterable[Mapping[str, object]]) -> "TraceStore":
        """Build a store from replayed event records (``kind == "span"``)."""
        store = cls()
        for event in events:
            if event.get("kind") == "span":
                store.add(event)
        return store

    def trace_ids(self) -> List[str]:
        return sorted(self._traces)

    def spans_for(self, trace_id: str) -> List[Dict[str, object]]:
        """Spans of one trace, stable-sorted by start time then id."""
        spans = self._traces.get(trace_id, [])
        return sorted(spans, key=lambda s: (s["started_at"], s["span_id"]))  # type: ignore[arg-type]

    def all_spans(self) -> List[Dict[str, object]]:
        return [span for trace_id in self.trace_ids() for span in self.spans_for(trace_id)]

    def orphan_spans(self) -> List[Dict[str, object]]:
        """Spans whose parent_span_id resolves to no recorded span.

        A clean cross-process assembly has zero orphans: every server
        span's parent is the client span that sent the header.
        """
        orphans = []
        for trace_id in self.trace_ids():
            spans = self._traces[trace_id]
            known = {span["span_id"] for span in spans}
            for span in spans:
                parent = span["parent_span_id"]
                if parent is not None and parent not in known:
                    orphans.append(span)
        return orphans

    def to_dict(self) -> Dict[str, object]:
        return {
            "traces": {trace_id: self.spans_for(trace_id) for trace_id in self.trace_ids()},
            "spans": len(self),
        }

    def __len__(self) -> int:
        return sum(len(spans) for spans in self._traces.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceStore):
            return NotImplemented
        if self.trace_ids() != other.trace_ids():
            return False
        return all(
            self.spans_for(trace_id) == other.spans_for(trace_id)
            for trace_id in self.trace_ids()
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("TraceStore is mutable and unhashable")


def _span_end(span: Mapping[str, object]) -> Optional[float]:
    started = span.get("started_at")
    duration = span.get("duration_ms")
    if started is None or duration is None:
        return None
    return float(started) + float(duration) / 1e3  # type: ignore[arg-type]


def certificate_lifecycles(store: TraceStore) -> List[Dict[str, object]]:
    """Decompose per-certificate lifecycle timelines from spans alone.

    For every submitted certificate (one ``storm.add_pre_chain`` client
    root span per cert, carrying a ``domain`` attr) the walk links:

    1. the client submit span (submit start),
    2. its ``server.add-pre-chain`` child in the same trace (SCT signed
       when the server span closes),
    3. the ``sequencer.merge`` consumer span whose links name that
       server span (merge/STH published when the merge closes),
    4. the submitter's ``storm.await_inclusion`` span (inclusion
       verified when it closes), matched via the ``client`` attr,
    5. the earliest ``monitor.match`` span whose ``domains`` include
       the certificate's domain (first monitor detection).

    Returns one dict per certificate, sorted by domain; stages that
    never happened are ``None``.
    """
    spans = store.all_spans()
    merges_by_link: Dict[Tuple[str, str], Mapping[str, object]] = {}
    awaits_by_client: Dict[str, Mapping[str, object]] = {}
    matches: List[Mapping[str, object]] = []
    for span in spans:
        if span["name"] == "sequencer.merge":
            for link in span["links"]:  # type: ignore[union-attr]
                merges_by_link[(str(link["trace_id"]), str(link["span_id"]))] = span
        elif span["name"] == "storm.await_inclusion":
            client = str(span["attrs"].get("client", ""))  # type: ignore[union-attr]
            if client:
                awaits_by_client[client] = span
        elif span["name"] == "monitor.match":
            matches.append(span)

    lifecycles: List[Dict[str, object]] = []
    for span in spans:
        if span["name"] != "storm.add_pre_chain":
            continue
        attrs: Mapping[str, object] = span["attrs"]  # type: ignore[assignment]
        domain = str(attrs.get("domain", ""))
        client = str(attrs.get("client", ""))
        trace_id = str(span["trace_id"])
        submitted_at = float(span["started_at"])  # type: ignore[arg-type]

        server_span = next(
            (
                candidate
                for candidate in store.spans_for(trace_id)
                if candidate["name"] == "server.add-pre-chain"
            ),
            None,
        )
        sct_at = _span_end(server_span) if server_span is not None else None

        merge_span = None
        if server_span is not None:
            merge_span = merges_by_link.get((trace_id, str(server_span["span_id"])))
        merged_at = _span_end(merge_span) if merge_span is not None else None

        await_span = awaits_by_client.get(client)
        inclusion_at = _span_end(await_span) if await_span is not None else None

        detected_at = None
        for match in matches:
            domains = match["attrs"].get("domains", ())  # type: ignore[union-attr]
            if domain and domain in domains:  # type: ignore[operator]
                if detected_at is None or float(match["started_at"]) < detected_at:  # type: ignore[arg-type]
                    detected_at = float(match["started_at"])  # type: ignore[arg-type]

        def _delta(stage_at: Optional[float]) -> Optional[float]:
            if stage_at is None:
                return None
            return round((stage_at - submitted_at) * 1e3, 3)

        lifecycles.append(
            {
                "domain": domain,
                "client": client,
                "trace_id": trace_id,
                "submitted_at": round(submitted_at, 6),
                "sct_ms": _delta(sct_at),
                "merge_ms": _delta(merged_at),
                "inclusion_ms": _delta(inclusion_at),
                "detection_ms": _delta(detected_at),
                "complete": None
                not in (sct_at, merged_at, inclusion_at, detected_at),
            }
        )
    lifecycles.sort(key=lambda item: (str(item["domain"]), str(item["trace_id"])))
    return lifecycles


def render_lifecycles(lifecycles: List[Dict[str, object]]) -> str:
    """Tabular view of per-certificate lifecycle timelines."""
    headers = ("certificate", "sct_ms", "merge_ms", "inclusion_ms", "detection_ms")
    rows = [headers]
    for item in lifecycles:
        rows.append(
            (
                str(item["domain"]),
                *(
                    "-" if item[key] is None else f"{item[key]:.1f}"  # type: ignore[str-format]
                    for key in ("sct_ms", "merge_ms", "inclusion_ms", "detection_ms")
                ),
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(headers))]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(
                cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col])
                for col, cell in enumerate(row)
            )
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    complete = sum(1 for item in lifecycles if item["complete"])
    lines.append(f"{complete}/{len(lifecycles)} certificates completed the full chain")
    return "\n".join(lines)
