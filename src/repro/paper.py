"""One-call reproduction of the paper's full evaluation.

:func:`reproduce_paper` runs every experiment — Sections 2 through 6 —
at configurable scales and returns a :class:`PaperResults` whose
``render()`` emits all tables and figures in paper order.  This is the
programmatic equivalent of running the whole benchmark harness, meant
for scripted use::

    from repro.paper import reproduce_paper

    results = reproduce_paper(seed=7)
    print(results.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, List, Optional

from repro.core import (
    adoption,
    enumeration,
    evolution,
    leakage,
    misissuance,
    serversupport,
)
from repro.core import report as rpt
from repro.core.honeypot import CtHoneypotExperiment, HoneypotResult, render_table4
from repro.core.phishdetect import PhishingDetector, PhishingReport
from repro.core.threatintel import build_threat_report, render_threat_report


@dataclass
class PaperScales:
    """Simulated:real ratios per experiment (benchmark defaults)."""

    evolution: float = 1.0 / 200_000.0
    traffic_connections_per_day: int = 400
    hosting: float = 1.0 / 20_000.0
    domains: float = 1.0 / 2_000.0
    enumeration_domains: float = 1.0 / 10_000.0
    phishing: float = 1.0 / 100.0


@dataclass
class PaperResults:
    """Everything the reproduction produced, in paper order."""

    scales: PaperScales
    evolution_growth: Dict = field(default_factory=dict)
    evolution_weight: float = 1.0
    evolution_shares: Dict = field(default_factory=dict)
    evolution_matrix: object = None
    evolution_load: object = None
    traffic_stats: object = None
    scan_stats: object = None
    misissuance_report: object = None
    leakage_stats: object = None
    enumeration_report: object = None
    phishing_report: PhishingReport = None  # type: ignore[assignment]
    honeypot: HoneypotResult = None  # type: ignore[assignment]

    def sections(self) -> List[str]:
        """All artifact renderings, ordered as in the paper."""
        out = [
            rpt.render_figure1a(self.evolution_growth, self.evolution_weight),
            rpt.render_figure1b(self.evolution_shares),
            rpt.render_figure1c(self.evolution_matrix),
            rpt.render_log_load(self.evolution_load),
            rpt.render_figure2(self.traffic_stats),
            rpt.render_table1(adoption.table1(self.traffic_stats)),
            rpt.render_section32(self.traffic_stats),
            rpt.render_section33(self.scan_stats, weight=1.0 / self.scales.hosting),
            rpt.render_section34(self.misissuance_report),
            rpt.render_table2(self.leakage_stats, weight=1.0 / self.scales.domains),
            rpt.render_section43(
                self.enumeration_report, self.scales.enumeration_domains
            ),
            rpt.render_table3(self.phishing_report, weight=1.0 / self.scales.phishing),
            render_table4(self.honeypot.table4()),
            render_threat_report(build_threat_report(self.honeypot)),
        ]
        return out

    def render(self) -> str:
        divider = "\n\n" + "=" * 78 + "\n\n"
        return divider.join(self.sections())


def reproduce_paper(
    *,
    seed: int = 7,
    scales: Optional[PaperScales] = None,
    progress: bool = False,
) -> PaperResults:
    """Run every experiment of the paper and collect the results."""
    scales = scales or PaperScales()
    results = PaperResults(scales=scales)

    def note(message: str) -> None:
        if progress:
            print(f"[reproduce] {message}")

    # Section 2 — CT log evolution.
    note("Section 2: CA logging 2015-2018 ...")
    from repro.workloads.ca_profiles import CaLoggingWorkload

    run = CaLoggingWorkload(
        scale=scales.evolution, end=date(2018, 4, 30), seed=seed
    ).run()
    results.evolution_growth = evolution.cumulative_precert_growth(run.logs)
    results.evolution_weight = run.weight
    results.evolution_shares = evolution.relative_daily_rates(run.logs)
    results.evolution_matrix = evolution.ca_log_matrix(run.logs, "2018-04")
    results.evolution_load = evolution.log_load_report(run.logs, "2018-04")

    # Section 3.1-3.2 — passive traffic.
    note("Section 3.2: uplink capture ...")
    from repro.bro.analyzer import BroSctAnalyzer
    from repro.workloads.traffic import UplinkTrafficWorkload

    traffic = UplinkTrafficWorkload(
        connections_per_day=scales.traffic_connections_per_day, seed=seed
    )
    analyzer = BroSctAnalyzer(traffic.logs)
    results.traffic_stats = adoption.aggregate(
        analyzer.analyze_stream(traffic.stream())
    )

    # Section 3.3 — active scan.
    note("Section 3.3: active scan ...")
    from repro.tls.scanner import TlsScanner
    from repro.util.timeutil import utc_datetime
    from repro.workloads.hosting import HostingWorkload

    population = HostingWorkload(scale=scales.hosting, seed=seed).build()
    scanner = TlsScanner(population.resolver(), population.endpoints)
    records = scanner.scan(population.domains, utc_datetime(2018, 5, 18))
    names = {log.log_id: log.name for log in population.logs.values()}
    results.scan_stats = serversupport.analyze_scan(records, names)

    # Section 3.4 — misissuance audit.
    note("Section 3.4: invalid embedded SCTs ...")
    from repro.workloads.incidents import MisissuanceWorkload

    incidents = MisissuanceWorkload(healthy_certificates=200, seed=seed).build()
    results.misissuance_report = misissuance.audit_certificates(
        (pair.final_certificate for pair in incidents.pairs),
        incidents.issuer_key_hashes(),
        incidents.logs,
    )

    # Section 4 — leakage + enumeration.
    note("Section 4: DNS leakage and enumeration ...")
    from repro.workloads.domains import DomainWorkload

    corpus = DomainWorkload(scale=scales.domains, seed=seed).build()
    results.leakage_stats = leakage.analyze_names(corpus.ct_fqdns, corpus.psl)
    enum_corpus = DomainWorkload(
        scale=scales.enumeration_domains, seed=seed + 1
    ).build()
    enum_stats = leakage.analyze_names(enum_corpus.ct_fqdns, enum_corpus.psl)
    _, _, results.enumeration_report = enumeration.run_enumeration_experiment(
        enum_stats, enum_corpus, seed=seed
    )

    # Section 5 — phishing.
    note("Section 5: phishing detection ...")
    from repro.workloads.phishing import PhishingWorkload

    phishing = PhishingWorkload(scale=scales.phishing, seed=seed).build()
    results.phishing_report = PhishingDetector().scan(phishing.names)

    # Section 6 — the honeypot.
    note("Section 6: CT honeypot ...")
    results.honeypot = CtHoneypotExperiment(seed=seed).run()
    note("done.")
    return results
