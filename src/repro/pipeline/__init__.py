"""Sharded map-reduce execution for the heavy analysis passes.

The paper's corpora are huge — hundreds of millions of log entries,
26.5G connections, 206M domains — and every analysis in this
reproduction decomposes the same way related CT monitors do: process
each log (or index range, or stream chunk) independently and merge the
typed partial results into one view.  This package provides

* :mod:`repro.pipeline.shard` — shard planning (per-log and
  per-index-range);
* :mod:`repro.pipeline.merge` — typed mergers (counter, top-k,
  set-union) for partial results;
* :mod:`repro.pipeline.engine` — :class:`PipelineEngine`, the
  ``concurrent.futures`` fan-out with a serial fallback and
  checkpoint support;
* :mod:`repro.pipeline.passes` — the paper passes (Fig. 1a-1c log
  evolution, Fig. 2 / Table 1 SCT traffic, Table 2 / Section 4.3 FQDN
  leakage) driven through the fused :mod:`repro.dataset` layer —
  :func:`~repro.pipeline.passes.evolution_sections` computes all of
  §2 in one corpus traversal per shard;
* :mod:`repro.pipeline.harvest` — checkpointed analysis of stored
  harvests (see :mod:`repro.ct.storage`), plus the fused
  :func:`~repro.pipeline.harvest.analyze_harvest_sections`.

Parallel and serial paths produce bit-identical outputs: partials are
always merged in shard order, and the serial implementations are the
single-shard special case of the same map/reduce decomposition.
"""

from repro.pipeline.engine import MapResult, PipelineEngine
from repro.pipeline.harvest import (
    analyze_harvest_names,
    analyze_harvest_sections,
    analyze_log_names,
)
from repro.pipeline.merge import (
    CounterMerge,
    SetUnionMerge,
    TopKMerge,
    merge_counter2d,
)
from repro.pipeline.passes import (
    evolution_growth,
    evolution_matrix,
    evolution_rates,
    evolution_sections,
    leakage_names,
    traffic_adoption,
)
from repro.pipeline.shard import (
    DEFAULT_SHARD_SIZE,
    Shard,
    plan_log_shards,
    plan_sequence_shards,
)

__all__ = [
    "MapResult",
    "PipelineEngine",
    "CounterMerge",
    "TopKMerge",
    "SetUnionMerge",
    "merge_counter2d",
    "Shard",
    "DEFAULT_SHARD_SIZE",
    "plan_log_shards",
    "plan_sequence_shards",
    "evolution_growth",
    "evolution_rates",
    "evolution_matrix",
    "evolution_sections",
    "traffic_adoption",
    "leakage_names",
    "analyze_harvest_names",
    "analyze_harvest_sections",
    "analyze_log_names",
]
