"""The sharded map-reduce executor.

:class:`PipelineEngine` fans shard tasks out to a
``concurrent.futures`` pool (process or thread) and hands the partial
results, **in shard order**, to a reduce function.  ``workers=1`` is
the serial fallback: the same map/reduce code runs inline, so the
parallel path can be validated against it bit-for-bit.

A checkpoint object (see :class:`repro.ct.storage.HarvestCheckpoint`)
may be attached to a run; completed shards are then skipped on resume
and newly finished shards are recorded as they complete.
"""

from __future__ import annotations

from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Any, Callable, List, Optional, Sequence

from repro.pipeline.shard import DEFAULT_SHARD_SIZE

MapFn = Callable[[Any], Any]
ReduceFn = Callable[[List[Any]], Any]
Codec = Callable[[Any], Any]

EXECUTORS = ("process", "thread", "serial")


class PipelineEngine:
    """Fan shard tasks out to a worker pool and merge in shard order.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` (the default) runs everything inline —
        the opt-in serial fallback that parallel results are asserted
        against.
    shard_size:
        Target entries per shard; passes use it when planning shards.
    executor:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.
        Process pools need picklable map functions (module-level) and
        task payloads; thread pools trade that constraint for the GIL.
    """

    def __init__(
        self,
        workers: int = 1,
        shard_size: int = DEFAULT_SHARD_SIZE,
        executor: str = "process",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.workers = workers
        self.shard_size = shard_size
        self.executor = executor

    @property
    def serial(self) -> bool:
        """True when map tasks run inline rather than on a pool."""
        return self.workers == 1 or self.executor == "serial"

    # -- execution -----------------------------------------------------------

    def map(
        self,
        map_fn: MapFn,
        tasks: Sequence[Any],
        *,
        checkpoint: Optional[Any] = None,
        encode: Optional[Codec] = None,
        decode: Optional[Codec] = None,
    ) -> List[Any]:
        """Run ``map_fn`` over every task; return partials in task order.

        ``checkpoint`` must offer ``completed() -> Dict[int, payload]``
        and ``record(index, payload)``; ``encode``/``decode`` convert
        partials to/from the checkpoint's serializable payloads.
        """
        results: List[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        if checkpoint is not None:
            done = checkpoint.completed()
            for index, payload in done.items():
                if 0 <= index < len(results):
                    results[index] = decode(payload) if decode else payload
            pending = [i for i in pending if i not in done]
        if self.serial or len(pending) <= 1:
            for index in pending:
                results[index] = map_fn(tasks[index])
                self._record(checkpoint, encode, index, results[index])
            return results
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        )
        pool: Executor
        with pool_cls(max_workers=min(self.workers, len(pending))) as pool:
            futures = {pool.submit(map_fn, tasks[i]): i for i in pending}
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                self._record(checkpoint, encode, index, results[index])
        return results

    def map_reduce(
        self,
        map_fn: MapFn,
        tasks: Sequence[Any],
        reduce_fn: ReduceFn,
        *,
        checkpoint: Optional[Any] = None,
        encode: Optional[Codec] = None,
        decode: Optional[Codec] = None,
    ) -> Any:
        """``reduce_fn`` over the ordered partials of :meth:`map`."""
        return reduce_fn(
            self.map(
                map_fn,
                tasks,
                checkpoint=checkpoint,
                encode=encode,
                decode=decode,
            )
        )

    @staticmethod
    def _record(
        checkpoint: Optional[Any], encode: Optional[Codec], index: int, result: Any
    ) -> None:
        if checkpoint is not None:
            checkpoint.record(index, encode(result) if encode else result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PipelineEngine(workers={self.workers}, "
            f"shard_size={self.shard_size}, executor={self.executor!r})"
        )
