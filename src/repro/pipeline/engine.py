"""The sharded map-reduce executor.

:class:`PipelineEngine` fans shard tasks out to a
``concurrent.futures`` pool (process or thread) and hands the partial
results, **in shard order**, to a reduce function.  ``workers=1`` is
the serial fallback: the same map/reduce code runs inline, so the
parallel path can be validated against it bit-for-bit.

A checkpoint object (see :class:`repro.ct.storage.HarvestCheckpoint`)
may be attached to a run; completed shards are then skipped on resume
and newly finished shards are recorded as they complete.

Fault tolerance (see :mod:`repro.resilience`): an attached
:class:`~repro.resilience.RetryPolicy` re-runs failed shards inside
the worker with backoff; when retries are exhausted the engine either
raises :class:`~repro.resilience.ShardFailedError` naming the shard
(``on_error="raise"``, the default) or drops the shard and reports it
in a :class:`~repro.resilience.DegradationReport`
(``on_error="degrade"``).
"""

from __future__ import annotations

import inspect
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.trace import SpanTracer, maybe_span
from repro.pipeline.shard import DEFAULT_SHARD_SIZE
from repro.resilience.degrade import (
    DegradationReport,
    DegradedResult,
    FailedShard,
    ShardFailedError,
)
from repro.resilience.retry import RetryExhaustedError, RetryPolicy

MapFn = Callable[[Any], Any]
ReduceFn = Callable[[List[Any]], Any]
Codec = Callable[[Any], Any]

EXECUTORS = ("process", "thread", "serial")
ON_ERROR_MODES = ("raise", "degrade")


class MapResult(List[Any]):
    """A :meth:`PipelineEngine.map` result: a plain list of partials
    in task order, plus the run's :class:`DegradationReport` when the
    engine ran with ``on_error="degrade"`` (``None`` otherwise)."""

    degradation: Optional[DegradationReport] = None


def _run_task(
    map_fn: MapFn,
    task: Any,
    retry: Optional[RetryPolicy],
    instrument: bool = False,
    submitted_at: Optional[float] = None,
) -> Tuple[Any, int, Optional[MetricsSnapshot]]:
    """Execute one shard (module-level so process pools can pickle it).

    Returns ``(result, attempts, metrics)``; the retry loop runs
    *inside* the worker, so transient faults never cross the pool
    boundary.  With ``instrument=True`` the worker times itself into a
    local registry and ships the snapshot back with the result —
    that's how per-shard metrics survive a process pool (``metrics``
    is ``None`` otherwise).  ``submitted_at`` is a ``time.time()``
    stamp taken at submission; the gap to the worker picking the task
    up is the shard's queue wait.
    """
    if not instrument:
        if retry is None:
            return map_fn(task), 1, None
        outcome = retry.run(lambda: map_fn(task))
        return outcome.value, outcome.attempts, None
    queue_wait = (
        max(0.0, time.time() - submitted_at) if submitted_at is not None else 0.0
    )
    started = time.perf_counter()
    if retry is None:
        value, attempts = map_fn(task), 1
    else:
        outcome = retry.run(lambda: map_fn(task))
        value, attempts = outcome.value, outcome.attempts
    local = MetricsRegistry()
    local.observe("pipeline.shard_seconds", time.perf_counter() - started)
    local.observe("pipeline.shard_queue_wait_seconds", queue_wait)
    local.inc("pipeline.shard_attempts", attempts)
    if attempts > 1:
        local.inc("pipeline.shard_retries", attempts - 1)
    return value, attempts, local.snapshot()


def _failure_attempts(exc: BaseException) -> int:
    return exc.attempts if isinstance(exc, RetryExhaustedError) else 1


def _failure_cause(exc: BaseException) -> BaseException:
    if isinstance(exc, RetryExhaustedError) and exc.__cause__ is not None:
        return exc.__cause__
    return exc


class PipelineEngine:
    """Fan shard tasks out to a worker pool and merge in shard order.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` (the default) runs everything inline —
        the opt-in serial fallback that parallel results are asserted
        against.
    shard_size:
        Target entries per shard; passes use it when planning shards.
    executor:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.
        Process pools need picklable map functions (module-level) and
        task payloads; thread pools trade that constraint for the GIL.
    retry:
        Optional :class:`RetryPolicy` applied per shard, inside the
        worker.  With a process pool the policy (and its RNG) must be
        picklable; the stock policy is.
    on_error:
        ``"raise"`` (default) aborts the run with a
        :class:`ShardFailedError` naming the failing shard;
        ``"degrade"`` completes the run without the failed shards and
        attaches a :class:`DegradationReport`.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  When attached,
        every run records per-shard duration/queue-wait histograms,
        attempt/retry counters, failed/degraded shard counters (with a
        per-shard ``shard=`` label on failures), and checkpoint resume
        hit rate.  Workers time themselves into local registries whose
        snapshots merge back deterministically, so serial and parallel
        runs report identical counter totals.
    tracer:
        Optional :class:`repro.obs.SpanTracer`; ``map_reduce`` then
        records nested ``pipeline.map_reduce`` / ``pipeline.map`` /
        ``pipeline.reduce`` spans (coordinator-side wall time).
    events:
        Optional :class:`repro.obs.EventLog`; every run then emits
        live lifecycle events from the coordinator thread —
        ``map_start`` / ``map_finish``, one ``shard_finish`` or
        ``shard_failed`` per shard (with attempt counts),
        ``checkpoint_resume``, and ``degraded`` — mirroring the
        metric counters event-for-increment (see
        :func:`repro.obs.replay_counters`).
    """

    def __init__(
        self,
        workers: int = 1,
        shard_size: int = DEFAULT_SHARD_SIZE,
        executor: str = "process",
        retry: Optional[RetryPolicy] = None,
        on_error: str = "raise",
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        self.workers = workers
        self.shard_size = shard_size
        self.executor = executor
        self.retry = retry
        self.on_error = on_error
        self.metrics = metrics
        self.tracer = tracer
        self.events = events

    @property
    def serial(self) -> bool:
        """True when map tasks run inline rather than on a pool."""
        return self.workers == 1 or self.executor == "serial"

    @property
    def degrading(self) -> bool:
        """True when exhausted shards degrade instead of raising."""
        return self.on_error == "degrade"

    # -- execution -----------------------------------------------------------

    def map(
        self,
        map_fn: MapFn,
        tasks: Sequence[Any],
        *,
        checkpoint: Optional[Any] = None,
        encode: Optional[Codec] = None,
        decode: Optional[Codec] = None,
    ) -> MapResult:
        """Run ``map_fn`` over every task; return partials in task order.

        ``checkpoint`` must offer ``completed() -> Dict[int, payload]``
        and ``record(index, payload)``; ``encode``/``decode`` convert
        partials to/from the checkpoint's serializable payloads.

        A shard that exhausts its retries raises
        :class:`ShardFailedError` (``on_error="raise"``) or is left as
        ``None`` in the result with a :class:`DegradationReport`
        attached (``on_error="degrade"``); either way the shards that
        did finish are already checkpointed, and the report (if any)
        is appended to the checkpoint as well.
        """
        instrument = self.metrics is not None
        results = MapResult([None] * len(tasks))
        pending = list(range(len(tasks)))
        if checkpoint is not None:
            done = checkpoint.completed()
            resumed = 0
            for index, payload in done.items():
                if 0 <= index < len(results):
                    results[index] = decode(payload) if decode else payload
                    resumed += 1
            pending = [i for i in pending if i not in done]
            if instrument and tasks:
                self.metrics.inc("pipeline.shards_resumed", resumed)
                self.metrics.set_gauge(
                    "pipeline.checkpoint_hit_rate", resumed / len(tasks)
                )
            if self.events is not None and tasks:
                self.events.emit(
                    "checkpoint_resume",
                    shards=resumed,
                    hit_rate=resumed / len(tasks),
                )
        if instrument:
            self.metrics.inc("pipeline.shards_planned", len(tasks))
        if self.events is not None:
            self.events.emit(
                "map_start", shards=len(tasks), pending=len(pending)
            )
        failures: List[FailedShard] = []
        retries = 0

        def finish(
            index: int, value: Any, attempts: int, snap: Optional[MetricsSnapshot]
        ) -> None:
            nonlocal retries
            retries += attempts - 1
            results[index] = value
            self._record(checkpoint, encode, index, value, attempts)
            if instrument:
                if snap is not None:
                    self.metrics.absorb(snap)
                self.metrics.inc("pipeline.shards_completed")
                if attempts > 1:
                    self.metrics.inc("pipeline.retries_total", attempts - 1)
            if self.events is not None:
                self.events.emit(
                    "shard_finish", shard=index, attempts=attempts
                )

        def fail(index: int, exc: BaseException) -> None:
            nonlocal retries
            attempts = _failure_attempts(exc)
            cause = _failure_cause(exc)
            if instrument:
                self.metrics.inc("pipeline.shards_failed")
                self.metrics.inc("pipeline.shard_failures", shard=index)
                self.metrics.inc("pipeline.failed_shard_attempts", attempts)
                if attempts > 1:
                    self.metrics.inc("pipeline.retries_total", attempts - 1)
            if self.events is not None:
                self.events.emit(
                    "shard_failed",
                    shard=index,
                    attempts=attempts,
                    error=repr(cause),
                )
            if not self.degrading:
                raise ShardFailedError(index, attempts, cause) from exc
            retries += attempts - 1
            failures.append(FailedShard(index, repr(cause), attempts))

        with maybe_span(
            self.tracer, "pipeline.map", shards=len(tasks), pending=len(pending)
        ):
            if self.serial or len(pending) <= 1:
                for index in pending:
                    try:
                        value, attempts, snap = _run_task(
                            map_fn,
                            tasks[index],
                            self.retry,
                            instrument,
                            time.time() if instrument else None,
                        )
                    except Exception as exc:
                        fail(index, exc)
                        continue
                    finish(index, value, attempts, snap)
            else:
                pool_cls = (
                    ProcessPoolExecutor
                    if self.executor == "process"
                    else ThreadPoolExecutor
                )
                pool: Executor
                with pool_cls(
                    max_workers=min(self.workers, len(pending))
                ) as pool:
                    futures = {
                        pool.submit(
                            _run_task,
                            map_fn,
                            tasks[i],
                            self.retry,
                            instrument,
                            time.time() if instrument else None,
                        ): i
                        for i in pending
                    }
                    for future in as_completed(futures):
                        index = futures[future]
                        try:
                            value, attempts, snap = future.result()
                        except Exception as exc:
                            fail(index, exc)
                            continue
                        finish(index, value, attempts, snap)

        if self.degrading:
            report = DegradationReport(
                total_shards=len(tasks),
                failed=tuple(sorted(failures, key=lambda f: f.index)),
                retries=retries,
            )
            results.degradation = report
            if self.events is not None and report.failed:
                self.events.emit(
                    "degraded",
                    failed=list(report.failed_indices),
                    retries=report.retries,
                )
            if (
                checkpoint is not None
                and report.failed
                and hasattr(checkpoint, "record_degraded")
            ):
                checkpoint.record_degraded(report)
        if self.events is not None:
            self.events.emit(
                "map_finish",
                shards=len(tasks),
                completed=sum(1 for r in results if r is not None),
                failed=len(failures),
            )
        return results

    def map_reduce(
        self,
        map_fn: MapFn,
        tasks: Sequence[Any],
        reduce_fn: ReduceFn,
        *,
        checkpoint: Optional[Any] = None,
        encode: Optional[Codec] = None,
        decode: Optional[Codec] = None,
    ) -> Any:
        """``reduce_fn`` over the ordered partials of :meth:`map`.

        With ``on_error="degrade"`` the reduce runs over the shards
        that survived (still in shard order) and the return value is a
        :class:`DegradedResult` pairing it with the run's report.
        """
        with maybe_span(self.tracer, "pipeline.map_reduce", shards=len(tasks)):
            partials = self.map(
                map_fn,
                tasks,
                checkpoint=checkpoint,
                encode=encode,
                decode=decode,
            )
            report = partials.degradation
            if report is None:
                return self._reduce(reduce_fn, list(partials))
            lost = set(report.failed_indices)
            value = self._reduce(
                reduce_fn,
                [partial for i, partial in enumerate(partials) if i not in lost],
            )
            return DegradedResult(value=value, report=report)

    def _reduce(self, reduce_fn: ReduceFn, partials: List[Any]) -> Any:
        """Run the reduce under the optional span/histogram."""
        with maybe_span(self.tracer, "pipeline.reduce", partials=len(partials)):
            if self.metrics is None:
                return reduce_fn(partials)
            started = time.perf_counter()
            value = reduce_fn(partials)
            self.metrics.observe(
                "pipeline.reduce_seconds", time.perf_counter() - started
            )
            return value

    @staticmethod
    def _record(
        checkpoint: Optional[Any],
        encode: Optional[Codec],
        index: int,
        result: Any,
        attempts: int = 1,
    ) -> None:
        if checkpoint is None:
            return
        payload = encode(result) if encode else result
        if attempts > 1 and _accepts_attempts(checkpoint.record):
            checkpoint.record(index, payload, attempts=attempts)
        else:
            checkpoint.record(index, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PipelineEngine(workers={self.workers}, "
            f"shard_size={self.shard_size}, executor={self.executor!r}, "
            f"retry={self.retry!r}, on_error={self.on_error!r})"
        )


def _accepts_attempts(record_fn: Callable[..., Any]) -> bool:
    """Whether a checkpoint's ``record`` takes the ``attempts`` kwarg."""
    try:
        return "attempts" in inspect.signature(record_fn).parameters
    except (TypeError, ValueError):  # builtins, C callables
        return False
