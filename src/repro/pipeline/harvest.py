"""Checkpointed, sharded analysis of stored harvests.

A harvest file (see :mod:`repro.ct.storage`) is an append-ordered
entry sequence with a verified tree head — exactly the shape the
shard planner wants.  Workers read their own index range straight
from disk, so task payloads stay tiny and a resumed run re-reads only
the shards that were not checkpointed yet.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core import leakage
from repro.ct.storage import (
    HarvestCheckpoint,
    certificate_from_dict,
    iter_stored_entries,
    read_tree_head,
)
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.shard import plan_sequence_shards

#: Pass name recorded in checkpoints; changing the pass semantics
#: must change this name so stale checkpoints are rejected.
FQDN_LEAKAGE_PASS = "fqdn-leakage-v1"


def harvest_entry_names(
    path: Union[str, Path], start: int, stop: int
) -> List[str]:
    """CN/SAN DNS names of the stored entries with indices [start, stop)."""
    names: List[str] = []
    index = 0
    for record in iter_stored_entries(path):
        if record.get("type") != "entry":
            continue
        if index >= stop:
            break
        if index >= start:
            names.extend(
                certificate_from_dict(record["certificate"]).dns_names()
            )
        index += 1
    return names


def _harvest_leakage_task(
    payload: Tuple[str, int, int]
) -> leakage.LeakagePartial:
    path, start, stop = payload
    return leakage.map_name_chunk(harvest_entry_names(path, start, stop))


def analyze_harvest_names(
    path: Union[str, Path],
    engine: Optional[PipelineEngine] = None,
    *,
    checkpoint: bool = False,
) -> leakage.LeakageStats:
    """Run the Section 4.2 FQDN pass over one stored harvest.

    Shards the harvest by entry index range, extracts CN/SAN names per
    shard, and reduces in shard order — identical to loading the
    harvest and running ``leakage.analyze_certificates`` serially.

    With ``checkpoint=True`` a ``<harvest>.checkpoint`` sidecar records
    every finished shard; re-running after an interruption resumes
    from the last completed shard.  A corrupted or mismatched sidecar
    raises :class:`repro.ct.storage.LogStorageError`.
    """
    engine = engine or PipelineEngine()
    trailer = read_tree_head(path)
    shards = plan_sequence_shards(
        trailer["tree_size"], engine.shard_size, source=str(path)
    )
    tasks = [(str(path), shard.start, shard.stop) for shard in shards]
    store: Optional[HarvestCheckpoint] = None
    if checkpoint:
        store = HarvestCheckpoint.for_harvest(
            path, FQDN_LEAKAGE_PASS, engine.shard_size
        )
    return engine.map_reduce(
        _harvest_leakage_task,
        tasks,
        leakage.reduce_name_partials,
        checkpoint=store,
        encode=leakage.encode_leakage_partial,
        decode=leakage.decode_leakage_partial,
    )
