"""Checkpointed, sharded analysis of stored harvests.

A harvest file (see :mod:`repro.ct.storage`) is an append-ordered
entry sequence with a verified tree head — exactly the shape the
shard planner wants.  Workers read their own index range straight
from disk, so task payloads stay tiny and a resumed run re-reads only
the shards that were not checkpointed yet.
"""

from __future__ import annotations

from datetime import date
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core import leakage
from repro.ct.storage import (
    HarvestCheckpoint,
    certificate_from_dict,
    iter_stored_entries,
    read_tree_head,
)
from repro.dataset import CertCorpus, analyze_corpus, sections_graph
from repro.dnscore.psl import PublicSuffixList
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.shard import plan_sequence_shards

#: Pass name recorded in checkpoints; changing the pass semantics
#: must change this name so stale checkpoints are rejected.
FQDN_LEAKAGE_PASS = "fqdn-leakage-v1"


def harvest_entry_names(
    path: Union[str, Path], start: int, stop: int
) -> List[str]:
    """CN/SAN DNS names of the stored entries with indices [start, stop)."""
    names: List[str] = []
    index = 0
    for record in iter_stored_entries(path):
        if record.get("type") != "entry":
            continue
        if index >= stop:
            break
        if index >= start:
            names.extend(
                certificate_from_dict(record["certificate"]).dns_names()
            )
        index += 1
    return names


def _harvest_leakage_task(
    payload: Tuple[str, int, int]
) -> leakage.LeakagePartial:
    path, start, stop = payload
    return leakage.map_name_chunk(harvest_entry_names(path, start, stop))


def analyze_harvest_names(
    path: Union[str, Path],
    engine: Optional[PipelineEngine] = None,
    *,
    checkpoint: bool = False,
) -> leakage.LeakageStats:
    """Run the Section 4.2 FQDN pass over one stored harvest.

    Shards the harvest by entry index range, extracts CN/SAN names per
    shard, and reduces in shard order — identical to loading the
    harvest and running ``leakage.analyze_certificates`` serially.

    With ``checkpoint=True`` a ``<harvest>.checkpoint`` sidecar records
    every finished shard; re-running after an interruption resumes
    from the last completed shard.  A corrupted or mismatched sidecar
    raises :class:`repro.ct.storage.LogStorageError`.

    When the engine runs with ``on_error="degrade"``, the return value
    is a :class:`repro.resilience.DegradedResult` pairing the stats
    (over the shards that survived) with the run's
    :class:`~repro.resilience.DegradationReport`; the report is also
    appended to the checkpoint sidecar, so a resume re-runs exactly
    the lost shards.
    """
    engine = engine or PipelineEngine()
    trailer = read_tree_head(path)
    shards = plan_sequence_shards(
        trailer["tree_size"], engine.shard_size, source=str(path)
    )
    tasks = [(str(path), shard.start, shard.stop) for shard in shards]
    store: Optional[HarvestCheckpoint] = None
    if checkpoint:
        store = HarvestCheckpoint.for_harvest(
            path, FQDN_LEAKAGE_PASS, engine.shard_size, metrics=engine.metrics
        )
    return engine.map_reduce(
        _harvest_leakage_task,
        tasks,
        leakage.reduce_name_partials,
        checkpoint=store,
        encode=leakage.encode_leakage_partial,
        decode=leakage.decode_leakage_partial,
    )


def analyze_harvest_sections(
    path: Union[str, Path],
    engine: Optional[PipelineEngine] = None,
    *,
    month: str = "2018-04",
    start: Optional[date] = None,
    end: Optional[date] = None,
    psl: Optional[PublicSuffixList] = None,
) -> Dict[str, Any]:
    """Every corpus-backed section pass over one stored harvest, fused.

    Streams the harvest once into a columnar
    :class:`repro.dataset.CertCorpus` (truncated trailing lines are
    skipped with a ``storage.corrupt_lines_skipped`` count, duplicate
    entry indices with ``dataset.duplicate_entries_skipped``), then runs
    the §2 growth/rates/matrix passes *and* the §4 leakage pass in one
    traversal per shard.  Returns ``{"growth": ..., "rates": ...,
    "matrix": ..., "leakage": ...}``; with ``on_error="degrade"`` the
    mapping is wrapped in a :class:`repro.resilience.DegradedResult`.

    Unlike :func:`analyze_harvest_names` this holds the corpus columns
    in memory (no checkpoint sidecar), buying fused single-traversal
    analysis in exchange — use the checkpointed pass for harvests too
    large to materialize.
    """
    engine = engine or PipelineEngine()
    corpus = CertCorpus.from_stored(path, metrics=engine.metrics)
    graph = sections_graph(month, start=start, end=end, psl=psl)
    return analyze_corpus(corpus, graph, engine)


def log_entry_names(log: Any, start: int, stop: int) -> List[str]:
    """CN/SAN DNS names of a live log's entries with indices [start, stop).

    Fetched through the public ``get_entries`` read API (never private
    state), so fault-injection wrappers like
    :class:`repro.resilience.FlakyLog` see every access.
    """
    if stop <= start:
        return []
    return [
        name
        for entry in log.get_entries(start, stop - 1)
        for name in entry.certificate.dns_names()
    ]


def _log_leakage_task(payload: Tuple[Any, int, int]) -> leakage.LeakagePartial:
    log, start, stop = payload
    return leakage.map_name_chunk(log_entry_names(log, start, stop))


def analyze_log_names(
    log: Any,
    engine: Optional[PipelineEngine] = None,
) -> leakage.LeakageStats:
    """Run the Section 4.2 FQDN pass over one *live* log.

    Every shard fetches its index range through ``get_entries`` — the
    same surface real monitors harvest through — which makes this the
    natural pass to run against a :class:`repro.resilience.FlakyLog`
    under a retry policy: transiently failing fetches are retried
    inside the worker, and the output stays bit-identical to the
    fault-free serial run.

    ``log`` may be a :class:`repro.ct.CTLog` or any wrapper exposing
    ``name``, ``size``, and ``get_entries``; with a process-pool
    engine it must be picklable.  With ``on_error="degrade"`` the
    return value is a :class:`repro.resilience.DegradedResult`.
    """
    engine = engine or PipelineEngine()
    shards = plan_sequence_shards(log.size, engine.shard_size, source=log.name)
    tasks = [(log, shard.start, shard.stop) for shard in shards]
    return engine.map_reduce(
        _log_leakage_task, tasks, leakage.reduce_name_partials
    )
