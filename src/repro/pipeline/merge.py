"""Typed mergers for partial analysis results.

Every parallel pass reduces to one of three merge shapes:

* **counter merge** — sum integer counts per key (Fig. 1c cells,
  Table 1 per-log observations, Table 2 label counts);
* **top-k merge** — counter merge followed by ranking (Table 2's top
  20 labels); partials must be *complete* per-shard counts, not
  per-shard top-k lists, for the merged ranking to be exact;
* **set-union merge** — deduplicated unions (unique FQDNs, unique
  precertificate identities).

All mergers preserve first-seen key order across partials, merged in
partial order.  ``Counter.most_common`` and :class:`Counter2D` break
count ties by insertion order, so preserving it is what makes a
parallel merge reproduce the serial ranking bit-for-bit.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, List, Mapping, Set, Tuple

from repro.util.stats import Counter2D

Key = Hashable


class CounterMerge:
    """Sum integer-count mappings, preserving first-seen key order."""

    def merge(self, partials: Iterable[Mapping[Key, int]]) -> Dict[Key, int]:
        merged: Dict[Key, int] = {}
        for partial in partials:
            for key, count in partial.items():
                merged[key] = merged.get(key, 0) + count
        return merged


class TopKMerge:
    """Merge complete per-shard counts and rank the top ``k`` keys.

    Ties rank in first-seen order across partials — the same order a
    serial ``Counter`` built from the concatenated stream would use.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def merge(
        self, partials: Iterable[Mapping[Key, int]]
    ) -> List[Tuple[Key, int]]:
        merged = Counter()
        for partial in partials:
            for key, count in partial.items():
                merged[key] += count
        return merged.most_common(self.k)


class SetUnionMerge:
    """Union partial key sets (deduplicated identities)."""

    def merge(self, partials: Iterable[Iterable[Key]]) -> Set[Key]:
        merged: Set[Key] = set()
        for partial in partials:
            merged.update(partial)
        return merged


def merge_counter2d(partials: Iterable[Counter2D]) -> Counter2D:
    """Merge sparse 2-D counters cell-wise, preserving insertion order."""
    merged = Counter2D()
    for partial in partials:
        merged.update(partial)
    return merged
