"""The paper's analysis passes, driven through the fused dataset layer.

Each driver materializes the shared columnar
:class:`repro.dataset.CertCorpus` (or a plain record list for stream
passes), registers the section's extractor/merger pair on a
:class:`repro.dataset.PassGraph`, and hands zero-copy corpus views to
the engine.  Serial (``--workers 1``) is the single-shard special case
of the same fold/reduce decomposition, so ``--workers N`` is asserted
(by the test suite) to match it bit-for-bit.

:func:`evolution_sections` is the fused entry point: Figures 1a-1c
from **one traversal per shard** instead of three separate scans.

Task payloads carry plain data only — graphs built from module-level
functions, materialized view slices, the analyzer's plain
:class:`~repro.bro.analyzer.AnalyzerConfig` — never live analyzers or
log objects.
"""

from __future__ import annotations

import sys
from datetime import date
from typing import Any, Dict, Iterable, Optional

from repro.bro.analyzer import BroSctAnalyzer
from repro.core import adoption, leakage
from repro.ct.log import CTLog
from repro.dataset import (
    CertCorpus,
    PassGraph,
    adoption_extractor,
    adoption_pass,
    analyze_corpus,
    analyze_records,
    growth_extractor,
    growth_pass,
    leakage_name_extractor,
    leakage_pass,
    matrix_extractor,
    matrix_pass,
    rates_pass,
    section2_graph,
)
from repro.dnscore.psl import PublicSuffixList
from repro.pipeline.engine import PipelineEngine
from repro.resilience.degrade import DegradedResult
from repro.tls.connection import TlsConnection
from repro.util.stats import Counter2D

# -- shared plumbing --------------------------------------------------------


def _unwrap(result: Any) -> Any:
    """Unwrap a degrading engine's result so passes keep their shape.

    These passes render straight into the paper's tables/figures, so a
    :class:`DegradedResult` collapses to its value; a non-empty report
    (shards actually lost) is surfaced on stderr rather than silently
    discarded.  Callers that need the report programmatically use
    ``engine.map`` or the harvest entry points instead.
    """
    if isinstance(result, DegradedResult):
        if not result.report.ok:
            print(f"[degraded] {result.report.summary()}", file=sys.stderr)
        return result.value
    return result


def _logs_corpus(logs: Dict[str, CTLog], engine: PipelineEngine) -> CertCorpus:
    # §2 passes never read the names column; skip it to keep the
    # corpus (and every pickled view slice) small.
    return CertCorpus.from_logs(logs, with_names=False, metrics=engine.metrics)


# -- pass drivers ----------------------------------------------------------


def evolution_growth(
    logs: Dict[str, CTLog],
    engine: Optional[PipelineEngine] = None,
    *,
    start: Optional[date] = None,
    end: Optional[date] = None,
):
    """Figure 1a via the engine (== ``evolution.cumulative_precert_growth``)."""
    engine = engine or PipelineEngine()
    graph = PassGraph().add_extractor(growth_extractor())
    graph.add_pass(growth_pass(start, end))
    result = analyze_corpus(_logs_corpus(logs, engine), graph, engine)
    return _unwrap(result)["growth"]


def evolution_rates(
    logs: Dict[str, CTLog], engine: Optional[PipelineEngine] = None
):
    """Figure 1b via the engine (== ``evolution.relative_daily_rates``)."""
    engine = engine or PipelineEngine()
    graph = PassGraph().add_extractor(growth_extractor())
    graph.add_pass(rates_pass())
    result = analyze_corpus(_logs_corpus(logs, engine), graph, engine)
    return _unwrap(result)["rates"]


def evolution_matrix(
    logs: Dict[str, CTLog],
    month: str = "2018-04",
    engine: Optional[PipelineEngine] = None,
) -> Counter2D:
    """Figure 1c via the engine (== ``evolution.ca_log_matrix``)."""
    engine = engine or PipelineEngine()
    graph = PassGraph().add_extractor(matrix_extractor(month))
    graph.add_pass(matrix_pass())
    result = analyze_corpus(_logs_corpus(logs, engine), graph, engine)
    return _unwrap(result)["matrix"]


def evolution_sections(
    logs: Dict[str, CTLog],
    month: str = "2018-04",
    engine: Optional[PipelineEngine] = None,
    *,
    start: Optional[date] = None,
    end: Optional[date] = None,
) -> Dict[str, Any]:
    """Figures 1a-1c fused: one corpus traversal per shard for all three.

    Returns ``{"growth": ..., "rates": ..., "matrix": ...}``, each value
    bit-identical to the corresponding single-pass driver — the
    ``growth`` and ``rates`` passes even share one extractor state, so
    the fused run folds strictly less work than the three scans it
    replaces (``dataset.separate_traversals_avoided`` counts the
    difference when the engine carries a metrics registry).
    """
    engine = engine or PipelineEngine()
    graph = section2_graph(month, start=start, end=end)
    result = analyze_corpus(_logs_corpus(logs, engine), graph, engine)
    return _unwrap(result)


def traffic_adoption(
    connections: Iterable[TlsConnection],
    analyzer: BroSctAnalyzer,
    engine: Optional[PipelineEngine] = None,
) -> adoption.AdoptionStats:
    """Figure 2 / Table 1 accounting via the engine.

    Equals ``adoption.aggregate(analyzer.analyze_stream(connections))``:
    every aggregate field is a weighted sum, so chunk aggregates merge
    exactly.  Shard payloads carry the analyzer's plain
    :class:`~repro.bro.analyzer.AnalyzerConfig`; each worker rebuilds
    its own analyzer (fresh identity caches) from it.
    """
    engine = engine or PipelineEngine()
    if engine.serial:
        # Keep the stream lazy and the caller's warm analyzer caches.
        return adoption.aggregate(analyzer.analyze_stream(connections))
    materialized = list(connections)
    graph = PassGraph().add_extractor(adoption_extractor(analyzer.config()))
    graph.add_pass(adoption_pass())
    result = analyze_records(
        materialized, graph, engine, source="connections"
    )
    return _unwrap(result)["adoption"]


def leakage_names(
    names: Iterable[str],
    engine: Optional[PipelineEngine] = None,
    psl: Optional[PublicSuffixList] = None,
) -> leakage.LeakageStats:
    """Table 2 / Section 4.3 FQDN pass via the engine.

    Equals ``leakage.analyze_names(names, psl)``; cross-shard FQDN
    deduplication happens in the in-order reduce.
    """
    engine = engine or PipelineEngine()
    if engine.serial:
        # Keep the name stream lazy (the §4 corpus is 206M domains).
        return leakage.analyze_names(names, psl)
    materialized = list(names)
    graph = PassGraph().add_extractor(leakage_name_extractor(psl))
    graph.add_pass(leakage_pass())
    result = analyze_records(materialized, graph, engine, source="fqdns")
    return _unwrap(result)["leakage"]
