"""The three hottest analysis passes, ported onto the engine.

Each pass shards its corpus, maps the shards on the engine's pool,
and reduces the typed partials in shard order.  With a serial engine
(``workers=1``) the pass calls the original single-threaded code
directly, so ``--workers 1`` is always the exact reference output and
``--workers N`` is asserted (by the test suite) to match it
bit-for-bit.

Map functions live at module level so process pools can pickle them;
task payloads carry plain data (record tuples, name chunks,
connection chunks) rather than whole log objects.
"""

from __future__ import annotations

import sys
from datetime import date
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.bro.analyzer import BroSctAnalyzer
from repro.core import adoption, evolution, leakage
from repro.ct.log import CTLog
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.shard import plan_sequence_shards
from repro.resilience.degrade import DegradedResult
from repro.tls.connection import TlsConnection
from repro.util.stats import Counter2D

# -- module-level map tasks (picklable for process pools) ------------------


def _growth_task(records: List[evolution.PrecertRecord]):
    return evolution.growth_map(records)


def _matrix_task(payload: Tuple[List[evolution.MatrixRecord], str]) -> Counter2D:
    records, month = payload
    return evolution.matrix_map(records, month)


def _leakage_task(
    payload: Tuple[List[str], Optional[PublicSuffixList]]
) -> leakage.LeakagePartial:
    names, psl = payload
    return leakage.map_name_chunk(names, psl)


def _traffic_task(
    payload: Tuple[BroSctAnalyzer, List[TlsConnection]]
) -> adoption.AdoptionStats:
    analyzer, connections = payload
    return adoption.aggregate(
        analyzer.analyze(connection) for connection in connections
    )


# -- pass drivers ----------------------------------------------------------


def _sequence_tasks(items: List, engine: PipelineEngine, source: str):
    shards = plan_sequence_shards(len(items), engine.shard_size, source)
    return [shard.slice(items) for shard in shards]


def _unwrap(result: Any) -> Any:
    """Unwrap a degrading engine's result so passes keep their shape.

    These passes render straight into the paper's tables/figures, so a
    :class:`DegradedResult` collapses to its value; a non-empty report
    (shards actually lost) is surfaced on stderr rather than silently
    discarded.  Callers that need the report programmatically use
    ``engine.map`` or the harvest entry points instead.
    """
    if isinstance(result, DegradedResult):
        if not result.report.ok:
            print(f"[degraded] {result.report.summary()}", file=sys.stderr)
        return result.value
    return result


def evolution_growth(
    logs: Dict[str, CTLog],
    engine: Optional[PipelineEngine] = None,
    *,
    start: Optional[date] = None,
    end: Optional[date] = None,
):
    """Figure 1a via the engine (== ``evolution.cumulative_precert_growth``)."""
    engine = engine or PipelineEngine()
    if engine.serial:
        return evolution.cumulative_precert_growth(logs, start=start, end=end)
    records = list(evolution.growth_records(logs.values()))
    tasks = _sequence_tasks(records, engine, "precerts")
    return _unwrap(
        engine.map_reduce(
            _growth_task,
            tasks,
            lambda partials: evolution.growth_reduce(
                partials, start=start, end=end
            ),
        )
    )


def evolution_rates(
    logs: Dict[str, CTLog], engine: Optional[PipelineEngine] = None
):
    """Figure 1b via the engine (== ``evolution.relative_daily_rates``)."""
    engine = engine or PipelineEngine()
    if engine.serial:
        return evolution.relative_daily_rates(logs)
    records = list(evolution.growth_records(logs.values()))
    tasks = _sequence_tasks(records, engine, "precerts")
    return _unwrap(
        engine.map_reduce(_growth_task, tasks, evolution.rates_reduce)
    )


def evolution_matrix(
    logs: Dict[str, CTLog],
    month: str = "2018-04",
    engine: Optional[PipelineEngine] = None,
) -> Counter2D:
    """Figure 1c via the engine (== ``evolution.ca_log_matrix``)."""
    engine = engine or PipelineEngine()
    if engine.serial:
        return evolution.ca_log_matrix(logs, month)
    records = list(evolution.matrix_records(logs.values()))
    tasks = [
        (chunk, month) for chunk in _sequence_tasks(records, engine, "entries")
    ]
    return _unwrap(
        engine.map_reduce(_matrix_task, tasks, evolution.matrix_reduce)
    )


def traffic_adoption(
    connections: Iterable[TlsConnection],
    analyzer: BroSctAnalyzer,
    engine: Optional[PipelineEngine] = None,
) -> adoption.AdoptionStats:
    """Figure 2 / Table 1 accounting via the engine.

    Equals ``adoption.aggregate(analyzer.analyze_stream(connections))``:
    every aggregate field is a weighted sum, so chunk aggregates merge
    exactly.
    """
    engine = engine or PipelineEngine()
    if engine.serial:
        return adoption.aggregate(analyzer.analyze_stream(connections))
    materialized = list(connections)
    tasks = [
        (analyzer, chunk)
        for chunk in _sequence_tasks(materialized, engine, "connections")
    ]
    return _unwrap(
        engine.map_reduce(_traffic_task, tasks, adoption.merge_stats)
    )


def leakage_names(
    names: Iterable[str],
    engine: Optional[PipelineEngine] = None,
    psl: Optional[PublicSuffixList] = None,
) -> leakage.LeakageStats:
    """Table 2 / Section 4.3 FQDN pass via the engine.

    Equals ``leakage.analyze_names(names, psl)``; cross-shard FQDN
    deduplication happens in the in-order reduce.
    """
    engine = engine or PipelineEngine()
    if engine.serial:
        return leakage.analyze_names(names, psl)
    materialized = list(names)
    # Workers rebuild the shared default PSL locally instead of
    # unpickling a copy per task.
    payload_psl = None if psl is None or psl is default_psl() else psl
    tasks = [
        (chunk, payload_psl)
        for chunk in _sequence_tasks(materialized, engine, "fqdns")
    ]
    return _unwrap(
        engine.map_reduce(_leakage_task, tasks, leakage.reduce_name_partials)
    )
