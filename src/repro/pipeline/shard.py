"""Shard planning: split corpora into independently processable chunks.

Two decompositions cover every pass in the reproduction:

* **per-log + per-index-range** — a CT harvest is naturally a set of
  logs, each an append-only entry sequence; a shard is a half-open
  index range ``[start, stop)`` within one log;
* **per-sequence-range** — flat corpora (a connection stream, the CT
  FQDN list) shard into contiguous ranges of one anonymous source.

Shards carry a dense global ``index`` that fixes the merge order:
reducing partials in index order reproduces the serial iteration
order exactly, which is what keeps parallel outputs bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, TypeVar

#: Default entries per shard; small enough to balance a pool, large
#: enough that per-task overhead stays negligible.
DEFAULT_SHARD_SIZE = 4096

T = TypeVar("T")


@dataclass(frozen=True)
class Shard:
    """A half-open range ``[start, stop)`` of one source's items."""

    index: int
    source: str
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid shard range [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def slice(self, items: Sequence[T]) -> Sequence[T]:
        """The shard's items out of its source sequence."""
        return items[self.start : self.stop]


def _check_shard_size(shard_size: int) -> None:
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")


def plan_sequence_shards(
    total: int, shard_size: int = DEFAULT_SHARD_SIZE, source: str = "stream"
) -> List[Shard]:
    """Split ``total`` items of one source into index-range shards."""
    _check_shard_size(shard_size)
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    return [
        Shard(
            index=index,
            source=source,
            start=start,
            stop=min(start + shard_size, total),
        )
        for index, start in enumerate(range(0, total, shard_size))
    ]


def plan_log_shards(
    log_sizes: Mapping[str, int], shard_size: int = DEFAULT_SHARD_SIZE
) -> List[Shard]:
    """Per-log, per-index-range shards over a harvest.

    ``log_sizes`` maps log name -> entry count, in the order the
    serial pass iterates the logs; the resulting shard indices follow
    that order so an in-order merge replays the serial scan.
    """
    _check_shard_size(shard_size)
    shards: List[Shard] = []
    for name, size in log_sizes.items():
        if size < 0:
            raise ValueError(f"log {name!r} has negative size {size}")
        for start in range(0, size, shard_size):
            shards.append(
                Shard(
                    index=len(shards),
                    source=name,
                    start=start,
                    stop=min(start + shard_size, size),
                )
            )
    return shards
