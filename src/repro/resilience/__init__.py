"""Fault tolerance for the harvesting and analysis layers.

The paper's measurements assume every trusted log can be tailed
continuously, yet Section 2's Nimbus incident shows real logs time
out, rate-limit, and get overloaded.  Production CT consumers
(CertStream-style feeds, monitor collectors) all wrap log I/O in
retry-with-backoff and degrade gracefully when a log stays down; this
package provides the shared machinery:

* :mod:`repro.resilience.retry` — :class:`RetryPolicy`: bounded
  attempts, exponential backoff with deterministic seeded jitter, and
  retryable-vs-terminal exception classification
  (:class:`repro.ct.log.LogOverloadedError` is retryable,
  :class:`repro.ct.log.LogDisqualifiedError` is terminal);
* :mod:`repro.resilience.faults` — :class:`FlakyLog`, a deterministic
  seeded fault-injection wrapper around :class:`repro.ct.CTLog` for
  tests and benchmarks;
* :mod:`repro.resilience.degrade` — the typed degradation surface
  (:class:`DegradationReport`, :class:`FailedShard`,
  :class:`ShardFailedError`, :class:`DegradedResult`) used by
  :class:`repro.pipeline.PipelineEngine` when ``on_error="degrade"``.
"""

from repro.resilience.degrade import (
    DegradationReport,
    DegradedResult,
    FailedShard,
    ShardFailedError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FlakyLog,
    LogTimeoutError,
    TransientLogError,
)
from repro.resilience.retry import (
    DEFAULT_RETRYABLE,
    DEFAULT_TERMINAL,
    RetryExhaustedError,
    RetryOutcome,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_RETRYABLE",
    "DEFAULT_TERMINAL",
    "DegradationReport",
    "DegradedResult",
    "FAULT_KINDS",
    "FailedShard",
    "FlakyLog",
    "LogTimeoutError",
    "RetryExhaustedError",
    "RetryOutcome",
    "RetryPolicy",
    "ShardFailedError",
    "TransientLogError",
]
