"""Typed degradation surface for sharded runs.

When :class:`repro.pipeline.PipelineEngine` runs with
``on_error="degrade"``, shards whose retries are exhausted are dropped
from the result instead of aborting the run; the
:class:`DegradationReport` enumerates exactly which shards failed (and
how hard the run tried) so a checkpointed resume can re-run just
those.  With the default ``on_error="raise"`` the engine raises
:class:`ShardFailedError`, which — unlike a bare worker exception out
of ``as_completed`` — names the failing shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple


class ShardFailedError(RuntimeError):
    """One shard failed for good; carries the shard's index."""

    def __init__(self, index: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"shard {index} failed after {attempts} attempt(s): {cause!r}"
        )
        self.index = index
        self.attempts = attempts

    def __reduce__(self):
        # Custom __init__ signature: spell out reconstruction so the
        # error survives pickling (e.g. across a process pool).
        return (_rebuild_shard_error, (self.args, self.index, self.attempts))


def _rebuild_shard_error(args, index, attempts):
    error = ShardFailedError.__new__(ShardFailedError)
    RuntimeError.__init__(error, *args)
    error.index = index
    error.attempts = attempts
    return error


@dataclass(frozen=True)
class FailedShard:
    """One shard that exhausted its retries in a degraded run."""

    index: int
    error: str
    attempts: int


@dataclass(frozen=True)
class DegradationReport:
    """What a degraded run lost, and what it cost to try.

    ``retries`` counts extra attempts across *successful* shards too,
    so a fully recovered run reports ``failed == ()`` but a nonzero
    retry bill.
    """

    total_shards: int
    failed: Tuple[FailedShard, ...] = ()
    retries: int = 0

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def failed_indices(self) -> List[int]:
        return [shard.index for shard in self.failed]

    @property
    def completed_shards(self) -> int:
        return self.total_shards - len(self.failed)

    def summary(self) -> str:
        if self.ok:
            return (
                f"all {self.total_shards} shard(s) completed "
                f"({self.retries} retr{'y' if self.retries == 1 else 'ies'})"
            )
        return (
            f"{self.completed_shards}/{self.total_shards} shard(s) completed; "
            f"failed: {self.failed_indices} ({self.retries} "
            f"retr{'y' if self.retries == 1 else 'ies'})"
        )


@dataclass(frozen=True)
class DegradedResult:
    """A reduce output paired with its degradation report.

    Returned by ``map_reduce`` (and the harvest entry points) whenever
    the engine runs with ``on_error="degrade"`` — even when nothing
    failed, so callers opting into degradation get a stable shape.
    """

    value: Any
    report: DegradationReport
