"""Deterministic fault injection for CT log I/O.

:class:`FlakyLog` wraps a :class:`repro.ct.log.CTLog` and injects
seeded timeouts, overloads, and transient failures into its public
API, so the retry and degradation paths can be exercised
deterministically in tests and benchmarks.  Faults are *transient* by
construction: a bounded number of consecutive failures per call site
(``max_consecutive``) guarantees that a caller retrying at least
``max_consecutive`` times always gets through — which is what makes
the fault-injected parity runs bit-identical to fault-free ones.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.ct.log import CTLog, LogOverloadedError
from repro.util.rng import SeededRng


class TransientLogError(RuntimeError):
    """A momentary log failure (connection reset, 5xx, ...)."""


class LogTimeoutError(TransientLogError):
    """A log request that timed out."""


#: Injectable fault kinds and the exceptions they raise.
FAULT_KINDS: Tuple[str, ...] = ("timeout", "overload", "transient")

_FAULT_EXCEPTIONS = {
    "timeout": LogTimeoutError,
    "overload": LogOverloadedError,
    "transient": TransientLogError,
}

#: The methods FlakyLog can wrap; everything else delegates untouched.
FAULTABLE_METHODS: Tuple[str, ...] = (
    "get_entries",
    "get_sth",
    "get_proof_by_hash",
    "get_consistency",
    "add_chain",
    "add_pre_chain",
)


class FlakyLog:
    """A fault-injecting proxy around one :class:`CTLog`.

    Parameters
    ----------
    log:
        The wrapped log; every attribute not intercepted here
        (``size``, ``entries``, ``name``, ...) delegates to it.
    rng:
        Seeded stream the injection draws from; the same seed yields
        the same fault sequence for the same call sequence.
    failure_rate:
        Per-call probability of injecting a fault into a wrapped
        method.
    max_consecutive:
        Upper bound on consecutive failures *per call site* (method +
        arguments).  After that many failures in a row the next
        attempt is forced to succeed, so ``retries >= max_consecutive``
        always recovers.  ``None`` removes the bound.
    kinds:
        Fault kinds to draw from (see :data:`FAULT_KINDS`).
    methods:
        Which wrapped methods inject faults (default: the read API
        monitors poll).
    fail_when:
        Optional predicate ``(method, args) -> bool``; call sites it
        matches fail *permanently* (every attempt), bypassing
        ``failure_rate`` and ``max_consecutive`` — the deterministic
        way to make specific shards exhaust their retries.
    """

    def __init__(
        self,
        log: CTLog,
        rng: SeededRng,
        *,
        failure_rate: float = 0.2,
        max_consecutive: Optional[int] = 2,
        kinds: Sequence[str] = FAULT_KINDS,
        methods: Sequence[str] = ("get_entries", "get_sth"),
        fail_when: Optional[Callable[[str, Tuple[Any, ...]], bool]] = None,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1], got {failure_rate}")
        unknown = [kind for kind in kinds if kind not in _FAULT_EXCEPTIONS]
        if unknown:
            raise ValueError(f"unknown fault kinds {unknown}; choose from {FAULT_KINDS}")
        bad = [method for method in methods if method not in FAULTABLE_METHODS]
        if bad:
            raise ValueError(
                f"cannot inject into {bad}; faultable methods: {FAULTABLE_METHODS}"
            )
        self._log = log
        self._rng = rng.fork(f"flaky:{log.name}")
        self.failure_rate = failure_rate
        self.max_consecutive = max_consecutive
        self.kinds = tuple(kinds)
        self.methods = tuple(methods)
        self.fail_when = fail_when
        self.calls = 0
        self.faults_injected = 0
        self.injected_by_kind: Dict[str, int] = {kind: 0 for kind in self.kinds}
        self.injected_by_method: Dict[str, int] = {}
        self._consecutive: Dict[Tuple[Any, ...], int] = {}

    # -- injection core ------------------------------------------------------

    def _site_key(self, method: str, args: Tuple[Any, ...]) -> Tuple[Any, ...]:
        try:
            hash(args)
        except TypeError:
            return (method, repr(args))
        return (method,) + args

    def _raise_fault(self, kind: str, method: str, args: Tuple[Any, ...]) -> None:
        self.faults_injected += 1
        self.injected_by_kind[kind] = self.injected_by_kind.get(kind, 0) + 1
        self.injected_by_method[method] = self.injected_by_method.get(method, 0) + 1
        raise _FAULT_EXCEPTIONS[kind](
            f"injected {kind} fault in {self._log.name}.{method}{args!r}"
        )

    def _maybe_fail(self, method: str, args: Tuple[Any, ...]) -> None:
        if method not in self.methods:
            return
        self.calls += 1
        if self.fail_when is not None and self.fail_when(method, args):
            self._raise_fault("transient", method, args)
        if self.failure_rate <= 0.0:
            return
        site = self._site_key(method, args)
        streak = self._consecutive.get(site, 0)
        if self.max_consecutive is not None and streak >= self.max_consecutive:
            self._consecutive[site] = 0
            return
        if not self._rng.chance(self.failure_rate):
            self._consecutive[site] = 0
            return
        self._consecutive[site] = streak + 1
        kind = self.kinds[0] if len(self.kinds) == 1 else self._rng.choice(self.kinds)
        self._raise_fault(kind, method, args)

    # -- wrapped CTLog API ---------------------------------------------------

    def get_entries(self, start: int, end: int):
        self._maybe_fail("get_entries", (start, end))
        return self._log.get_entries(start, end)

    def get_sth(self, now):
        self._maybe_fail("get_sth", (now,))
        return self._log.get_sth(now)

    def get_proof_by_hash(self, index: int, tree_size: int):
        self._maybe_fail("get_proof_by_hash", (index, tree_size))
        return self._log.get_proof_by_hash(index, tree_size)

    def get_consistency(self, old_size: int, new_size: int):
        self._maybe_fail("get_consistency", (old_size, new_size))
        return self._log.get_consistency(old_size, new_size)

    def add_chain(self, cert, now):
        self._maybe_fail("add_chain", (cert.serial,))
        return self._log.add_chain(cert, now)

    def add_pre_chain(self, precert, issuer_key_hash, now):
        self._maybe_fail("add_pre_chain", (precert.serial,))
        return self._log.add_pre_chain(precert, issuer_key_hash, now)

    # -- delegation ----------------------------------------------------------

    def __getattr__(self, item: str):
        try:
            log = self.__dict__["_log"]
        except KeyError:
            raise AttributeError(item) from None
        return getattr(log, item)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlakyLog({self._log.name!r}, rate={self.failure_rate}, "
            f"injected={self.faults_injected}/{self.calls})"
        )
