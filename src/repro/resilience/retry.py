"""Retry with bounded, seeded, exponential backoff.

:class:`RetryPolicy` is the one retry loop shared by the feed, the
monitors, and the pipeline engine.  Classification is explicit:
overloads and transient faults are worth retrying, a disqualified log
is terminal.  Jitter draws from a :class:`repro.util.rng.SeededRng`
substream so a seeded run schedules the exact same delays every time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple, Type

from repro.ct.log import LogDisqualifiedError, LogOverloadedError
from repro.obs.metrics import COUNT_BOUNDS, MetricsRegistry
from repro.resilience.faults import TransientLogError
from repro.util.rng import SeededRng

#: Exceptions a retry can plausibly outwait.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    LogOverloadedError,
    TransientLogError,
    TimeoutError,
    ConnectionError,
)

#: Exceptions no amount of retrying fixes.
DEFAULT_TERMINAL: Tuple[Type[BaseException], ...] = (LogDisqualifiedError,)


class RetryExhaustedError(RuntimeError):
    """All attempts failed; ``__cause__`` is the last error."""

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts

    def __reduce__(self):
        # args holds only the message, so default exception pickling
        # would drop ``attempts`` (and break process pools relaying us).
        return (type(self), (self.args[0] if self.args else "", self.attempts))


@dataclass(frozen=True)
class RetryOutcome:
    """A successful call plus how hard it was to get there."""

    value: Any
    attempts: int

    @property
    def retried(self) -> int:
        return self.attempts - 1


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retrying).
    base_delay_s / multiplier / max_delay_s:
        Backoff schedule: the delay after failed attempt *n* is
        ``min(max_delay_s, base_delay_s * multiplier**(n-1))``.
    jitter:
        Fractional jitter; each delay is scaled by a deterministic
        factor drawn uniformly from ``[1-jitter, 1+jitter]``.
    rng:
        Seeded stream for jitter (defaults to ``SeededRng(0, "retry")``).
    retryable / terminal:
        Exception classes to retry / to fail immediately on; terminal
        wins when a class appears in both.
    sleep:
        Injection point for the delay (defaults to :func:`time.sleep`);
        tests pass a recorder to avoid real waiting.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  Each completed
        ``run`` observes its attempt count into the ``retry.attempts``
        histogram; each backoff delay lands in ``retry.backoff_seconds``
        and bumps the ``retry.retries`` counter; exhaustion bumps
        ``retry.exhausted``.  The registry is process-local: a policy
        pickled into a pool worker records into the *copy*, so
        engine-level attempt counters are the cross-process source of
        truth.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.1
    rng: Optional[SeededRng] = None
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE
    terminal: Tuple[Type[BaseException], ...] = DEFAULT_TERMINAL
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    metrics: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.rng is None:
            self.rng = SeededRng(0, "retry")

    # -- classification ------------------------------------------------------

    def is_retryable(self, exc: BaseException) -> bool:
        """Terminal classes always lose; otherwise match ``retryable``."""
        if isinstance(exc, self.terminal):
            return False
        return isinstance(exc, self.retryable)

    # -- schedule ------------------------------------------------------------

    def backoff_delay(self, attempt: int) -> float:
        """Delay after the ``attempt``-th failure (1-based), jittered."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1))
        if delay <= 0.0:
            return 0.0
        if self.jitter:
            delay *= 1.0 + self.jitter * self.rng.uniform(-1.0, 1.0)
        return max(0.0, delay)

    # -- the loop ------------------------------------------------------------

    def run(
        self,
        fn: Callable[[], Any],
        *,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> RetryOutcome:
        """Call ``fn`` until it succeeds or attempts run out.

        Non-retryable errors propagate unchanged on the spot;
        exhaustion raises :class:`RetryExhaustedError` chained to the
        last error.  ``on_retry(attempt, exc)`` fires before each
        backoff sleep.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                value = fn()
            except Exception as exc:
                if not self.is_retryable(exc):
                    raise
                if attempt >= self.max_attempts:
                    if self.metrics is not None:
                        self.metrics.inc("retry.exhausted")
                        self.metrics.observe(
                            "retry.attempts", attempt, bounds=COUNT_BOUNDS
                        )
                    raise RetryExhaustedError(
                        f"gave up after {attempt} attempt(s): {exc!r}",
                        attempts=attempt,
                    ) from exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                delay = self.backoff_delay(attempt)
                if self.metrics is not None:
                    self.metrics.inc("retry.retries")
                    self.metrics.observe("retry.backoff_seconds", delay)
                if delay > 0.0:
                    self.sleep(delay)
                continue
            if self.metrics is not None:
                self.metrics.observe(
                    "retry.attempts", attempt, bounds=COUNT_BOUNDS
                )
            return RetryOutcome(value=value, attempts=attempt)
