"""TLS substrate: connections, HTTPS endpoints, active scanning.

Models the two vantage points of Section 3: the passive uplink
(streams of :class:`~repro.tls.connection.TlsConnection` records run
through the Bro-style analyzer) and the active scan pipeline
(domain list -> DNS resolution -> zmap port sweep -> TLS handshake
with SNI), mirroring the paper's measurement setup.
"""

from repro.tls.connection import SctPresence, TlsConnection
from repro.tls.server import HttpsEndpoint, ServerSite
from repro.tls.scanner import ScanRecord, TlsScanner, zmap_scan

__all__ = [
    "HttpsEndpoint",
    "ScanRecord",
    "SctPresence",
    "ServerSite",
    "TlsConnection",
    "TlsScanner",
    "zmap_scan",
]
