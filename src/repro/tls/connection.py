"""TLS connection records.

A :class:`TlsConnection` is what the passive monitor sees for one
outgoing connection: server identity (SNI), the served certificate,
and any SCTs delivered via the TLS extension or a stapled OCSP
response.  Because the paper's uplink carried 26.5G connections and we
simulate a scaled-down stream, each record carries a ``weight`` — the
number of real-world connections it stands for; all Section 3
statistics are weight-aware.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Optional, Tuple

from repro.ct.sct import SignedCertificateTimestamp
from repro.x509.certificate import Certificate


@dataclass(frozen=True)
class SctPresence:
    """Which channels carried at least one SCT on a connection."""

    certificate: bool = False
    tls_extension: bool = False
    ocsp_staple: bool = False

    @property
    def any(self) -> bool:
        return self.certificate or self.tls_extension or self.ocsp_staple


@dataclass(frozen=True)
class TlsConnection:
    """One observed TLS connection (possibly standing for many)."""

    time: datetime
    server_name: str
    server_ip: str
    certificate: Optional[Certificate]
    tls_extension_scts: Tuple[SignedCertificateTimestamp, ...] = ()
    ocsp_scts: Tuple[SignedCertificateTimestamp, ...] = ()
    client_signals_sct_support: bool = True
    server_port: int = 443
    weight: int = 1
    client_ip: str = ""

    @property
    def is_https(self) -> bool:
        return self.server_port == 443
