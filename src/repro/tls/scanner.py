"""Active scan pipeline: domain list -> DNS -> zmap -> TLS scanner.

Section 3.1: "Our active scan … builds on a large (≈423M) list of DNS
domain names, which we resolve for A and AAAA records, conduct zmap
scans on port tcp/443, and subsequently scan using a custom-built TLS
scanner."  The same three stages run here against the simulated
hosting infrastructure; the output feeds the Section 3.3 statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict, Iterable, List, Set, Tuple

from repro.ct.sct import SignedCertificateTimestamp
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import Rcode, RecursiveResolver
from repro.tls.server import HttpsEndpoint
from repro.x509.certificate import Certificate


@dataclass(frozen=True)
class ScanRecord:
    """Result of one TLS handshake during the active scan."""

    domain: str
    ip: str
    certificate: Certificate
    tls_extension_scts: Tuple[SignedCertificateTimestamp, ...] = ()
    ocsp_scts: Tuple[SignedCertificateTimestamp, ...] = ()


def zmap_scan(
    endpoints: Dict[str, HttpsEndpoint], targets: Iterable[str], port: int = 443
) -> List[str]:
    """Which target IPs answer on the port (zmap SYN scan equivalent)."""
    if port != 443:
        return []
    responsive = []
    for ip in targets:
        endpoint = endpoints.get(ip)
        if endpoint is not None and endpoint.port_open:
            responsive.append(ip)
    return responsive


class TlsScanner:
    """The custom-built TLS scanner of the paper's pipeline."""

    def __init__(
        self,
        resolver: RecursiveResolver,
        endpoints: Dict[str, HttpsEndpoint],
    ) -> None:
        self._resolver = resolver
        self._endpoints = endpoints

    def resolve_targets(
        self, domains: Iterable[str], now: datetime
    ) -> Dict[str, List[str]]:
        """Stage 1: resolve A records for each domain."""
        targets: Dict[str, List[str]] = {}
        for domain in domains:
            result = self._resolver.resolve(domain, RecordType.A, now=now)
            if result.rcode is Rcode.NOERROR and result.addresses:
                targets[domain] = result.addresses
        return targets

    def scan(
        self, domains: Iterable[str], now: datetime
    ) -> List[ScanRecord]:
        """Run all three stages and return one record per handshake."""
        targets = self.resolve_targets(domains, now)
        all_ips: Set[str] = set()
        for addresses in targets.values():
            all_ips.update(addresses)
        open_ips = set(zmap_scan(self._endpoints, sorted(all_ips)))
        records: List[ScanRecord] = []
        for domain, addresses in targets.items():
            for ip in addresses:
                if ip not in open_ips:
                    continue
                site = self._endpoints[ip].handshake(domain)
                if site is None:
                    continue
                records.append(
                    ScanRecord(
                        domain=domain,
                        ip=ip,
                        certificate=site.certificate,
                        tls_extension_scts=site.tls_extension_scts,
                        ocsp_scts=site.ocsp_scts,
                    )
                )
                break  # one handshake per domain, like the paper's scanner
        return records
