"""HTTPS server endpoints.

One IP can host many TLS sites selected by SNI — the paper's active
scan found ≈12 certificates per SCT-serving IP ("With the use of
TLS-SNI, this ≈12-fold multiplexing of certificates per IP is
expected").  :class:`HttpsEndpoint` models exactly that: a port-443
listener with per-SNI sites, each with its own certificate and SCT
delivery configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ct.sct import SignedCertificateTimestamp
from repro.x509.certificate import Certificate


@dataclass
class ServerSite:
    """One SNI-selected virtual host."""

    hostname: str
    certificate: Certificate
    #: SCTs the server sends in the TLS extension (operators fetch
    #: these themselves by submitting their cert to logs).
    tls_extension_scts: Tuple[SignedCertificateTimestamp, ...] = ()
    #: SCTs delivered inside a stapled OCSP response.
    ocsp_scts: Tuple[SignedCertificateTimestamp, ...] = ()


@dataclass
class HttpsEndpoint:
    """A TCP/443 listener with SNI multiplexing."""

    ip: str
    sites: Dict[str, ServerSite] = field(default_factory=dict)
    port_open: bool = True

    def add_site(self, site: ServerSite) -> ServerSite:
        self.sites[site.hostname.lower()] = site
        return site

    def handshake(self, sni: Optional[str]) -> Optional[ServerSite]:
        """Serve the site matching the SNI (or the default site)."""
        if not self.port_open or not self.sites:
            return None
        if sni:
            site = self.sites.get(sni.lower())
            if site is not None:
                return site
            site = self._wildcard_match(sni.lower())
            if site is not None:
                return site
        # No/unknown SNI: default virtual host.
        return next(iter(self.sites.values()))

    def _wildcard_match(self, sni: str) -> Optional[ServerSite]:
        head, sep, tail = sni.partition(".")
        if not sep:
            return None
        return self.sites.get(f"*.{tail}")

    def certificate_count(self) -> int:
        """Distinct certificates served by this IP."""
        return len({site.certificate.fingerprint() for site in self.sites.values()})

    def serves_any_sct(self) -> bool:
        """True when at least one hosted site delivers an SCT somehow."""
        return any(
            site.certificate.has_embedded_scts
            or site.tls_extension_scts
            or site.ocsp_scts
            for site in self.sites.values()
        )

    def hostnames(self) -> List[str]:
        return list(self.sites)
