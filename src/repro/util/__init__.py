"""Shared utilities: deterministic randomness, simulated time, statistics.

Everything in the reproduction is deterministic given a seed.  The
:class:`~repro.util.rng.SeededRng` class provides named substreams so
that adding a new consumer of randomness does not perturb existing
experiment outputs.
"""

from repro.util.format import human_count, human_percent, si_count
from repro.util.rng import SeededRng
from repro.util.stats import Counter2D, TopK, share
from repro.util.tables import Table
from repro.util.timeutil import (
    DAY_SECONDS,
    date_range,
    day_index,
    parse_date,
    parse_utc,
    utc_datetime,
)

__all__ = [
    "DAY_SECONDS",
    "Counter2D",
    "SeededRng",
    "Table",
    "TopK",
    "date_range",
    "day_index",
    "human_count",
    "human_percent",
    "parse_date",
    "parse_utc",
    "share",
    "si_count",
    "utc_datetime",
]
