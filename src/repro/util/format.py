"""Human-readable numbers in the paper's notation.

The paper reports counts with SI-style suffixes: ``26.5G`` connections,
``8.6G`` SCT connections, ``61.1M`` occurrences of ``www``, ``303k``
``shop`` labels.  These helpers render simulated (scaled) counts in the
same notation so the benchmark output lines up with the paper tables.
"""

from __future__ import annotations


def si_count(value: float) -> str:
    """Render a count like the paper: 26.5G, 61.1M, 303k, 55."""
    magnitude = abs(value)
    if magnitude >= 1e9:
        return _trim(value / 1e9) + "G"
    if magnitude >= 1e6:
        return _trim(value / 1e6) + "M"
    if magnitude >= 1e3:
        return _trim(value / 1e3) + "k"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _trim(scaled: float) -> str:
    """One decimal, dropping a trailing .0 (61.1 -> '61.1', 4.0 -> '4')."""
    text = f"{scaled:.1f}"
    if text.endswith(".0"):
        return text[:-2]
    return text


def human_count(value: float) -> str:
    """Alias for :func:`si_count` kept for readability at call sites."""
    return si_count(value)


def human_percent(fraction: float, decimals: int = 2) -> str:
    """Render a fraction as a percentage string, e.g. 0.3261 -> '32.61%'."""
    return f"{fraction * 100:.{decimals}f}%"


def duration_human(seconds: float) -> str:
    """Render a duration the way Table 4 does: 73s, 111m, 19d."""
    if seconds < 600:
        return f"{int(round(seconds))}s"
    minutes = seconds / 60.0
    if minutes < 60 * 48:
        return f"{int(round(minutes))}m"
    days = seconds / 86_400.0
    return f"{int(round(days))}d"
