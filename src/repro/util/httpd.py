"""Shared stdlib HTTP-server lifecycle helper.

Both live HTTP surfaces of the reproduction — the telemetry endpoint
(:class:`repro.obs.export.TelemetryServer`) and the RFC 6962 log front
end (:class:`repro.ct.server.LogServer`) — need the same plumbing:
bind a :class:`~http.server.ThreadingHTTPServer` (``port=0`` picks an
ephemeral port, so parallel tests never race on port reuse), serve on
a named daemon thread, shut down idempotently, and report the bound
address the same way (``host`` / ``port`` / ``url``).

:class:`HttpServerHandle` is that plumbing, exactly once.  Owners
compose a handle (rather than inherit from it) and expose its
properties; the handler class reaches its owner back through
``self.server.owner``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Type


class HttpServerHandle:
    """Bind/serve/shutdown lifecycle around one ``ThreadingHTTPServer``.

    Parameters
    ----------
    handler_cls:
        The :class:`~http.server.BaseHTTPRequestHandler` subclass that
        answers requests.  Inside the handler, ``self.server.owner``
        is the ``owner`` passed here.
    owner:
        The object the handler delegates to (the telemetry server, the
        log server, ...).
    host / port:
        Bind address; ``port=0`` (the default) lets the kernel pick a
        free ephemeral port — the resolved port is available as
        :attr:`port` immediately after construction, *before*
        :meth:`start`.
    thread_name:
        Name of the daemon thread running ``serve_forever``.
    """

    def __init__(
        self,
        handler_cls: Type[BaseHTTPRequestHandler],
        *,
        owner: object,
        host: str = "127.0.0.1",
        port: int = 0,
        thread_name: str = "repro-http",
    ) -> None:
        self._httpd = ThreadingHTTPServer((host, port), handler_cls)
        self._httpd.daemon_threads = True
        self._httpd.owner = owner  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._thread_name = thread_name

    # -- address -------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "HttpServerHandle":
        """Serve on a daemon thread; raises if already started."""
        if self._thread is not None:
            raise RuntimeError(f"{self._thread_name} server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=self._thread_name,
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release the socket; idempotent."""
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._thread = None
