"""Deterministic, forkable random number generation.

All stochastic components of the simulation draw from a
:class:`SeededRng`.  A top-level seed fully determines every experiment
output.  Substreams are derived by *name* (``rng.fork("traffic")``), so
the order in which components are constructed does not influence the
random values any single component observes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(seed: int, name: str) -> int:
    """Derive a 128-bit child seed from ``seed`` and a stream ``name``."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


class SeededRng:
    """A named, forkable wrapper around :class:`random.Random`.

    Parameters
    ----------
    seed:
        Integer master seed.
    name:
        Stream name; ``fork()`` derives child streams by appending to it.
    """

    def __init__(self, seed: int = 0, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(_derive_seed(seed, name))

    def fork(self, name: str) -> "SeededRng":
        """Return an independent child stream identified by ``name``."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    # -- thin delegation to random.Random ---------------------------------

    def random(self) -> float:
        return self._random.random()

    def randint(self, a: int, b: int) -> int:
        return self._random.randint(a, b)

    def randrange(self, start: int, stop: Optional[int] = None) -> int:
        if stop is None:
            return self._random.randrange(start)
        return self._random.randrange(start, stop)

    def uniform(self, a: float, b: float) -> float:
        return self._random.uniform(a, b)

    def expovariate(self, lambd: float) -> float:
        return self._random.expovariate(lambd)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def choices(
        self,
        population: Sequence[T],
        weights: Optional[Sequence[float]] = None,
        *,
        cum_weights: Optional[Sequence[float]] = None,
        k: int = 1,
    ) -> List[T]:
        return self._random.choices(
            population, weights, cum_weights=cum_weights, k=k
        )

    def sample(self, population: Sequence[T], k: int) -> List[T]:
        return self._random.sample(population, k)

    def shuffle(self, seq: List[T]) -> None:
        self._random.shuffle(seq)

    def getrandbits(self, k: int) -> int:
        return self._random.getrandbits(k)

    # -- convenience helpers ----------------------------------------------

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def token(self, length: int, alphabet: str = "abcdefghijklmnopqrstuvwxyz0123456789") -> str:
        """Return a random string of ``length`` characters from ``alphabet``."""
        return "".join(self._random.choice(alphabet) for _ in range(length))

    def random_bytes(self, n: int) -> bytes:
        return self._random.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Pick an index proportionally to ``weights``."""
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must have a positive sum")
        target = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target < acc:
                return i
        return len(weights) - 1

    def zipf_weights(self, n: int, exponent: float = 1.0) -> List[float]:
        """Return unnormalized Zipf weights ``1/rank**exponent`` for ``n`` ranks."""
        return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]

    def poisson(self, lam: float) -> int:
        """Sample from a Poisson distribution (Knuth for small lam, normal approx otherwise)."""
        if lam < 0:
            raise ValueError("lam must be non-negative")
        if lam == 0:
            return 0
        if lam > 500:
            # Normal approximation keeps this O(1) for the large daily volumes.
            value = int(round(self._random.gauss(lam, lam ** 0.5)))
            return max(0, value)
        import math

        limit = math.exp(-lam)
        k = 0
        product = self._random.random()
        while product > limit:
            k += 1
            product *= self._random.random()
        return k

    def subsample(self, items: Iterable[T], probability: float) -> List[T]:
        """Keep each item independently with the given probability."""
        return [item for item in items if self.chance(probability)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRng(seed={self.seed}, name={self.name!r})"
