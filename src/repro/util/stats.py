"""Small statistics helpers used across analyses."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Hashable, Iterable, List, Optional, Tuple


def share(part: float, whole: float) -> float:
    """Return ``part / whole`` as a fraction, 0.0 when ``whole`` is zero."""
    if whole == 0:
        return 0.0
    return part / whole


def percentile(sorted_values: List[float], q: float) -> float:
    """Return the q-th percentile (0..100) by linear interpolation.

    ``sorted_values`` must already be sorted ascending — this is
    verified, because an unsorted input silently returns garbage
    quantiles.  NaN anywhere in the input (or as ``q``) is rejected:
    NaN is unordered, so it both breaks the sortedness contract and
    poisons the interpolation.  Small samples interpolate like any
    other: ``percentile([1.0, 2.0], 99)`` is 1.99, not the max.
    """
    if q != q:
        raise ValueError("percentile q is NaN")
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    previous = sorted_values[0]
    for value in sorted_values:
        if value != value:
            raise ValueError("percentile input contains NaN")
        if value < previous:
            raise ValueError("percentile input is not sorted ascending")
        previous = value
    if len(sorted_values) == 1:
        return sorted_values[0]
    if q <= 0:
        return sorted_values[0]
    if q >= 100:
        return sorted_values[-1]
    position = (len(sorted_values) - 1) * q / 100.0
    lower = int(position)
    frac = position - lower
    if lower + 1 >= len(sorted_values):
        return sorted_values[-1]
    return sorted_values[lower] * (1 - frac) + sorted_values[lower + 1] * frac


def cumulative(values: Iterable[float]) -> List[float]:
    """Running sum of ``values``."""
    out: List[float] = []
    total = 0.0
    for value in values:
        total += value
        out.append(total)
    return out


class TopK:
    """Track the top-``k`` keys by accumulated count."""

    def __init__(self, k: int) -> None:
        self.k = k
        self._counts: Counter = Counter()

    def add(self, key: Hashable, count: int = 1) -> None:
        self._counts[key] += count

    def update(self, counts: Dict[Hashable, int]) -> None:
        self._counts.update(counts)

    def total(self) -> int:
        return sum(self._counts.values())

    def count(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def top(self, k: Optional[int] = None) -> List[Tuple[Hashable, int]]:
        return self._counts.most_common(k if k is not None else self.k)

    def __len__(self) -> int:
        return len(self._counts)


class Counter2D:
    """A sparse two-dimensional counter (e.g. CA x log matrices)."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[Hashable, Hashable], int] = defaultdict(int)
        self._rows: Counter = Counter()
        self._cols: Counter = Counter()

    def add(self, row: Hashable, col: Hashable, count: int = 1) -> None:
        self._cells[(row, col)] += count
        self._rows[row] += count
        self._cols[col] += count

    def get(self, row: Hashable, col: Hashable) -> int:
        return self._cells.get((row, col), 0)

    def update(self, other: "Counter2D") -> None:
        """Add another counter's cells, in their insertion order.

        Replaying cells in order keeps row/col first-seen order — and
        therefore ``rows()``/``cols()`` tie-breaking — identical to a
        serial build over the concatenated streams.
        """
        for (row, col), count in other._cells.items():
            self.add(row, col, count)

    def row_total(self, row: Hashable) -> int:
        return self._rows.get(row, 0)

    def col_total(self, col: Hashable) -> int:
        return self._cols.get(col, 0)

    def total(self) -> int:
        return sum(self._rows.values())

    def rows(self) -> List[Hashable]:
        return [key for key, _ in self._rows.most_common()]

    def cols(self) -> List[Hashable]:
        return [key for key, _ in self._cols.most_common()]

    def cells(self) -> Dict[Tuple[Hashable, Hashable], int]:
        return dict(self._cells)

    def density(self) -> float:
        """Fraction of row x col cells that are non-zero."""
        n_rows = len(self._rows)
        n_cols = len(self._cols)
        if n_rows == 0 or n_cols == 0:
            return 0.0
        nonzero = sum(1 for value in self._cells.values() if value > 0)
        return nonzero / (n_rows * n_cols)

    def row_shares(self, row: Hashable) -> Dict[Hashable, float]:
        """Per-column share of a row's total."""
        total = self.row_total(row)
        if total == 0:
            return {}
        return {
            col: self._cells[(row, col)] / total
            for (r, col) in self._cells
            if r == row
        }


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = equal, ~1 = concentrated)."""
    data = sorted(float(v) for v in values)
    n = len(data)
    if n == 0:
        raise ValueError("gini of empty sequence")
    total = sum(data)
    if total == 0:
        return 0.0
    weighted = sum((index + 1) * value for index, value in enumerate(data))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n
