"""Plain-text table and chart rendering for benchmark reports.

The benchmark harness regenerates each paper table/figure as text:
tables are rendered with aligned columns, figures as ASCII line charts
or heatmaps.  Keeping rendering here lets every analysis module return
plain data structures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class Table:
    """A simple column-aligned text table."""

    def __init__(self, headers: Sequence[str]) -> None:
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)),
            "  ".join("-" * widths[i] for i in range(len(self.headers))),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def ascii_line_chart(
    series: Dict[str, Sequence[float]],
    *,
    height: int = 12,
    width: int = 72,
    y_label: str = "",
    x_labels: Optional[Tuple[str, str]] = None,
) -> str:
    """Render one or more numeric series as a compact ASCII chart.

    Each series is down-sampled to ``width`` columns; series are drawn
    with distinct glyphs and a legend line is appended.
    """
    if not series:
        return "(empty chart)"
    glyphs = "*+ox#@%&"
    max_value = max((max(s) for s in series.values() if len(s)), default=0.0)
    if max_value <= 0:
        max_value = 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        legend.append(f"{glyph}={name}")
        if not values:
            continue
        for col in range(width):
            src = int(col * (len(values) - 1) / max(1, width - 1)) if len(values) > 1 else 0
            value = values[src]
            row = height - 1 - int((value / max_value) * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][col] = glyph
    lines = []
    for row_index, row in enumerate(grid):
        y_value = max_value * (height - 1 - row_index) / (height - 1)
        prefix = f"{y_value:10.2f} |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    if x_labels:
        left, right = x_labels
        pad = max(1, width - len(left) - len(right))
        lines.append(" " * 12 + left + " " * pad + right)
    lines.append("  " + "  ".join(legend) + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def ascii_heatmap(
    rows: Sequence[str],
    cols: Sequence[str],
    values: Dict[Tuple[str, str], float],
    *,
    max_rows: int = 20,
    max_cols: int = 12,
) -> str:
    """Render a sparse matrix as a shaded ASCII heatmap (Fig. 1c style)."""
    shades = " .:-=+*#%@"
    shown_rows = list(rows)[:max_rows]
    shown_cols = list(cols)[:max_cols]
    peak = max((values.get((r, c), 0.0) for r in shown_rows for c in shown_cols), default=0.0)
    if peak <= 0:
        peak = 1.0
    col_width = 4
    header = " " * 26 + "".join(
        f"{_shorten(c, col_width - 1):>{col_width}}" for c in shown_cols
    )
    lines = [header]
    for row in shown_rows:
        cells = []
        for col in shown_cols:
            value = values.get((row, col), 0.0)
            if value <= 0:
                cells.append(" " * (col_width - 1) + ".")
            else:
                shade = shades[min(len(shades) - 1, 1 + int((value / peak) * (len(shades) - 2)))]
                cells.append(" " * (col_width - 1) + shade)
        lines.append(f"{_shorten(row, 25):<26}" + "".join(cells))
    lines.append("")
    lines.append(f"  shading: '.'=0  '{shades[1]}'..'{shades[-1]}' scaled to max={peak:.3g}")
    return "\n".join(lines)


def _shorten(text: str, limit: int) -> str:
    if len(text) <= limit:
        return text
    return text[: limit - 1] + "~"
