"""Simulated-time helpers.

The measurement period of the paper spans 2015-01-01 (early CT logging)
through 2018-05-23 (end of the passive capture).  All timestamps in the
simulation are timezone-aware UTC datetimes; day-granularity series use
:class:`datetime.date`.
"""

from __future__ import annotations

from datetime import date, datetime, timedelta, timezone
from typing import Iterator

DAY_SECONDS = 86_400

#: Start of the paper's CT-log harvesting window (Fig. 1).
LOG_HARVEST_START = date(2015, 1, 1)
#: CT-log snapshot date used in Sections 2 and 4 (certificates "as of").
LOG_SNAPSHOT_DATE = date(2018, 4, 26)
#: Passive UCB capture window (Fig. 2, Table 1).
PASSIVE_START = date(2017, 4, 26)
PASSIVE_END = date(2018, 5, 23)
#: Chrome CT enforcement deadline.
CHROME_ENFORCEMENT = date(2018, 4, 18)
#: Honeypot capture window (Section 6).
HONEYPOT_START = datetime(2018, 4, 12, 14, 0, tzinfo=timezone.utc)
HONEYPOT_END = datetime(2018, 5, 15, 14, 0, tzinfo=timezone.utc)


def utc_datetime(
    year: int,
    month: int,
    day: int,
    hour: int = 0,
    minute: int = 0,
    second: int = 0,
) -> datetime:
    """Construct a timezone-aware UTC datetime."""
    return datetime(year, month, day, hour, minute, second, tzinfo=timezone.utc)


def parse_date(text: str) -> date:
    """Parse ``YYYY-MM-DD``."""
    return date.fromisoformat(text)


def parse_utc(text: str) -> datetime:
    """Parse ``YYYY-MM-DD HH:MM[:SS]`` as UTC."""
    parsed = datetime.fromisoformat(text)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed


def date_range(start: date, end: date) -> Iterator[date]:
    """Yield every date from ``start`` to ``end`` inclusive."""
    current = start
    one_day = timedelta(days=1)
    while current <= end:
        yield current
        current += one_day


def day_index(day: date, origin: date) -> int:
    """Number of days from ``origin`` to ``day`` (may be negative)."""
    return (day - origin).days


def day_of(moment: datetime) -> date:
    """The UTC calendar date of a datetime."""
    return moment.astimezone(timezone.utc).date()


def start_of_day(day: date) -> datetime:
    """Midnight UTC at the start of ``day``."""
    return datetime(day.year, day.month, day.day, tzinfo=timezone.utc)


def month_key(day: date) -> str:
    """Return ``YYYY-MM`` for grouping by month."""
    return f"{day.year:04d}-{day.month:02d}"


def timestamp_ms(moment: datetime) -> int:
    """Milliseconds since the Unix epoch (the unit SCTs use)."""
    return int(moment.timestamp() * 1000)


def from_timestamp_ms(ms: int) -> datetime:
    """Inverse of :func:`timestamp_ms`."""
    return datetime.fromtimestamp(ms / 1000.0, tz=timezone.utc)
