"""Calibrated synthetic workloads.

The paper's inputs are live Internet datasets; each module here builds
the closest synthetic equivalent at a configurable scale, calibrated to
the numbers the paper reports (see DESIGN.md, "Reproduction strategy").

* :mod:`repro.workloads.ca_profiles` — per-CA precertificate logging
  behaviour over 2015-2018 (Figure 1);
* :mod:`repro.workloads.traffic` — the UCB-uplink connection mix
  (Figure 2, Table 1, Section 3.2);
* :mod:`repro.workloads.hosting` — the scanned HTTPS server population
  (Section 3.3);
* :mod:`repro.workloads.incidents` — the four CA bugs behind the 16
  invalid embedded SCTs (Section 3.4);
* :mod:`repro.workloads.domains` — registrable domains and the
  subdomain-label distribution (Table 2, Section 4);
* :mod:`repro.workloads.wordlists` — synthetic subbrute/dnsrecon lists;
* :mod:`repro.workloads.sonar` — a Sonar-FDNS-like dataset;
* :mod:`repro.workloads.phishing` — phishing/legitimate/benign domains
  (Table 3, Section 5);
* :mod:`repro.workloads.loadgen` — seeded client storms (browsers,
  monitors, bursty submitters) driven over real sockets against a
  served log (:class:`repro.ct.server.LogServer`).
"""

from repro.workloads.ca_profiles import (
    CaLoggingWorkload,
    CaProfile,
    PAPER_CA_PROFILES,
)
from repro.workloads.domains import DomainCorpus, DomainWorkload
from repro.workloads.hosting import HostingPopulation, HostingWorkload
from repro.workloads.incidents import (
    IncidentCorpus,
    MisissuanceWorkload,
    SplitViewIncident,
    split_view_incidents,
)
from repro.workloads.loadgen import (
    ClientPlan,
    LoadStormConfig,
    LoadStormReport,
    MonitorSwarm,
    MonitorSwarmConfig,
    StormOp,
    gossip_storm_sths,
    plan_storm,
    plan_swarm_subscriptions,
    run_storm,
)
from repro.workloads.phishing import PhishingCorpus, PhishingWorkload
from repro.workloads.sonar import SonarDataset, SonarWorkload
from repro.workloads.traffic import SiteGroup, UplinkTrafficWorkload
from repro.workloads.wordlists import dnsrecon_wordlist, subbrute_wordlist

__all__ = [
    "CaLoggingWorkload",
    "CaProfile",
    "ClientPlan",
    "DomainCorpus",
    "DomainWorkload",
    "HostingPopulation",
    "HostingWorkload",
    "IncidentCorpus",
    "LoadStormConfig",
    "LoadStormReport",
    "MisissuanceWorkload",
    "MonitorSwarm",
    "MonitorSwarmConfig",
    "PAPER_CA_PROFILES",
    "SplitViewIncident",
    "PhishingCorpus",
    "PhishingWorkload",
    "SiteGroup",
    "SonarDataset",
    "SonarWorkload",
    "StormOp",
    "UplinkTrafficWorkload",
    "dnsrecon_wordlist",
    "gossip_storm_sths",
    "plan_storm",
    "plan_swarm_subscriptions",
    "run_storm",
    "split_view_incidents",
    "subbrute_wordlist",
]
