"""Per-CA precertificate logging behaviour, 2015 - May 2018.

Calibrated to Section 2 / Figure 1 of the paper:

* DigiCert "dominated activities over a long period", with "more
  irregular additions by Comodo, GlobalSign, and StartCom";
* Let's Encrypt "started logging precertificates in March 2018 with an
  update rate above 2M certificates per day into few logs";
* the top five issuing CAs accounted for 99 % of certificates in
  April 2018, with "pronounced final jumps starting in March 2018";
* Figure 1c's CA x log matrix is very sparse, with the Cloudflare
  Nimbus log carrying Let's Encrypt's main load besides Google logs —
  causing the Nimbus overload/disqualification discussion.

Rates below are *real-world* certificates/day; the workload multiplies
by its ``scale`` (simulated = real x scale) before sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ct.log import CTLog, LogOverloadedError
from repro.ct.loglist import build_default_logs
from repro.util.rng import SeededRng
from repro.util.timeutil import date_range, start_of_day
from repro.x509.ca import CertificateAuthority, IssuanceRequest, IssuedPair

#: Real-world capacity of the Nimbus2018 log in submissions/day; Let's
#: Encrypt's ~2M/day ramp pushes past this, reproducing the Section 2
#: overload incident.
NIMBUS_REAL_CAPACITY_PER_DAY = 1_600_000


@dataclass(frozen=True)
class RatePhase:
    """A piecewise-constant logging-rate phase."""

    start: date
    end: date
    daily_rate: float  # real certificates/day
    #: Relative burstiness; 0 = smooth Poisson, >0 adds day-to-day swings
    #: (the "irregular additions" of Comodo/GlobalSign/StartCom).
    burstiness: float = 0.0


@dataclass(frozen=True)
class CaProfile:
    """Logging behaviour of one CA brand."""

    name: str
    issuer_cns: Tuple[str, ...]
    phases: Tuple[RatePhase, ...]
    #: Weighted log-set choices: each issuance submits its precert to
    #: every log in the chosen set (one SCT per log).
    log_choices: Tuple[Tuple[Tuple[str, ...], float], ...]

    def rate_on(self, day: date) -> float:
        for phase in self.phases:
            if phase.start <= day <= phase.end:
                return phase.daily_rate
        return 0.0

    def burstiness_on(self, day: date) -> float:
        for phase in self.phases:
            if phase.start <= day <= phase.end:
                return phase.burstiness
        return 0.0


def _p(start: str, end: str, rate: float, burstiness: float = 0.0) -> RatePhase:
    return RatePhase(date.fromisoformat(start), date.fromisoformat(end), rate, burstiness)


#: The CA cast of Figure 1, with "Other" subsuming the long tail.
PAPER_CA_PROFILES: Tuple[CaProfile, ...] = (
    CaProfile(
        name="Let's Encrypt",
        issuer_cns=("Let's Encrypt Authority X3", "Let's Encrypt Authority X4"),
        phases=(
            _p("2018-03-08", "2018-03-12", 400_000.0),
            _p("2018-03-13", "2018-03-19", 1_200_000.0),
            _p("2018-03-20", "2018-05-31", 2_200_000.0),
        ),
        log_choices=(
            (("Cloudflare Nimbus2018 Log", "Google Icarus log"), 0.57),
            (("Cloudflare Nimbus2018 Log", "Google Icarus log", "Google Rocketeer log"), 0.14),
            (("Cloudflare Nimbus2018 Log", "Comodo Sabre CT log"), 0.07),
            (("Google Icarus log", "Cloudflare Nimbus2019 Log"), 0.06),
            (("Google Rocketeer log", "Comodo Sabre CT log"), 0.05),
            (("Cloudflare Nimbus2018 Log", "Google Icarus log", "Google Pilot log"), 0.06),
            (("Cloudflare Nimbus2018 Log", "Cloudflare Nimbus2020 Log", "Google Icarus log"), 0.05),
        ),
    ),
    CaProfile(
        name="DigiCert",
        issuer_cns=("DigiCert SHA2 Secure Server CA", "DigiCert SHA2 Extended Validation Server CA"),
        phases=(
            _p("2015-01-01", "2016-06-30", 60_000.0),
            _p("2016-07-01", "2017-06-30", 120_000.0),
            _p("2017-07-01", "2018-02-28", 250_000.0),
            _p("2018-03-01", "2018-05-31", 900_000.0),
        ),
        log_choices=(
            (("DigiCert Log Server", "Google Pilot log"), 0.45),
            (("DigiCert Log Server", "DigiCert Log Server 2"), 0.30),
            (("DigiCert Log Server", "Google Rocketeer log"), 0.25),
        ),
    ),
    CaProfile(
        name="Comodo",
        issuer_cns=("COMODO RSA Domain Validation Secure Server CA",),
        phases=(
            _p("2016-02-01", "2017-06-30", 30_000.0, burstiness=1.2),
            _p("2017-07-01", "2018-02-28", 80_000.0, burstiness=0.8),
            _p("2018-03-01", "2018-05-31", 700_000.0),
        ),
        log_choices=(
            (("Comodo Mammoth CT log", "Comodo Sabre CT log"), 0.50),
            (("Comodo Mammoth CT log", "Google Pilot log"), 0.30),
            (("Comodo Sabre CT log", "Google Rocketeer log"), 0.20),
        ),
    ),
    CaProfile(
        name="GlobalSign",
        issuer_cns=("GlobalSign Organization Validation CA - SHA256 - G2",),
        phases=(
            _p("2015-06-01", "2017-12-31", 15_000.0, burstiness=1.0),
            _p("2018-01-01", "2018-02-28", 40_000.0),
            _p("2018-03-01", "2018-05-31", 180_000.0),
        ),
        log_choices=(
            (("Google Pilot log", "Google Rocketeer log"), 0.60),
            (("Google Skydiver log", "Google Rocketeer log"), 0.40),
        ),
    ),
    CaProfile(
        name="StartCom",
        issuer_cns=("StartCom Class 1 DV Server CA",),
        phases=(
            # Distrusted by browsers; logging stops at the end of 2017.
            _p("2015-09-01", "2017-10-31", 8_000.0, burstiness=1.5),
        ),
        log_choices=(
            (("Google Pilot log", "Venafi log"), 0.70),
            (("Google Pilot log",), 0.30),
        ),
    ),
    CaProfile(
        name="Symantec",
        issuer_cns=("Symantec Class 3 Secure Server CA - G4",),
        phases=(
            _p("2015-09-01", "2017-12-31", 40_000.0),
            _p("2018-01-01", "2018-05-31", 60_000.0),
        ),
        log_choices=(
            (("Symantec log", "Symantec Vega log"), 0.60),
            (("Symantec log", "Google Pilot log"), 0.40),
        ),
    ),
    CaProfile(
        name="Other",
        issuer_cns=("Misc Issuing CA",),
        phases=(
            _p("2015-01-01", "2016-12-31", 2_000.0),
            _p("2017-01-01", "2018-02-28", 10_000.0),
            _p("2018-03-01", "2018-05-31", 40_000.0),
        ),
        log_choices=(
            (("Google Pilot log", "Google Rocketeer log"), 0.40),
            (("Google Skydiver log", "Google Pilot log"), 0.30),
            (("Venafi log", "Google Rocketeer log"), 0.30),
        ),
    ),
)

#: Default simulated:real ratio for the evolution experiments.
DEFAULT_EVOLUTION_SCALE = 1.0 / 40_000.0


@dataclass
class CaWorkloadResult:
    """Output of a full CA-logging simulation."""

    logs: Dict[str, CTLog]
    cas: Dict[str, CertificateAuthority]
    issued: List[IssuedPair]
    scale: float
    start: date
    end: date
    rejected_submissions: int = 0

    @property
    def weight(self) -> float:
        """Real-world certificates represented by one simulated one."""
        return 1.0 / self.scale


class CaLoggingWorkload:
    """Drive all CA profiles through the real issuance pipeline.

    Every simulated certificate runs the full RFC 6962 flow:
    precertificate -> log submission (per the CA's log choices) -> SCT
    -> final certificate with embedded SCTs.
    """

    def __init__(
        self,
        *,
        scale: float = DEFAULT_EVOLUTION_SCALE,
        seed: int = 2018,
        start: Optional[date] = None,
        end: Optional[date] = None,
        profiles: Sequence[CaProfile] = PAPER_CA_PROFILES,
        key_bits: int = 256,
        logs: Optional[Dict[str, CTLog]] = None,
    ) -> None:
        self.scale = scale
        self.start = start or date(2015, 1, 1)
        self.end = end or date(2018, 4, 30)
        self.profiles = list(profiles)
        self._rng = SeededRng(seed, "ca-workload")
        self.logs = logs if logs is not None else build_default_logs(
            with_capacities=False, key_bits=key_bits
        )
        nimbus = self.logs.get("Cloudflare Nimbus2018 Log")
        if nimbus is not None and nimbus.capacity_per_day is None:
            nimbus.capacity_per_day = max(
                1, int(NIMBUS_REAL_CAPACITY_PER_DAY * scale)
            )
        self.cas = {
            profile.name: CertificateAuthority(
                profile.name, profile.issuer_cns, key_bits=key_bits
            )
            for profile in self.profiles
        }
        self._domain_counter = 0

    def run(self) -> CaWorkloadResult:
        """Simulate the whole period; returns logs, CAs, and all pairs."""
        issued: List[IssuedPair] = []
        rejected = 0
        for day in date_range(self.start, self.end):
            for profile in self.profiles:
                count = self._daily_count(profile, day)
                if count == 0:
                    continue
                ca = self.cas[profile.name]
                day_rng = self._rng.fork(f"{profile.name}:{day.isoformat()}")
                for _ in range(count):
                    moment = start_of_day(day) + timedelta(
                        seconds=day_rng.uniform(0, 86_399)
                    )
                    log_set = self._choose_logs(profile, day, day_rng)
                    request = IssuanceRequest(self._next_names(day_rng))
                    try:
                        issued.append(ca.issue(request, log_set, moment))
                    except LogOverloadedError:
                        rejected += 1
        return CaWorkloadResult(
            logs=self.logs,
            cas=self.cas,
            issued=issued,
            scale=self.scale,
            start=self.start,
            end=self.end,
            rejected_submissions=rejected,
        )

    # -- internals -----------------------------------------------------------

    def _daily_count(self, profile: CaProfile, day: date) -> int:
        rate = profile.rate_on(day) * self.scale
        if rate <= 0:
            return 0
        burst = profile.burstiness_on(day)
        if burst > 0:
            # Irregular CAs: some days multiply, some days go quiet.
            roll = self._rng.fork(f"burst:{profile.name}:{day}").random()
            if roll < 0.35:
                rate = 0.0
            elif roll > 0.85:
                rate *= 1.0 + burst * 4.0
        return self._rng.fork(f"count:{profile.name}:{day}").poisson(rate)

    def _choose_logs(
        self, profile: CaProfile, day: date, rng: SeededRng
    ) -> List[CTLog]:
        sets = [names for names, _ in profile.log_choices]
        weights = [weight for _, weight in profile.log_choices]
        chosen = sets[rng.weighted_index(weights)]
        available = []
        for name in chosen:
            log = self.logs.get(name)
            if log is None or log.disqualified:
                continue
            if log.chrome_inclusion is not None and log.chrome_inclusion > day:
                continue
            available.append(log)
        if not available:
            # Before a CA's preferred logs existed, Google Pilot was the
            # catch-all destination.
            available = [self.logs["Google Pilot log"]]
        return available

    def _next_names(self, rng: SeededRng) -> Tuple[str, ...]:
        self._domain_counter += 1
        base = f"host{self._domain_counter}.example-{rng.token(6)}.com"
        if rng.chance(0.6):
            return (base, f"www.{base}")
        return (base,)
