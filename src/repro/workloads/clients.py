"""The TLS client population behind the uplink traffic.

Section 3.2: "in 17.7G (66.76 %) of connections the client signals its
support for the SCT extensions."  That aggregate hides a browser mix:
Chrome signals `signed_certificate_timestamp` support, most other
stacks of the era did not.  This module models the client population
so the support share *emerges* from a browser market mix instead of
being a hard-coded coin flip, and so client-side experiments (e.g.
what share of connections would enforce the Chrome CT policy) have a
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import List, Optional, Sequence, Tuple

from repro.util.rng import SeededRng


@dataclass(frozen=True)
class ClientProfile:
    """One client stack in the population."""

    name: str
    share: float
    signals_sct_support: bool
    #: Whether this client enforces Chrome's CT policy for new certs
    #: (Chrome did from 2018-04-18).
    enforces_ct_policy: bool = False
    enforcement_start: Optional[date] = None

    def enforcing_on(self, day: date) -> bool:
        if not self.enforces_ct_policy:
            return False
        return self.enforcement_start is None or day >= self.enforcement_start


#: A 2017/18-era client mix calibrated so SCT-support signalling lands
#: at the paper's 66.76 %.
DEFAULT_CLIENT_MIX: Tuple[ClientProfile, ...] = (
    ClientProfile("chrome-desktop", 0.42, True, True, date(2018, 4, 18)),
    ClientProfile("chrome-mobile", 0.205, True, True, date(2018, 4, 18)),
    ClientProfile("safari", 0.12, False),
    ClientProfile("firefox", 0.09, False),
    ClientProfile("edge-ie", 0.05, False),
    ClientProfile("opera", 0.025, True),  # Chromium-based
    ClientProfile("bots-and-libs", 0.072, False),
    ClientProfile("misc-chromium", 0.018, True),
)


class ClientPopulation:
    """Draws client stacks for connections."""

    def __init__(
        self,
        mix: Sequence[ClientProfile] = DEFAULT_CLIENT_MIX,
        seed: int = 27,
    ) -> None:
        total = sum(profile.share for profile in mix)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"client shares must sum to 1, got {total}")
        self.mix = list(mix)
        self._rng = SeededRng(seed, "clients")
        self._weights = [profile.share for profile in mix]

    def draw(self) -> ClientProfile:
        return self.mix[self._rng.weighted_index(self._weights)]

    def support_share(self) -> float:
        """Expected share of connections signalling SCT support."""
        return sum(p.share for p in self.mix if p.signals_sct_support)

    def enforcing_share(self, day: date) -> float:
        """Share of connections enforcing CT policy on a given day."""
        return sum(p.share for p in self.mix if p.enforcing_on(day))

    def sample_support(self, count: int) -> List[bool]:
        """Draw ``count`` connections' support flags."""
        return [self.draw().signals_sct_support for _ in range(count)]
