"""Registrable domains and the CT-leaked FQDN corpus (Section 4).

Builds, at a configurable scale:

* the **domain list** of Section 4.1 — the paper's 206M registrable
  domains "mainly constructed from various large zone files";
* the **CT FQDN corpus** — DNS names extracted from CN/SAN fields of
  CT-logged certificates, with subdomain-label frequencies calibrated
  to Table 2 (www 61.1M … smtp 140k), a long tail of sub-100k labels,
  per-suffix signature labels (git/tech, autoconfig/email, api/cloud,
  ftp/design, sip/gov, dialin/gov.uk), and a sprinkling of names that
  are *not* valid FQDNs, which the leakage analysis must filter out
  exactly as the paper did with the ``validators`` library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.util.rng import SeededRng

#: Table 2's label counts (real-world occurrences).
TABLE2_LABEL_COUNTS: Tuple[Tuple[str, int], ...] = (
    ("www", 61_100_000),
    ("mail", 14_400_000),
    ("webdisk", 8_700_000),
    ("webmail", 8_600_000),
    ("cpanel", 8_200_000),
    ("autodiscover", 3_600_000),
    ("m", 310_000),
    ("shop", 303_000),
    ("whm", 280_000),
    ("dev", 256_000),
    ("remote", 253_000),
    ("test", 249_000),
    ("api", 239_000),
    ("blog", 235_000),
    ("secure", 176_000),
    ("admin", 158_000),
    ("mobile", 156_000),
    ("server", 146_000),
    ("cloud", 141_000),
    ("smtp", 140_000),
)

#: Long-tail labels, each below the paper's 100k construction threshold.
TAIL_LABEL_COUNTS: Tuple[Tuple[str, int], ...] = (
    ("ftp", 95_000), ("ns1", 90_000), ("vpn", 85_000), ("portal", 80_000),
    ("app", 75_000), ("autoconfig", 70_000), ("web", 65_000), ("git", 60_000),
    ("ns2", 60_000), ("static", 55_000), ("mx", 50_000), ("imap", 45_000),
    ("cdn", 45_000), ("staging", 40_000), ("pop", 40_000), ("demo", 35_000),
    ("backup", 33_000), ("sip", 30_000), ("beta", 30_000), ("img", 30_000),
    ("wiki", 28_000), ("media", 28_000), ("forum", 26_000), ("owncloud", 25_000),
    ("news", 24_000), ("files", 22_000), ("calendar", 20_000), ("host", 20_000),
    ("citrix", 18_000), ("monitor", 15_000), ("stats", 12_000), ("dialin", 8_000),
)

#: Section 4.2's per-suffix signature labels: within these suffixes the
#: given label is the most common one.
SUFFIX_SIGNATURE_LABELS: Tuple[Tuple[str, str], ...] = (
    ("tech", "git"),
    ("email", "autoconfig"),
    ("cloud", "api"),
    ("design", "ftp"),
    ("gov", "sip"),
    ("gov.uk", "dialin"),
)

#: Registrable-domain suffix mix (share of the 206M list).
SUFFIX_MIX: Tuple[Tuple[str, float], ...] = (
    ("com", 0.42), ("net", 0.07), ("org", 0.06), ("de", 0.05),
    ("co.uk", 0.035), ("ru", 0.03), ("nl", 0.025), ("info", 0.02),
    ("fr", 0.02), ("it", 0.018), ("br", 0.015), ("io", 0.015),
    ("pl", 0.014), ("au", 0.0), ("com.au", 0.013), ("es", 0.012),
    ("ca", 0.012), ("eu", 0.011), ("ch", 0.01), ("us", 0.01),
    ("se", 0.009), ("jp", 0.0), ("co.jp", 0.009), ("cz", 0.008),
    ("in", 0.008), ("biz", 0.008), ("me", 0.007), ("at", 0.007),
    ("dk", 0.006), ("be", 0.006), ("cn", 0.006), ("tv", 0.005),
    ("co", 0.005), ("xyz", 0.02), ("online", 0.01), ("site", 0.008),
    ("top", 0.012), ("shop", 0.006), ("tech", 0.0008), ("email", 0.0006),
    ("cloud", 0.0006), ("design", 0.0005), ("gov", 0.0005), ("gov.uk", 0.0003),
    ("gov.au", 0.001), ("ga", 0.008), ("tk", 0.012), ("ml", 0.007),
    ("cf", 0.006), ("gq", 0.004), ("bid", 0.004), ("review", 0.003),
    ("live", 0.004), ("money", 0.002), ("co.am", 0.001), ("my", 0.003),
)

REAL_REGISTRABLE_DOMAINS = 206_000_000
DEFAULT_DOMAIN_SCALE = 1.0 / 1_000.0


@dataclass
class DomainCorpus:
    """The generated domain list plus the CT-extracted FQDN corpus."""

    registrable_domains: List[str]
    domain_suffix: Dict[str, str]
    ct_fqdns: List[str]
    psl: PublicSuffixList
    scale: float
    #: Ground truth: scaled per-label emission counts (for tests).
    emitted_label_counts: Dict[str, int] = field(default_factory=dict)

    def domains_in_suffix(self, suffix: str) -> List[str]:
        return [
            domain
            for domain, sfx in self.domain_suffix.items()
            if sfx == suffix
        ]

    def distinct_ct_labels(self) -> Set[str]:
        return set(self.emitted_label_counts)


class DomainWorkload:
    """Generate the domain list and CT FQDN corpus."""

    def __init__(
        self,
        *,
        scale: float = DEFAULT_DOMAIN_SCALE,
        seed: int = 44,
        psl: Optional[PublicSuffixList] = None,
        invalid_name_count: int = 200,
        bare_domain_share: float = 0.4,
    ) -> None:
        self.scale = scale
        self._rng = SeededRng(seed, "domains")
        self.psl = psl or default_psl()
        self.invalid_name_count = invalid_name_count
        self.bare_domain_share = bare_domain_share

    def build(self) -> DomainCorpus:
        registrable, suffix_of, per_suffix = self._registrable_domains()
        special_suffixes = {suffix for suffix, _ in SUFFIX_SIGNATURE_LABELS}
        # Signature suffixes keep their own label profile; the global
        # Table 2 emission draws from the remaining domains so the
        # global ranking stays calibrated.
        regular = [d for d in registrable if suffix_of[d] not in special_suffixes]
        fqdns: List[str] = []
        emitted: Dict[str, int] = {}

        # Bare registrable domains (certificates for the apex).
        bare_count = int(len(registrable) * self.bare_domain_share)
        fqdns.extend(registrable[:bare_count])

        # Per-suffix signature labels: each signature label sits on half
        # of its suffix's domains, dominating the suffix (Section 4.2).
        sig_rng = self._rng.fork("signatures")
        for suffix, label in SUFFIX_SIGNATURE_LABELS:
            domains = per_suffix.get(suffix, [])
            if not domains:
                continue
            count = max(2, int(len(domains) * 0.5))
            for domain in sig_rng.sample(domains, min(count, len(domains))):
                fqdns.append(f"{label}.{domain}")
                emitted[label] = emitted.get(label, 0) + 1
            minor = max(1, int(len(domains) * 0.12))
            for domain in sig_rng.sample(domains, min(minor, len(domains))):
                fqdns.append(f"mail.{domain}")
                emitted["mail"] = emitted.get("mail", 0) + 1

        # Table 2 + tail labels at scale, topping each label up to its
        # calibrated total (signature emissions already count toward it).
        rng = self._rng.fork("labels")
        for label, real_count in list(TABLE2_LABEL_COUNTS) + list(TAIL_LABEL_COUNTS):
            count = max(1, int(real_count * self.scale)) - emitted.get(label, 0)
            if count <= 0:
                continue
            chosen = (
                rng.sample(regular, count)
                if count <= len(regular)
                else rng.choices(regular, k=count)
            )
            for domain in chosen:
                fqdns.append(f"{label}.{domain}")
            emitted[label] = emitted.get(label, 0) + count

        # Some wildcard certificates and invalid CN/SAN entries — the
        # parser must cope with both.
        junk_rng = self._rng.fork("junk")
        for _ in range(self.invalid_name_count):
            domain = junk_rng.choice(registrable)
            kind = junk_rng.randint(0, 4)
            if kind == 0:
                fqdns.append(f"*.{domain}")  # valid wildcard
            elif kind == 1:
                fqdns.append(f"under_score.{domain}")  # invalid label
            elif kind == 2:
                fqdns.append(f"-dash.{domain}")  # leading hyphen
            elif kind == 3:
                fqdns.append("localhost")  # single label
            else:
                fqdns.append(f"{junk_rng.token(70)}.{domain}")  # label too long

        junk_rng.shuffle(fqdns)
        return DomainCorpus(
            registrable_domains=registrable,
            domain_suffix=suffix_of,
            ct_fqdns=fqdns,
            psl=self.psl,
            scale=self.scale,
            emitted_label_counts=emitted,
        )

    # -- internals -----------------------------------------------------------

    def _registrable_domains(
        self,
    ) -> Tuple[List[str], Dict[str, str], Dict[str, List[str]]]:
        total = max(100, int(REAL_REGISTRABLE_DOMAINS * self.scale))
        suffixes = [suffix for suffix, _ in SUFFIX_MIX]
        weights = [weight for _, weight in SUFFIX_MIX]
        weight_sum = sum(weights)
        rng = self._rng.fork("registrable")
        registrable: List[str] = []
        suffix_of: Dict[str, str] = {}
        per_suffix: Dict[str, List[str]] = {}
        counter = 0
        for suffix, weight in zip(suffixes, weights):
            count = int(total * weight / weight_sum)
            if weight > 0 and count == 0:
                count = 2
            bucket = per_suffix.setdefault(suffix, [])
            for _ in range(count):
                counter += 1
                name = f"{rng.token(3)}{counter}.{suffix}"
                registrable.append(name)
                suffix_of[name] = suffix
                bucket.append(name)
        return registrable, suffix_of, per_suffix
