"""The HTTPS server population seen by the active scan (Section 3.3).

Calibration targets from the paper:

* 42.8M unique certificates encountered; 68.7 % with an embedded SCT;
* 335.7K unique certificates with an SCT in the TLS extension, 1,214
  with one in a stapled OCSP reply;
* 3.7M IPs serve an SCT for at least one hosted site, with ~12-fold
  SNI multiplexing of certificates per IP;
* per-*certificate* log shares dominated by Cloudflare Nimbus2018
  (74 %) and Google Icarus (71 %) — i.e. Let's Encrypt's log choices —
  in stark contrast to the per-*connection* shares of Table 1.

The population is materialized as real endpoints with real
certificates issued through the CA -> log pipeline, plus DNS zones so
the three-stage scanner (resolve -> zmap -> TLS) can find them.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Dict, List, Optional, Tuple

from repro.ct.log import CTLog
from repro.ct.loglist import build_default_logs
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import DnsUniverse, RecursiveResolver
from repro.dnscore.zone import Zone
from repro.tls.server import HttpsEndpoint, ServerSite
from repro.util.rng import SeededRng
from repro.util.timeutil import start_of_day
from repro.x509.ca import CertificateAuthority, IssuanceRequest

#: Real-world calibration constants (Section 3.3).
REAL_UNIQUE_CERTS = 42_800_000
EMBEDDED_SCT_CERT_SHARE = 0.687
REAL_TLS_EXT_CERTS = 335_700
REAL_OCSP_CERTS = 1_214
SITES_PER_SCT_IP = 12

#: Per-certificate log-set mix for SCT-bearing certificates, tuned so
#: the per-cert shares land at Nimbus2018 ~74 %, Icarus ~71 %,
#: Rocketeer ~19 %, Sabre ~12.5 %, everything else < 10 %.
CERT_LOG_MIX: Tuple[Tuple[Tuple[str, ...], float], ...] = (
    (("Cloudflare Nimbus2018 Log", "Google Icarus log"), 0.55),
    (("Cloudflare Nimbus2018 Log", "Google Icarus log", "Google Rocketeer log"), 0.10),
    (("Cloudflare Nimbus2018 Log", "Comodo Sabre CT log"), 0.06),
    (("Cloudflare Nimbus2018 Log", "Google Icarus log", "Comodo Sabre CT log"), 0.03),
    (("Google Icarus log", "Google Rocketeer log"), 0.03),
    (("Google Rocketeer log", "Comodo Sabre CT log"), 0.035),
    (("Google Rocketeer log", "Google Pilot log"), 0.025),
    (("DigiCert Log Server", "DigiCert Log Server 2"), 0.06),
    (("Comodo Mammoth CT log", "Google Skydiver log"), 0.05),
    (("Google Pilot log", "Google Aviator log"), 0.06),
)

#: CA attribution for SCT-bearing certificates (mostly Let's Encrypt).
CERT_CA_MIX: Tuple[Tuple[str, float], ...] = (
    ("Let's Encrypt", 0.72),
    ("Comodo", 0.12),
    ("DigiCert", 0.10),
    ("Other", 0.06),
)

DEFAULT_HOSTING_SCALE = 1.0 / 10_000.0


@dataclass
class HostingPopulation:
    """The materialized server population plus its DNS."""

    endpoints: Dict[str, HttpsEndpoint]
    universe: DnsUniverse
    domains: List[str]
    logs: Dict[str, CTLog]
    scale: float

    def resolver(self, name: str = "scan-resolver") -> RecursiveResolver:
        return RecursiveResolver(name, self.universe, ip="169.229.0.53", asn=64496)


class HostingWorkload:
    """Builds the scanned HTTPS population at a configurable scale."""

    def __init__(
        self,
        *,
        scale: float = DEFAULT_HOSTING_SCALE,
        seed: int = 33,
        scan_date: Optional[date] = None,
        logs: Optional[Dict[str, CTLog]] = None,
        key_bits: int = 256,
    ) -> None:
        self.scale = scale
        self.scan_date = scan_date or date(2018, 5, 18)
        self._rng = SeededRng(seed, "hosting")
        self.logs = logs if logs is not None else build_default_logs(
            with_capacities=False, key_bits=key_bits
        )
        self._cas = {
            name: CertificateAuthority(name, key_bits=key_bits)
            for name, _ in CERT_CA_MIX
        }
        self._plain_ca = CertificateAuthority("Plain CA", key_bits=key_bits)

    def build(self) -> HostingPopulation:
        """Create endpoints, certificates, and DNS for the population."""
        total_certs = max(10, int(REAL_UNIQUE_CERTS * self.scale))
        sct_certs = int(total_certs * EMBEDDED_SCT_CERT_SHARE)
        tls_ext_certs = max(1, int(REAL_TLS_EXT_CERTS * self.scale))
        ocsp_certs = max(1, int(REAL_OCSP_CERTS * self.scale))
        issued_at = start_of_day(self.scan_date) - timedelta(days=20)

        endpoints: Dict[str, HttpsEndpoint] = {}
        universe = DnsUniverse()
        zone = Zone("com")
        universe.add_zone(zone)
        domains: List[str] = []

        mix_sets = [logs for logs, _ in CERT_LOG_MIX]
        mix_weights = [weight for _, weight in CERT_LOG_MIX]
        ca_names = [name for name, _ in CERT_CA_MIX]
        ca_weights = [weight for _, weight in CERT_CA_MIX]

        # SCT-bearing certificates, packed ~12 sites per IP.
        sct_endpoint: Optional[HttpsEndpoint] = None
        for index in range(sct_certs):
            if sct_endpoint is None or len(sct_endpoint.sites) >= SITES_PER_SCT_IP:
                ip = f"104.131.{(index // 250) % 250}.{index % 250 + 1}"
                sct_endpoint = endpoints.setdefault(ip, HttpsEndpoint(ip))
            hostname = f"site{index}.hosted-sct.com"
            log_set = [
                self.logs[name]
                for name in mix_sets[self._rng.weighted_index(mix_weights)]
            ]
            ca = self._cas[ca_names[self._rng.weighted_index(ca_weights)]]
            pair = ca.issue(
                IssuanceRequest((hostname,), lifetime_days=90), log_set, issued_at
            )
            site = ServerSite(hostname, pair.final_certificate)
            if index < tls_ext_certs:
                # Operators also sending their SCTs via the TLS extension.
                site.tls_extension_scts = pair.scts
            sct_endpoint.add_site(site)
            zone.add_simple(hostname, RecordType.A, sct_endpoint.ip)
            domains.append(hostname)

        # Certificates without CT: lower multiplexing.
        plain_certs = total_certs - sct_certs
        plain_endpoint: Optional[HttpsEndpoint] = None
        for index in range(plain_certs):
            if plain_endpoint is None or len(plain_endpoint.sites) >= 2:
                ip = f"88.198.{(index // 250) % 250}.{index % 250 + 1}"
                plain_endpoint = endpoints.setdefault(ip, HttpsEndpoint(ip))
            hostname = f"site{index}.hosted-plain.com"
            pair = self._plain_ca.issue(
                IssuanceRequest((hostname,), lifetime_days=365, embed_scts=False),
                [],
                issued_at,
            )
            plain_endpoint.add_site(ServerSite(hostname, pair.final_certificate))
            zone.add_simple(hostname, RecordType.A, plain_endpoint.ip)
            domains.append(hostname)

        # The handful of certificates with stapled-OCSP SCT delivery.
        for index in range(ocsp_certs):
            ip = f"52.95.200.{index + 1}"
            hostname = f"site{index}.hosted-ocsp.com"
            endpoint = endpoints.setdefault(ip, HttpsEndpoint(ip))
            pair = self._plain_ca.issue(
                IssuanceRequest((hostname,), embed_scts=False), [], issued_at
            )
            ocsp_scts = (
                self.logs["DigiCert Log Server"].add_chain(
                    pair.final_certificate, issued_at
                ),
            )
            endpoint.add_site(
                ServerSite(hostname, pair.final_certificate, ocsp_scts=ocsp_scts)
            )
            zone.add_simple(hostname, RecordType.A, ip)
            domains.append(hostname)

        return HostingPopulation(
            endpoints=endpoints,
            universe=universe,
            domains=domains,
            logs=self.logs,
            scale=self.scale,
        )
