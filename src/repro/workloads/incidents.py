"""The four CA pipeline incidents of Section 3.4.

The paper found 16 certificates from 4 CAs with invalid embedded SCTs:

* **TeliaSonera** (1): a re-issuance of an earlier certificate that
  embedded the *earlier* certificate's SCT;
* **GlobalSign** (12): certificates whose SANs mixed DNS names and IP
  addresses, with the entry order changed in the final certificate;
* **D-Trust** (2): X.509 extension ordering differed between
  precertificate and final certificate;
* **NetLock** (1): precertificate and final certificate contained
  entirely different SAN names and even issuer names.

This workload issues those 16 certificates through the buggy-pipeline
paths of :class:`~repro.x509.ca.CertificateAuthority`, embedded in a
larger population of correctly issued certificates from the same and
other CAs.

Beyond CA pipeline bugs, the module also types *log* misbehaviour:
:class:`SplitViewIncident` is a detected equivocation — a log that
showed different clients different tree heads of the same size —
surfaced by :func:`split_view_incidents` from a
:class:`~repro.ct.auditor.GossipPool` after a storm's STHs were
gossiped (see :func:`repro.workloads.loadgen.gossip_storm_sths`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.ct.auditor import GossipPool

from repro.ct.log import CTLog
from repro.ct.loglist import build_default_logs
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.x509.ca import (
    CertificateAuthority,
    IssuanceBug,
    IssuanceRequest,
    IssuedPair,
)


@dataclass
class IncidentCorpus:
    """All issued pairs plus the ground truth of injected incidents."""

    pairs: List[IssuedPair]
    cas: Dict[str, CertificateAuthority]
    logs: Dict[str, CTLog]
    #: Ground truth: serial -> (CA name, bug) for every buggy final cert.
    injected: Dict[Tuple[str, int], IssuanceBug] = field(default_factory=dict)

    def issuer_key_hashes(self) -> Dict[str, bytes]:
        return {name: ca.issuer_key_hash for name, ca in self.cas.items()}


class MisissuanceWorkload:
    """Issue the Section 3.4 incident certificates among healthy ones."""

    def __init__(
        self,
        *,
        healthy_certificates: int = 400,
        seed: int = 34,
        logs: Optional[Dict[str, CTLog]] = None,
        key_bits: int = 256,
    ) -> None:
        self.healthy_certificates = healthy_certificates
        self._rng = SeededRng(seed, "incidents")
        self.logs = logs if logs is not None else build_default_logs(
            with_capacities=False, key_bits=key_bits
        )
        ca_names = [
            "TeliaSonera", "GlobalSign", "D-Trust", "NetLock",
            "Let's Encrypt", "DigiCert", "Comodo",
        ]
        self.cas = {
            name: CertificateAuthority(name, key_bits=key_bits)
            for name in ca_names
        }

    def build(self) -> IncidentCorpus:
        now = utc_datetime(2018, 2, 1)
        pilot = self.logs["Google Pilot log"]
        rocketeer = self.logs["Google Rocketeer log"]
        log_pair = [pilot, rocketeer]
        corpus = IncidentCorpus(pairs=[], cas=self.cas, logs=self.logs)

        # Healthy background population from all CAs.
        ca_list = list(self.cas.values())
        for index in range(self.healthy_certificates):
            ca = ca_list[index % len(ca_list)]
            pair = ca.issue(
                IssuanceRequest((f"ok{index}.{ca.name.lower().replace(' ', '-').replace(chr(39), '')}-customer.com",)),
                log_pair,
                now + timedelta(minutes=index),
            )
            corpus.pairs.append(pair)

        def inject(ca_name: str, request: IssuanceRequest, bug: IssuanceBug,
                   when) -> IssuedPair:
            pair = self.cas[ca_name].issue(request, log_pair, when, bug=bug)
            corpus.pairs.append(pair)
            corpus.injected[(ca_name, pair.final_certificate.serial)] = bug
            return pair

        # TeliaSonera: first a legitimate issuance, then the re-issuance
        # that embeds the earlier certificate's SCT.
        telia_name = "secure.teliasonera-customer.se"
        first = self.cas["TeliaSonera"].issue(
            IssuanceRequest((telia_name,)), log_pair, utc_datetime(2018, 1, 10)
        )
        corpus.pairs.append(first)
        inject(
            "TeliaSonera",
            IssuanceRequest((telia_name,)),
            IssuanceBug.SCT_REUSE,
            utc_datetime(2018, 1, 25),
        )

        # GlobalSign: 12 certificates with mixed DNS + IP SANs reordered.
        for index in range(12):
            inject(
                "GlobalSign",
                IssuanceRequest(
                    (f"vpn{index}.globalsign-customer.com",),
                    ip_addresses=(f"203.0.113.{index + 1}",),
                ),
                IssuanceBug.SAN_REORDER,
                utc_datetime(2018, 2, 10) + timedelta(hours=index),
            )

        # D-Trust: 2 certificates with reordered X.509 extensions.
        for index in range(2):
            inject(
                "D-Trust",
                IssuanceRequest((f"portal{index}.dtrust-kunde.de",)),
                IssuanceBug.EXTENSION_REORDER,
                utc_datetime(2018, 3, 5) + timedelta(hours=index),
            )

        # NetLock: 1 certificate with entirely different SANs/issuer.
        inject(
            "NetLock",
            IssuanceRequest(("www.netlock-ugyfel.hu",)),
            IssuanceBug.SAN_SWAP,
            utc_datetime(2018, 3, 20),
        )
        return corpus


@dataclass(frozen=True)
class SplitViewIncident:
    """A gossip-detected split view: one log, one size, two roots.

    Root hashes are hex strings (JSON/report friendly); the reporters
    are the client identities whose gossiped STHs collided.
    """

    log_name: str
    tree_size: int
    first_root: str
    second_root: str
    first_reporter: str
    second_reporter: str
    detected_at: Optional[datetime] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "split-view",
            "log": self.log_name,
            "tree_size": self.tree_size,
            "first_root": self.first_root,
            "second_root": self.second_root,
            "first_reporter": self.first_reporter,
            "second_reporter": self.second_reporter,
            "detected_at": (
                self.detected_at.isoformat() if self.detected_at else None
            ),
        }


def split_view_incidents(pool: "GossipPool") -> List[SplitViewIncident]:
    """Promote a gossip pool's proven equivocations into incidents."""
    return [
        SplitViewIncident(
            log_name=equivocation.log_name,
            tree_size=equivocation.tree_size,
            first_root=equivocation.first_root.hex(),
            second_root=equivocation.second_root.hex(),
            first_reporter=equivocation.first_reporter,
            second_reporter=equivocation.second_reporter,
            detected_at=equivocation.observed_at,
        )
        for equivocation in pool.equivocations
    ]
