"""Seeded load storms against a served CT log.

The paper's vantage points — browsers validating SCTs, monitors
tailing ``get-entries``, CAs submitting precertificates in bursts —
are all *clients* of log HTTP endpoints.  This module builds that
client population deterministically and drives a
:class:`repro.ct.server.LogServer` over real sockets:

* the **plan** is fully seeded: :func:`plan_storm` expands a
  :class:`LoadStormConfig` against a pre-seeded log into per-client
  operation lists (which leaf a browser audits, which pages a monitor
  tails, which precertificates a CA submits) — two calls with the same
  seed produce identical plans, byte for byte;
* the **execution** is real concurrency: every client plan runs in a
  worker (thread pool by default, process pool under
  ``executor="process"`` — the same two modes the pipeline engine's
  ``REPRO_EXECUTOR`` matrix exercises) issuing genuine HTTP requests
  through :class:`repro.ct.server.LogClient`;
* the **verification** is cryptographic, not cosmetic: browsers check
  the returned audit paths against the seeded tree root, monitors
  check consistency proofs between tree heads, submitters check the
  returned SCT signatures.

:func:`run_storm` returns a :class:`LoadStormReport` with sustained
submissions/sec, read p50/p99 latency, per-endpoint status counts, and
verification tallies — the numbers the ``repro loadstorm`` CLI prints
and the server benchmark gates.

Against a *batched* server (``LogServer(..., merge_interval=...)``)
SCT issuance and Merkle inclusion are separate moments: the SCT comes
back immediately, the leaf appears in the tree only after the next
merge.  Each submitter therefore ends its plan with an
``await_inclusion`` op (unless ``LoadStormConfig.await_inclusion`` is
off) that polls ``get-sth`` + ``get-proof-by-hash`` until every leaf
it submitted verifies against a served root — the measured duration of
that op *is* the observed merge lag, reported separately from SCT
latency (``sct_p50``/``sct_p99`` vs ``merge_lag_max_s``).
"""

from __future__ import annotations

import base64
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:
    from repro.ct.auditor import AuditFinding, GossipPool
    from repro.x509 import crypto as _crypto

from repro.ct.log import CTLog, SignedTreeHead
from repro.ct.merkle import (
    leaf_hash,
    verify_consistency_proof,
    verify_inclusion_proof,
)
from repro.ct.monitor import (
    BatchMonitor,
    HttpTransport,
    LightweightMonitor,
    domain_matches,
)
from repro.ct.sct import precert_signing_input
from repro.ct.server import LogClient, LogClientError
from repro.ct.storage import certificate_to_dict
from repro.util.rng import SeededRng
from repro.util.stats import percentile
from repro.util.timeutil import utc_datetime
from repro.x509 import crypto
from repro.x509.ca import CertificateAuthority, IssuanceRequest

#: Executor modes for the client population (mirrors the pipeline).
STORM_EXECUTORS = ("thread", "process", "serial")

#: Op kinds that count as *reads* for the latency percentiles.
#: ``await_inclusion`` is deliberately excluded: it is a polling loop
#: whose duration measures merge lag, not a single-request latency.
READ_OPS = ("get_sth", "get_entries", "get_proof_by_hash", "get_sth_consistency")

#: Sleep between inclusion polls while waiting for a merge.
_AWAIT_POLL_S = 0.005


@dataclass(frozen=True)
class StormOp:
    """One planned client operation; all fields picklable primitives."""

    kind: str
    start: int = 0
    end: int = 0
    first: int = 0
    second: int = 0
    leaf: bytes = b""
    tree_size: int = 0
    expected_root: bytes = b""
    old_root: bytes = b""
    chain: Tuple[Dict, ...] = ()
    issuer_key_hash: bytes = b""
    leaves: Tuple[bytes, ...] = ()


@dataclass(frozen=True)
class ClientPlan:
    """One client's seeded request sequence."""

    kind: str  # "browser" | "monitor" | "submitter"
    name: str
    ops: Tuple[StormOp, ...]

    @property
    def reads(self) -> int:
        return sum(1 for op in self.ops if op.kind in READ_OPS)

    @property
    def submissions(self) -> int:
        return sum(1 for op in self.ops if op.kind == "add_pre_chain")

    @property
    def awaited_leaves(self) -> int:
        return sum(len(op.leaves) for op in self.ops if op.kind == "await_inclusion")


@dataclass(frozen=True)
class LoadStormConfig:
    """Shape of the storm population (all rates are per client)."""

    seed: int = 2018
    browsers: int = 6
    monitors: int = 2
    submitters: int = 2
    audits_per_browser: int = 8
    pages_per_monitor: int = 6
    page_size: int = 16
    submissions_per_submitter: int = 10
    #: Wall-clock budget per HTTP call before a client gives up.
    timeout_s: float = 30.0
    #: Whether each submitter ends its plan by polling until every
    #: leaf it submitted is provably included (measures merge lag).
    await_inclusion: bool = True

    @property
    def clients(self) -> int:
        return self.browsers + self.monitors + self.submitters

    @property
    def planned_submissions(self) -> int:
        return self.submitters * self.submissions_per_submitter


def plan_storm(
    config: LoadStormConfig,
    log: CTLog,
    *,
    submission_day: Optional[datetime] = None,
) -> List[ClientPlan]:
    """Expand a config into deterministic per-client op sequences.

    ``log`` is the (already seeded, not yet served) log the storm will
    hit: browsers audit leaves that exist *now*, monitors tail the
    seeded range, submitters carry freshly built precertificates for
    names derived from the seed.  The log object is only read here —
    submissions happen over HTTP at execution time.
    """
    if log.size == 0:
        raise ValueError("plan_storm needs a log seeded with entries")
    rng = SeededRng(config.seed, "loadstorm")
    seed_size = log.tree.size
    seed_root = log.tree.root()
    plans: List[ClientPlan] = []

    for b in range(config.browsers):
        browser_rng = rng.fork(f"browser:{b}")
        ops: List[StormOp] = [StormOp(kind="get_sth")]
        for _ in range(config.audits_per_browser):
            entry = log.entries[browser_rng.randrange(seed_size)]
            ops.append(
                StormOp(
                    kind="get_proof_by_hash",
                    leaf=entry.leaf_input,
                    tree_size=seed_size,
                    expected_root=seed_root,
                )
            )
        plans.append(ClientPlan("browser", f"browser-{b}", tuple(ops)))

    for m in range(config.monitors):
        monitor_rng = rng.fork(f"monitor:{m}")
        cursor = monitor_rng.randrange(max(1, seed_size // 2))
        ops = [StormOp(kind="get_sth")]
        old_size = max(1, cursor)
        for _ in range(config.pages_per_monitor):
            if cursor >= seed_size:
                cursor = 0  # wrap: monitors re-tail from the start
            ops.append(
                StormOp(
                    kind="get_entries",
                    start=cursor,
                    # Pin the page to the STH the monitor verifies
                    # against: submitters grow the log mid-storm, and
                    # an unclamped tail would hand back entries past
                    # the seeded tree head (a read-then-fetch TOCTOU).
                    end=min(cursor + config.page_size - 1, seed_size - 1),
                    tree_size=seed_size,
                )
            )
            cursor += config.page_size
        ops.append(
            StormOp(
                kind="get_sth_consistency",
                first=old_size,
                second=seed_size,
                old_root=log.tree.root(old_size),
                expected_root=seed_root,
                tree_size=seed_size,
            )
        )
        plans.append(ClientPlan("monitor", f"monitor-{m}", tuple(ops)))

    when = submission_day or utc_datetime(2018, 5, 2, 9, 0)
    for s in range(config.submitters):
        submitter_rng = rng.fork(f"submitter:{s}")
        ca = CertificateAuthority(f"Storm CA {config.seed}-{s}", key_bits=256)
        scratch = CTLog(
            name=f"storm-scratch-{s}",
            operator="storm",
            key=crypto.KeyPair.generate(f"storm-scratch:{config.seed}:{s}", 256),
        )
        ops = []
        leaves: List[bytes] = []
        for n in range(config.submissions_per_submitter):
            name = (
                f"burst{n}.{submitter_rng.token(8)}.storm-{config.seed}.example"
            )
            pair = ca.issue(
                IssuanceRequest((name, f"www.{name}")),
                [scratch],
                when + timedelta(seconds=n),
            )
            assert pair.precertificate is not None
            ops.append(
                StormOp(
                    kind="add_pre_chain",
                    chain=(certificate_to_dict(pair.precertificate),),
                    issuer_key_hash=ca.issuer_key_hash,
                )
            )
            leaves.append(
                precert_signing_input(pair.precertificate, ca.issuer_key_hash)
            )
        if config.await_inclusion and leaves:
            ops.append(StormOp(kind="await_inclusion", leaves=tuple(leaves)))
        plans.append(ClientPlan("submitter", f"submitter-{s}", tuple(ops)))

    return plans


def _await_inclusion(
    client: LogClient, leaves: Sequence[bytes], timeout_s: float
) -> bool:
    """Poll until every leaf verifies inclusion against a served STH.

    A batched log answers ``add-pre-chain`` before the leaf is in the
    tree; this loop is the client-side other half of MMD semantics —
    wait for a merge, then check the promise was kept.  Returns whether
    every leaf produced a valid inclusion proof before ``timeout_s``.
    """
    deadline = time.monotonic() + timeout_s
    pending: Dict[bytes, bytes] = {leaf_hash(leaf): leaf for leaf in leaves}
    while pending:
        sth = client.get_sth()
        tree_size = int(sth["tree_size"])  # type: ignore[arg-type]
        root = base64.b64decode(str(sth["sha256_root_hash"]))
        if tree_size > 0:
            for digest in list(pending):
                try:
                    index, path = client.get_proof_by_hash(digest, tree_size)
                except LogClientError:
                    continue  # not merged into this tree size yet
                if verify_inclusion_proof(
                    pending[digest], index, tree_size, path, root
                ):
                    del pending[digest]
        if not pending:
            return True
        if time.monotonic() >= deadline:
            return False
        time.sleep(_AWAIT_POLL_S)
    return True


@dataclass
class OpResult:
    """Outcome of one executed operation.

    ``sth`` carries the raw ``get-sth`` body (picklable primitives)
    when the op fetched one — the material :func:`gossip_storm_sths`
    feeds into a :class:`~repro.ct.auditor.GossipPool` after the storm.
    """

    kind: str
    status: int
    seconds: float
    verified: Optional[bool] = None
    sth: Optional[Dict[str, object]] = None


@dataclass
class ClientResult:
    """Everything one client observed during the storm.

    ``spans`` carries the client's closed trace spans as plain dicts
    (picklable), so process-pool workers ship their half of each trace
    back to the coordinator for :class:`~repro.obs.TraceStore` assembly.
    """

    kind: str
    name: str
    ops: List[OpResult] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    spans: List[Dict[str, object]] = field(default_factory=list)


def _op_span_attrs(plan: ClientPlan, op: StormOp) -> Dict[str, object]:
    """Attributes for one storm op's client root span.

    The domain is read straight off the serialized chain dict —
    mirroring ``Certificate.dns_names()[0]`` (subject CN, falling back
    to the first DNS SAN) without rebuilding the certificate, since
    this runs per op inside the timed storm path.
    """
    attrs: Dict[str, object] = {"client": plan.name}
    if op.kind == "add_pre_chain" and op.chain:
        leaf = op.chain[0]
        domain = leaf.get("subject_cn") or next(
            (value for kind, value in leaf.get("san", ()) if kind == "dns"),
            None,
        )
        if domain:
            attrs["domain"] = domain
    elif op.kind == "await_inclusion":
        attrs["leaves"] = len(op.leaves)
    return attrs


def _execute_plan(
    base_url: str,
    plan: ClientPlan,
    timeout_s: float,
    trace_seed: Optional[int] = None,
) -> ClientResult:
    """Run one client's ops over HTTP (module-level: process-picklable)."""
    from repro.ct.storage import certificate_from_dict
    from repro.obs.trace import SpanTracer, maybe_span

    tracer: Optional[SpanTracer] = None
    if trace_seed is not None:
        # Seeding by (storm seed, client name) keeps every client's ID
        # stream deterministic yet disjoint across the population.
        tracer = SpanTracer(seed=trace_seed, name=f"storm:{plan.name}")
    client = LogClient(
        base_url, timeout=timeout_s, client_id=plan.name, tracer=tracer
    )
    result = ClientResult(plan.kind, plan.name)
    for op in plan.ops:
        started = time.perf_counter()
        status = 200
        verified: Optional[bool] = None
        sth_body: Optional[Dict[str, object]] = None
        with maybe_span(
            tracer,
            f"storm.{op.kind}",
            kind="client",
            **_op_span_attrs(plan, op),
        ) as root:
            try:
                if op.kind == "get_sth":
                    body = client.get_sth()
                    verified = int(body["tree_size"]) >= 0
                    sth_body = {
                        key: body[key]
                        for key in (
                            "tree_size",
                            "timestamp",
                            "sha256_root_hash",
                            "tree_head_signature",
                        )
                        if key in body
                    }
                elif op.kind == "get_entries":
                    entries = client.get_entries(op.start, op.end)
                    # Pages must stay inside the requested window and,
                    # when the plan pinned a tree size, inside the STH the
                    # client is verifying against — a server racing
                    # concurrent appends must not leak newer entries here.
                    verified = len(entries) > 0 and all(
                        op.start <= entry.index <= op.end for entry in entries
                    )
                    if op.tree_size:
                        verified = verified and all(
                            entry.index < op.tree_size for entry in entries
                        )
                elif op.kind == "get_proof_by_hash":
                    index, path = client.get_proof_by_hash(
                        leaf_hash(op.leaf), op.tree_size
                    )
                    verified = verify_inclusion_proof(
                        op.leaf, index, op.tree_size, path, op.expected_root
                    )
                elif op.kind == "get_sth_consistency":
                    proof = client.get_sth_consistency(op.first, op.second)
                    verified = verify_consistency_proof(
                        op.first, op.second, op.old_root, op.expected_root,
                        proof,
                    )
                elif op.kind == "add_pre_chain":
                    precert = certificate_from_dict(dict(op.chain[0]))
                    sct = client.add_pre_chain(precert, op.issuer_key_hash)
                    verified = sct.timestamp_ms > 0 and len(sct.signature) > 0
                elif op.kind == "await_inclusion":
                    verified = _await_inclusion(client, op.leaves, timeout_s)
                else:  # pragma: no cover - plan builder controls kinds
                    raise ValueError(f"unknown op kind {op.kind!r}")
            except LogClientError as exc:
                status = exc.status
            except Exception as exc:  # socket errors, timeouts
                status = -1
                result.errors.append(f"{op.kind}: {exc!r}")
            if root is not None:
                root.set("status", status)
                if verified is not None:
                    root.set("verified", verified)
        result.ops.append(
            OpResult(
                op.kind,
                status,
                time.perf_counter() - started,
                verified,
                sth_body,
            )
        )
    if tracer is not None:
        result.spans = tracer.to_records()
    return result


def gossip_storm_sths(
    report: "LoadStormReport",
    pool: "GossipPool",
    log_name: str,
    *,
    now: Optional[datetime] = None,
) -> List["AuditFinding"]:
    """Feed every STH the storm's clients observed into a gossip pool.

    This is the wire-level gossip loop closed: the STHs were fetched
    over HTTP by independent clients (each with its own
    ``X-Repro-Client`` identity), so a split-view server that showed
    different clients different roots is caught here — the pool
    returns one finding per detected fork.
    """
    findings: List["AuditFinding"] = []
    for result in report.results:
        for op in result.ops:
            if op.kind != "get_sth" or op.status != 200 or not op.sth:
                continue
            sth = SignedTreeHead(
                tree_size=int(op.sth["tree_size"]),  # type: ignore[arg-type]
                timestamp_ms=int(op.sth["timestamp"]),  # type: ignore[arg-type]
                root_hash=base64.b64decode(str(op.sth["sha256_root_hash"])),
                signature=base64.b64decode(
                    str(op.sth["tree_head_signature"])
                ),
            )
            finding = pool.submit(log_name, sth, result.name, now=now)
            if finding is not None:
                findings.append(finding)
    return findings


@dataclass
class LoadStormReport:
    """Aggregated storm outcome (the benchmark's gated numbers)."""

    wall_seconds: float
    executor: str
    workers: int
    clients: int
    results: List[ClientResult]

    # -- aggregates ----------------------------------------------------------

    def _ops(self, *kinds: str) -> List[OpResult]:
        wanted = kinds or None
        out: List[OpResult] = []
        for result in self.results:
            for op in result.ops:
                if wanted is None or op.kind in wanted:
                    out.append(op)
        return out

    @property
    def read_latencies(self) -> List[float]:
        return sorted(
            op.seconds for op in self._ops(*READ_OPS) if op.status == 200
        )

    @property
    def read_p50(self) -> float:
        lats = self.read_latencies
        return percentile(lats, 50) if lats else 0.0

    @property
    def read_p99(self) -> float:
        lats = self.read_latencies
        return percentile(lats, 99) if lats else 0.0

    @property
    def sct_latencies(self) -> List[float]:
        """Time-to-SCT for accepted submissions (promise latency)."""
        return sorted(
            op.seconds for op in self._ops("add_pre_chain") if op.status == 200
        )

    @property
    def sct_p50(self) -> float:
        lats = self.sct_latencies
        return percentile(lats, 50) if lats else 0.0

    @property
    def sct_p99(self) -> float:
        lats = self.sct_latencies
        return percentile(lats, 99) if lats else 0.0

    @property
    def merge_lags(self) -> List[float]:
        """Observed merge lag per submitter (await_inclusion durations)."""
        return sorted(
            op.seconds for op in self._ops("await_inclusion") if op.status == 200
        )

    @property
    def merge_lag_max_s(self) -> float:
        lags = self.merge_lags
        return lags[-1] if lags else 0.0

    @property
    def merge_lag_mean_s(self) -> float:
        lags = self.merge_lags
        return sum(lags) / len(lags) if lags else 0.0

    @property
    def inclusions_verified(self) -> int:
        """await_inclusion ops whose every leaf proved inclusion."""
        return sum(
            1 for op in self._ops("await_inclusion") if op.verified is True
        )

    @property
    def submissions_ok(self) -> int:
        return sum(
            1 for op in self._ops("add_pre_chain") if op.status == 200
        )

    @property
    def submissions_rejected(self) -> int:
        return sum(
            1 for op in self._ops("add_pre_chain") if op.status == 429
        )

    @property
    def submissions_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.submissions_ok / self.wall_seconds

    @property
    def reads_ok(self) -> int:
        return sum(1 for op in self._ops(*READ_OPS) if op.status == 200)

    @property
    def reads_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.reads_ok / self.wall_seconds

    @property
    def verified_ok(self) -> int:
        return sum(1 for op in self._ops() if op.verified is True)

    @property
    def verification_failures(self) -> int:
        return sum(
            1
            for op in self._ops()
            if op.status == 200 and op.verified is False
        )

    @property
    def transport_errors(self) -> int:
        return sum(1 for op in self._ops() if op.status == -1)

    def status_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for op in self._ops():
            counts[op.status] = counts.get(op.status, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 2,
            "executor": self.executor,
            "workers": self.workers,
            "clients": self.clients,
            "wall_seconds": self.wall_seconds,
            "reads_ok": self.reads_ok,
            "reads_per_sec": self.reads_per_sec,
            "read_p50_s": self.read_p50,
            "read_p99_s": self.read_p99,
            "submissions_ok": self.submissions_ok,
            "submissions_rejected": self.submissions_rejected,
            "submissions_per_sec": self.submissions_per_sec,
            "sct_p50_s": self.sct_p50,
            "sct_p99_s": self.sct_p99,
            "merge_lag_max_s": self.merge_lag_max_s,
            "merge_lag_mean_s": self.merge_lag_mean_s,
            "inclusions_verified": self.inclusions_verified,
            "verified_ok": self.verified_ok,
            "verification_failures": self.verification_failures,
            "transport_errors": self.transport_errors,
            "status_counts": {
                str(status): count
                for status, count in self.status_counts().items()
            },
        }

    def render(self) -> str:
        lines = [
            f"Load storm — {self.clients} clients over {self.executor} "
            f"pool ({self.workers} workers), {self.wall_seconds:.2f}s wall",
            f"  reads        {self.reads_ok:6d} ok   "
            f"{self.reads_per_sec:8.1f}/s   "
            f"p50 {self.read_p50 * 1e3:7.2f} ms   "
            f"p99 {self.read_p99 * 1e3:7.2f} ms",
            f"  submissions  {self.submissions_ok:6d} ok   "
            f"{self.submissions_per_sec:8.1f}/s   "
            f"{self.submissions_rejected} rejected (429)",
            f"  sct latency  p50 {self.sct_p50 * 1e3:7.2f} ms   "
            f"p99 {self.sct_p99 * 1e3:7.2f} ms",
            f"  verification {self.verified_ok:6d} ok   "
            f"{self.verification_failures} failed   "
            f"{self.transport_errors} transport errors",
        ]
        if self.merge_lags:
            lines.append(
                f"  merge lag    max {self.merge_lag_max_s * 1e3:7.2f} ms   "
                f"mean {self.merge_lag_mean_s * 1e3:7.2f} ms   "
                f"{self.inclusions_verified} submitters fully included"
            )
        lines += [
            "  statuses     "
            + "  ".join(
                f"{status}:{count}"
                for status, count in self.status_counts().items()
            ),
        ]
        return "\n".join(lines)


def run_storm(
    plans: Sequence[ClientPlan],
    base_url: str,
    *,
    executor: str = "thread",
    workers: int = 8,
    timeout_s: float = 30.0,
    trace_seed: Optional[int] = None,
) -> LoadStormReport:
    """Execute every client plan against a served log, concurrently.

    ``executor="thread"`` runs clients on a thread pool (cheap,
    default), ``"process"`` on a process pool (real parallel clients —
    plans are picklable by construction), ``"serial"`` in-line (for
    debugging).  Requests inside one client stay ordered; across
    clients everything races, exactly like the real population.

    ``trace_seed`` turns on client-side tracing: every op runs under a
    ``storm.<kind>`` root span, the trace context crosses the HTTP
    boundary via the traceparent header, and each
    :class:`ClientResult` ships its closed spans back as picklable
    records (even from process-pool workers).
    """
    if executor not in STORM_EXECUTORS:
        raise ValueError(
            f"executor must be one of {STORM_EXECUTORS}, got {executor!r}"
        )
    started = time.perf_counter()
    if executor == "serial" or workers <= 1 or len(plans) <= 1:
        results = [
            _execute_plan(base_url, plan, timeout_s, trace_seed)
            for plan in plans
        ]
    else:
        pool_cls = (
            ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        )
        with pool_cls(max_workers=min(workers, len(plans))) as pool:
            futures = [
                pool.submit(_execute_plan, base_url, plan, timeout_s,
                            trace_seed)
                for plan in plans
            ]
            results = [future.result() for future in futures]
    wall = time.perf_counter() - started
    return LoadStormReport(
        wall_seconds=wall,
        executor=executor,
        workers=workers,
        clients=len(plans),
        results=results,
    )


# -- monitor swarms ------------------------------------------------------------


@dataclass(frozen=True)
class MonitorSwarmConfig:
    """Shape of a light-weight monitor population."""

    seed: int = 2018
    monitors: int = 100
    domains_per_monitor: int = 2
    page_size: int = 512
    timeout_s: float = 30.0
    workers: int = 8


def plan_swarm_subscriptions(
    config: MonitorSwarmConfig, domain_pool: Sequence[str]
) -> List[Tuple[str, Tuple[str, ...]]]:
    """Deterministic ``(monitor name, subscribed domains)`` pairs.

    Each monitor samples ``domains_per_monitor`` domains from the pool
    through its own forked stream, so the subscription map depends only
    on the seed — not on population size or build order.
    """
    pool = sorted(set(domain_pool))
    if not pool:
        raise ValueError("plan_swarm_subscriptions needs a non-empty pool")
    rng = SeededRng(config.seed, "monitor-swarm")
    count = min(config.domains_per_monitor, len(pool))
    return [
        (
            f"lw-monitor-{m}",
            tuple(sorted(rng.fork(f"subscribe:{m}").sample(pool, count))),
        )
        for m in range(config.monitors)
    ]


class MonitorSwarm:
    """A monitor population polling one served log over real HTTP.

    ``mode="lightweight"`` runs :class:`~repro.ct.monitor.LightweightMonitor`
    members (proof subscription: digests + matching bodies only);
    ``mode="replay"`` runs the equal-coverage control population of
    :class:`~repro.ct.monitor.BatchMonitor` members that download every
    entry — the cost baseline the paper's §5/§6 monitors pay.  Both
    modes track the same subscriptions, so their observed
    subscribed-domain entry sets are directly comparable.
    """

    MODES = ("lightweight", "replay")

    def __init__(
        self,
        base_url: str,
        log_name: str,
        subscriptions: Sequence[Tuple[str, Sequence[str]]],
        *,
        mode: str = "lightweight",
        key: Optional["_crypto.KeyPair"] = None,
        seed: int = 2018,
        page_size: int = 512,
        timeout_s: float = 30.0,
        workers: int = 8,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if not subscriptions:
            raise ValueError("MonitorSwarm needs at least one subscription")
        self.mode = mode
        self.log_name = log_name
        self.workers = workers
        rng = SeededRng(seed, f"monitor-swarm:{mode}")
        self.members: List[Tuple[object, HttpTransport, Tuple[str, ...]]] = []
        for name, domains in subscriptions:
            transport = HttpTransport(
                base_url,
                log_name,
                page_size=page_size,
                timeout=timeout_s,
                client_id=name,
            )
            monitor: object
            if mode == "lightweight":
                monitor = LightweightMonitor(name, domains, key=key)
            else:
                monitor = BatchMonitor(name, rng)
            self.members.append((monitor, transport, tuple(domains)))
        #: Per-monitor indices of *subscribed-domain* entries observed.
        self.observed: Dict[str, Set[int]] = {
            name: set() for name, _ in subscriptions
        }

    def poll(self, now: datetime) -> int:
        """One poll round across the population; returns new matches."""

        def run(member: Tuple[object, HttpTransport, Tuple[str, ...]]):
            monitor, transport, domains = member
            if self.mode == "lightweight":
                return monitor, domains, monitor.poll(transport, now)  # type: ignore[attr-defined]
            return monitor, domains, monitor.observe(transport)  # type: ignore[attr-defined]

        if self.workers > 1 and len(self.members) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.workers, len(self.members))
            ) as pool:
                results = list(pool.map(run, self.members))
        else:
            results = [run(member) for member in self.members]
        matched = 0
        for monitor, domains, observations in results:
            for obs in observations:
                if any(
                    domain_matches(domain, name)
                    for name in obs.dns_names
                    for domain in domains
                ):
                    self.observed[monitor.name].add(obs.entry.index)  # type: ignore[attr-defined]
                    matched += 1
        return matched

    def wire_totals(self) -> Dict[str, int]:
        """Cumulative wire cost summed over every member transport."""
        totals = {"requests": 0, "entries": 0, "bytes": 0}
        for _, transport, _ in self.members:
            stats = transport.stats()
            for key in totals:
                totals[key] += stats[key]
        return totals

    def findings(self) -> List["AuditFinding"]:
        """Verification findings across the population (lightweight mode)."""
        out: List["AuditFinding"] = []
        for monitor, _, _ in self.members:
            out.extend(getattr(monitor, "findings", []))
        return out

    def missed_subscribed(self, log: CTLog) -> int:
        """Subscribed-domain entries of ``log`` a member failed to see.

        The zero-miss gate: every entry whose certificate claims a name
        under a member's subscription must appear in that member's
        observed set.
        """
        missed = 0
        for monitor, _, domains in self.members:
            expected = {
                entry.index
                for entry in log.entries
                if any(
                    domain_matches(domain, name)
                    for name in entry.certificate.dns_names()
                    for domain in domains
                )
            }
            missed += len(
                expected - self.observed[monitor.name]  # type: ignore[attr-defined]
            )
        return missed
