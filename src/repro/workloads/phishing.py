"""Phishing-domain workload (Section 5, Table 3).

Generates CT-visible domain names in three populations:

* **phishing** domains imitating the five services of Table 3 with the
  squatting grammars visible in the paper's examples
  (``appleid.apple.com-7etr6eti.gq``, ``paypal.com-account-security.money``,
  ``www-hotmail-login.live``, ``accounts.google.co.am``,
  ``www.ebay.co.uk.dll7.bid``), plus government-taxation impersonations
  (ATO / HMRC / IRS);
* **legitimate** names: real subdomains of the targeted services, which
  the detector must exclude;
* **benign** names: unrelated domains, including near-miss negatives
  like ``snapple.com`` that a naive substring match would flag.

Counts are calibrated to Table 3 (Apple 63k, PayPal 58k, Microsoft 4k,
Google 1k, eBay <1k) at a configurable scale, with the paper's suffix
affinities: 2/3 of Apple phish on com/ga/info/tk/ml, 28 % of eBay
phish on bid/review, 4 % of Microsoft phish on live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.rng import SeededRng


@dataclass(frozen=True)
class PhishingService:
    """One impersonation target."""

    name: str
    legitimate_domains: Tuple[str, ...]
    #: Tokens the squatting grammars embed.
    lure_tokens: Tuple[str, ...]
    real_count: int
    #: (suffix, share) pairs; the remainder spreads over generic suffixes.
    suffix_affinity: Tuple[Tuple[str, float], ...] = ()


SERVICES: Tuple[PhishingService, ...] = (
    PhishingService(
        "Apple",
        ("apple.com", "icloud.com"),
        ("appleid.apple.com", "apple.com", "icloud.com", "appleid"),
        63_000,
        (("com", 0.25), ("ga", 0.13), ("info", 0.10), ("tk", 0.11), ("ml", 0.08)),
    ),
    PhishingService(
        "PayPal",
        ("paypal.com",),
        ("paypal.com", "paypal"),
        58_000,
        (("money", 0.08), ("com", 0.30), ("tk", 0.10)),
    ),
    PhishingService(
        "Microsoft",
        ("microsoft.com", "live.com", "hotmail.com", "outlook.com"),
        ("hotmail", "outlook", "login.live", "microsoft"),
        4_000,
        (("live", 0.04), ("com", 0.40)),
    ),
    PhishingService(
        "Google",
        ("google.com", "gmail.com"),
        ("accounts.google", "google", "gmail"),
        1_000,
        (("co.am", 0.06), ("com", 0.40)),
    ),
    PhishingService(
        "eBay",
        ("ebay.com", "ebay.co.uk"),
        ("ebay.co.uk", "ebay.com", "ebay"),
        800,
        (("bid", 0.16), ("review", 0.12), ("com", 0.30)),
    ),
)

#: Government-taxation impersonations observed in the paper.
GOVERNMENT_EXAMPLES: Tuple[str, ...] = (
    "ato.gov.au.eng-atorefund.com",
    "hmrc.gov.uk-refund.cf",
    "refund.irs.gov.my-irs.com",
)

GENERIC_SUFFIXES: Tuple[str, ...] = (
    "com", "info", "ga", "tk", "ml", "cf", "gq", "xyz", "online", "top", "site",
)

#: Near-miss benign names a naive substring detector would flag.
TRICKY_BENIGN: Tuple[str, ...] = (
    "snapple.com",
    "pineapple-farm.org",
    "grapple.net",
    "scrapbook-fans.info",
    "nonstopgoogles.mistyped.example-blog.com",
)

DEFAULT_PHISHING_SCALE = 1.0 / 100.0


@dataclass
class PhishingCorpus:
    """The generated name populations plus ground truth."""

    names: List[str]
    #: name -> service for every generated phishing name.
    truth: Dict[str, str] = field(default_factory=dict)
    government_names: List[str] = field(default_factory=list)
    legitimate_names: List[str] = field(default_factory=list)
    benign_names: List[str] = field(default_factory=list)
    scale: float = DEFAULT_PHISHING_SCALE

    def phishing_count(self, service: str) -> int:
        return sum(1 for s in self.truth.values() if s == service)


class PhishingWorkload:
    """Generate the Table 3 phishing corpus."""

    def __init__(
        self,
        *,
        scale: float = DEFAULT_PHISHING_SCALE,
        seed: int = 5,
        benign_count: int = 4_000,
        legitimate_per_service: int = 40,
        government_count: int = 30,
    ) -> None:
        self.scale = scale
        self._rng = SeededRng(seed, "phishing")
        self.benign_count = benign_count
        self.legitimate_per_service = legitimate_per_service
        self.government_count = government_count

    def build(self) -> PhishingCorpus:
        corpus = PhishingCorpus(names=[], scale=self.scale)
        for service in SERVICES:
            self._generate_service(service, corpus)
        self._generate_government(corpus)
        self._generate_legitimate(corpus)
        self._generate_benign(corpus)
        self._rng.fork("shuffle").shuffle(corpus.names)
        return corpus

    # -- generators ----------------------------------------------------------

    def _pick_suffix(self, service: PhishingService, rng: SeededRng) -> str:
        roll = rng.random()
        acc = 0.0
        for suffix, share in service.suffix_affinity:
            acc += share
            if roll < acc:
                return suffix
        return rng.choice(GENERIC_SUFFIXES)

    def _generate_service(
        self, service: PhishingService, corpus: PhishingCorpus
    ) -> None:
        rng = self._rng.fork(f"svc:{service.name}")
        count = max(3, int(service.real_count * self.scale))
        for index in range(count):
            suffix = self._pick_suffix(service, rng)
            lure = rng.choice(service.lure_tokens)
            style = rng.randint(0, 3)
            if style == 0:
                # appleid.apple.com-7etr6eti.gq
                name = f"{lure}-{rng.token(8)}.{suffix}"
            elif style == 1:
                # paypal.com-account-security.money
                filler = rng.choice(("account-security", "verify", "signin-alert", "support-id"))
                name = f"{lure}-{filler}{rng.token(3)}.{suffix}"
            elif style == 2:
                # www-hotmail-login.live
                name = f"www-{lure.replace('.', '-')}-login{rng.token(3)}.{suffix}"
            else:
                # www.ebay.co.uk.dll7.bid / accounts.google.co.am
                name = f"www.{lure}.{rng.token(4)}{index % 10}.{suffix}"
            name = name.lower()
            corpus.names.append(name)
            corpus.truth[name] = service.name

    def _generate_government(self, corpus: PhishingCorpus) -> None:
        rng = self._rng.fork("gov")
        corpus.government_names.extend(GOVERNMENT_EXAMPLES)
        templates = (
            "ato.gov.au.{token}-refund.com",
            "hmrc.gov.uk-{token}.cf",
            "refund.irs.gov.{token}-irs.com",
        )
        for index in range(self.government_count - len(GOVERNMENT_EXAMPLES)):
            name = templates[index % len(templates)].format(token=rng.token(5))
            corpus.government_names.append(name)
        corpus.names.extend(corpus.government_names)

    def _generate_legitimate(self, corpus: PhishingCorpus) -> None:
        rng = self._rng.fork("legit")
        labels = ("www", "accounts", "id", "login", "mail", "support", "store")
        for service in SERVICES:
            for domain in service.legitimate_domains:
                for _ in range(self.legitimate_per_service // len(service.legitimate_domains) + 1):
                    name = f"{rng.choice(labels)}.{domain}"
                    corpus.legitimate_names.append(name)
                    corpus.names.append(name)

    def _generate_benign(self, corpus: PhishingCorpus) -> None:
        rng = self._rng.fork("benign")
        corpus.benign_names.extend(TRICKY_BENIGN)
        for index in range(self.benign_count - len(TRICKY_BENIGN)):
            corpus.benign_names.append(
                f"{rng.token(7)}{index}.{rng.choice(GENERIC_SUFFIXES)}"
            )
        corpus.names.extend(corpus.benign_names)
