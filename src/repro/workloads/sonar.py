"""A Sonar-Forward-DNS-like dataset (Sections 4.1 and 4.3).

Rapid7's Sonar database contains FQDNs with A-lookup results.  The
paper's calibration points, reproduced here:

* 82 % of the study's registrable domains also occur on the Sonar
  list (within the same public suffix);
* only 21 % of the study's subdomain *labels* appear as Sonar labels;
* of the 18.8M FQDNs newly discovered via CT construction, only 1.1M
  (~5.9 %) were already known to Sonar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.util.rng import SeededRng
from repro.workloads.domains import DomainCorpus

#: Fraction of the study's registrable domains present in Sonar.
DOMAIN_OVERLAP = 0.82
#: Fraction of the study's subdomain labels present as Sonar labels.
LABEL_OVERLAP = 0.21
#: Fraction of genuinely existing constructed FQDNs Sonar already knows.
DISCOVERED_KNOWN_SHARE = 0.059


@dataclass
class SonarDataset:
    """The synthetic Sonar forward-DNS snapshot."""

    fqdns: Set[str]
    labels: Set[str]

    def knows(self, fqdn: str) -> bool:
        return fqdn.lower() in self.fqdns

    def known_among(self, fqdns: Iterable[str]) -> List[str]:
        return [name for name in fqdns if self.knows(name)]


class SonarWorkload:
    """Build the Sonar dataset relative to a domain corpus."""

    def __init__(self, seed: int = 55) -> None:
        self._rng = SeededRng(seed, "sonar")

    def build(
        self,
        corpus: DomainCorpus,
        existing_constructed_fqdns: Optional[Iterable[str]] = None,
    ) -> SonarDataset:
        """Assemble the dataset.

        ``existing_constructed_fqdns`` — the ground-truth set of
        Section 4.3 candidate FQDNs that really exist; Sonar gets the
        calibrated ~5.9 % of them.
        """
        rng = self._rng
        fqdns: Set[str] = set()
        labels: Set[str] = set()

        # 82 % of the corpus's registrable domains, as bare entries.
        shared_domains = [
            domain
            for domain in corpus.registrable_domains
            if rng.fork(f"dom:{domain}").chance(DOMAIN_OVERLAP)
        ]
        fqdns.update(shared_domains)

        # Sonar's label vocabulary: 21 % of the corpus's labels, plus
        # Sonar-only labels the CT corpus never saw.
        ct_labels = sorted(corpus.distinct_ct_labels())
        shared_count = max(1, int(len(ct_labels) * LABEL_OVERLAP))
        shared_labels = rng.fork("labels").sample(ct_labels, shared_count)
        labels.update(shared_labels)
        sonar_only = [f"sonar-{rng.token(5)}{i}" for i in range(len(ct_labels) * 3)]
        labels.update(sonar_only)

        # Labelled Sonar entries over the shared domains.
        label_pool = shared_labels + sonar_only
        entry_rng = rng.fork("entries")
        for domain in shared_domains[:: max(1, len(shared_domains) // 20_000)]:
            for _ in range(entry_rng.randint(0, 2)):
                fqdns.add(f"{entry_rng.choice(label_pool)}.{domain}")

        # The calibrated slice of genuinely existing constructed names.
        if existing_constructed_fqdns is not None:
            known_rng = rng.fork("known")
            for name in existing_constructed_fqdns:
                if known_rng.chance(DISCOVERED_KNOWN_SHARE):
                    fqdns.add(name.lower())
        return SonarDataset(fqdns=fqdns, labels=labels)
