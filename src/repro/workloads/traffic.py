"""The UCB-uplink connection mix (Sections 3.1-3.2).

The paper observed 26.5G outgoing TLS connections between 2017-04-26
and 2018-05-23; 32.61 % carried an SCT (21.40 % embedded in the
certificate, 11.21 % in the TLS extension, ~0.01 % in stapled OCSP),
with channel overlaps being rare, 66.76 % of clients signalling SCT
support, and per-log observation shares as in Table 1.

This workload reproduces that stream at a configurable scale: a
population of *site groups*, each with a fixed SCT-delivery
configuration whose certificates/SCTs are created through the real
CA -> log pipeline, and per-day connection volumes assigned by the
groups' calibrated shares.  Every simulated connection carries a
weight (real connections represented), so all downstream statistics
match the paper's units.

The Figure 2 peaks — "caused by large amounts of requests to
graph.facebook.com" — are reproduced by multiplying the facebook
group's share on a handful of days.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ct.log import CTLog
from repro.ct.loglist import build_default_logs
from repro.ct.sct import SignedCertificateTimestamp
from repro.tls.connection import TlsConnection
from repro.workloads.clients import ClientPopulation
from repro.util.rng import SeededRng
from repro.util.timeutil import PASSIVE_END, PASSIVE_START, date_range, start_of_day
from repro.x509.ca import CertificateAuthority, IssuanceRequest
from repro.x509.certificate import Certificate

#: Total real connections over the capture (paper: 26.5G, 25.6G on 443).
TOTAL_REAL_CONNECTIONS = 26_500_000_000
#: Fraction of clients signalling SCT support (paper Section 3.2);
#: emerges from the browser mix in :mod:`repro.workloads.clients`.
CLIENT_SUPPORT_SHARE = 0.6676

#: Days on which graph.facebook.com produced the Figure 2 peaks.
FACEBOOK_PEAK_DAYS: Tuple[date, ...] = (
    date(2017, 7, 18),
    date(2017, 9, 6),
    date(2017, 11, 22),
    date(2018, 1, 15),
    date(2018, 3, 7),
    date(2018, 5, 2),
)
FACEBOOK_PEAK_MULTIPLIER = 10.0


@dataclass(frozen=True)
class SiteGroup:
    """A population of sites sharing one SCT-delivery configuration.

    ``share`` is the fraction of all connections the group receives.
    ``cert_logs`` makes the group's certificate carry embedded SCTs
    from those logs; ``tls_logs`` / ``ocsp_logs`` configure the other
    channels.
    """

    name: str
    hostname: str
    share: float
    cert_logs: Tuple[str, ...] = ()
    tls_logs: Tuple[str, ...] = ()
    ocsp_logs: Tuple[str, ...] = ()
    peak_days: Tuple[date, ...] = ()
    peak_multiplier: float = 1.0


def _normalized_groups() -> Tuple[SiteGroup, ...]:
    """The calibrated site-group catalog.

    Raw weights below are billions of connections derived from
    Table 1's per-log observation counts; the constructor rescales the
    embedded-SCT groups so the *connection-share* targets of Section
    3.2 (21.40 % cert, 11.21 % TLS, ~0.0075 % OCSP) hold exactly while
    Table 1's per-log shares are preserved.
    """
    cert_raw = [
        # (name, conns in G, embedded-SCT logs)
        ("google-web", 1.05, ("Google Pilot log", "Google Rocketeer log", "Google Aviator log")),
        ("google-apis", 1.06, ("Google Pilot log", "Google Rocketeer log", "Google Skydiver log")),
        ("symantec-vega-sites", 0.66, ("Symantec log", "Symantec Vega log", "Google Pilot log")),
        ("symantec-venafi-sites", 0.99, ("Symantec log", "Venafi log", "Google Pilot log")),
        ("symantec-sites", 1.63, ("Symantec log", "Google Pilot log")),
        ("digicert-sites", 1.10, ("DigiCert Log Server", "Google Rocketeer log")),
        ("digicert2-sites", 0.67, ("DigiCert Log Server", "DigiCert Log Server 2")),
        ("comodo-sites", 0.078, ("Comodo Mammoth CT log", "Google Pilot log")),
        ("letsencrypt-sites", 0.009, ("Cloudflare Nimbus2018 Log", "Google Icarus log")),
        ("letsencrypt-2020", 0.004, ("Cloudflare Nimbus2020 Log", "Google Icarus log")),
        ("comodo-sabre-sites", 0.003, ("Comodo Sabre CT log", "Comodo Mammoth CT log")),
        ("certly-sites", 0.0015, ("Certly.IO log", "Google Pilot log")),
    ]
    tls_raw = [
        # (name, conns in G, TLS-extension logs)
        ("facebook-graph", 1.42, ("Symantec log", "Google Rocketeer log")),
        ("facebook-web", 1.02, ("Symantec log", "Google Pilot log")),
        ("ext-mammoth", 0.225, ("Google Pilot log", "Comodo Mammoth CT log")),
        ("ext-sabre", 0.12, ("Google Pilot log", "Comodo Sabre CT log")),
        ("ext-venafi", 0.149, ("Google Pilot log", "Venafi log")),
        ("ext-skydiver", 0.054, ("Google Pilot log", "Google Skydiver log")),
        ("ext-digicert2", 0.013, ("DigiCert Log Server 2", "Symantec Vega log")),
    ]
    total = 26.5
    cert_target, tls_target = 0.2140, 0.1121
    cert_sum = sum(w for _, w, _ in cert_raw)
    tls_sum = sum(w for _, w, _ in tls_raw)
    cert_factor = cert_target * total / cert_sum
    tls_factor = tls_target * total / tls_sum

    groups: List[SiteGroup] = []
    for name, weight, logs in cert_raw:
        groups.append(
            SiteGroup(
                name=name,
                hostname=f"www.{name}.com",
                share=weight * cert_factor / total,
                cert_logs=logs,
            )
        )
    for name, weight, logs in tls_raw:
        peaks = FACEBOOK_PEAK_DAYS if name == "facebook-graph" else ()
        groups.append(
            SiteGroup(
                name=name,
                hostname="graph.facebook.com" if name == "facebook-graph" else f"www.{name}.com",
                share=weight * tls_factor / total,
                tls_logs=logs,
                peak_days=peaks,
                peak_multiplier=FACEBOOK_PEAK_MULTIPLIER if peaks else 1.0,
            )
        )
    # Channel overlaps (Section 3.2): rare by construction.
    groups.append(
        SiteGroup(
            name="overlap-cert-tls",  # 30.8K connections
            hostname="www.overlap-cert-tls.com",
            share=30_800 / TOTAL_REAL_CONNECTIONS,
            cert_logs=("Google Pilot log", "Google Rocketeer log"),
            tls_logs=("Google Pilot log", "Google Rocketeer log"),
        )
    )
    groups.append(
        SiteGroup(
            name="overlap-cert-ocsp",  # 29 connections
            hostname="www.overlap-cert-ocsp.com",
            share=29 / TOTAL_REAL_CONNECTIONS,
            cert_logs=("DigiCert Log Server",),
            ocsp_logs=("DigiCert Log Server",),
        )
    )
    groups.append(
        SiteGroup(
            name="overlap-ocsp-tls",  # 1.5M connections
            hostname="www.overlap-ocsp-tls.com",
            share=1_500_000 / TOTAL_REAL_CONNECTIONS,
            tls_logs=("DigiCert Log Server", "Google Pilot log"),
            ocsp_logs=("DigiCert Log Server",),
        )
    )
    groups.append(
        SiteGroup(
            name="ocsp-only",  # remainder of the ~2M OCSP connections
            hostname="www.ocsp-only.com",
            share=500_000 / TOTAL_REAL_CONNECTIONS,
            ocsp_logs=("DigiCert Log Server",),
        )
    )
    # Everything else: connections without any SCT.
    no_sct_share = 1.0 - sum(group.share for group in groups)
    groups.append(
        SiteGroup(
            name="plain-web",
            hostname="www.plain-web.com",
            share=no_sct_share,
        )
    )
    return tuple(groups)


DEFAULT_SITE_GROUPS: Tuple[SiteGroup, ...] = _normalized_groups()


@dataclass
class _GroupRuntime:
    """A group's instantiated certificate and channel SCTs."""

    group: SiteGroup
    certificate: Certificate
    tls_scts: Tuple[SignedCertificateTimestamp, ...]
    ocsp_scts: Tuple[SignedCertificateTimestamp, ...]


class UplinkTrafficWorkload:
    """Generates the scaled UCB-uplink connection stream."""

    def __init__(
        self,
        *,
        connections_per_day: int = 1_200,
        seed: int = 42,
        start: Optional[date] = None,
        end: Optional[date] = None,
        groups: Sequence[SiteGroup] = DEFAULT_SITE_GROUPS,
        logs: Optional[Dict[str, CTLog]] = None,
        key_bits: int = 256,
        clients: Optional[ClientPopulation] = None,
    ) -> None:
        self.start = start or PASSIVE_START
        self.end = end or PASSIVE_END
        self.connections_per_day = connections_per_day
        self.groups = list(groups)
        self._rng = SeededRng(seed, "uplink")
        # The client mix produces the paper's 66.76 % SCT-support share.
        self.clients = clients or ClientPopulation(seed=seed)
        self.logs = logs if logs is not None else build_default_logs(
            with_capacities=False, key_bits=key_bits
        )
        self._ca = CertificateAuthority("Traffic CA", key_bits=key_bits)
        window_days = (self.end - self.start).days + 1
        full_days = (PASSIVE_END - PASSIVE_START).days + 1
        # One simulated connection stands for this many real ones.  The
        # factor is defined over the paper's full 393-day capture, so a
        # shorter window represents the matching *slice* of the capture
        # (window total ~= 26.5G x window/393), not the whole thing.
        self.weight_per_connection = max(
            1,
            round(TOTAL_REAL_CONNECTIONS / (full_days * connections_per_day)),
        )
        # Groups whose expected simulated count over the full capture is
        # tiny (the rare channel overlaps: 29 .. 1.5M real connections)
        # cannot be represented by weight-W sampling.  They are emitted
        # as a fixed number of low-weight records spread over the window.
        self._runtimes = []
        self._rare_runtimes: List[Tuple[_GroupRuntime, int, List[date]]] = []
        rare_records = min(12, window_days)
        for group in self.groups:
            runtime = self._instantiate(group)
            expected_sim_full = group.share * connections_per_day * full_days
            if expected_sim_full < 30:
                real_in_window = (
                    group.share * TOTAL_REAL_CONNECTIONS * window_days / full_days
                )
                per_record_weight = max(1, round(real_in_window / rare_records))
                step = max(1, window_days // rare_records)
                days = [
                    self.start + timedelta(days=offset)
                    for offset in range(0, window_days, step)
                ][:rare_records]
                self._rare_runtimes.append((runtime, per_record_weight, days))
            else:
                self._runtimes.append(runtime)

    @property
    def certificate_authority(self) -> CertificateAuthority:
        return self._ca

    def _instantiate(self, group: SiteGroup) -> _GroupRuntime:
        """Create the group's certificate/SCTs via the real pipeline."""
        issued_at = start_of_day(self.start) - timedelta(days=30)
        cert_logs = [self.logs[name] for name in group.cert_logs]
        pair = self._ca.issue(
            IssuanceRequest(
                (group.hostname, group.hostname.replace("www.", "", 1)),
                lifetime_days=730,
                embed_scts=bool(cert_logs),
            ),
            cert_logs,
            issued_at,
        )
        tls_scts = tuple(
            self.logs[name].add_chain(pair.final_certificate, issued_at)
            for name in group.tls_logs
        )
        ocsp_scts = tuple(
            self.logs[name].add_chain(pair.final_certificate, issued_at)
            for name in group.ocsp_logs
        )
        return _GroupRuntime(group, pair.final_certificate, tls_scts, ocsp_scts)

    # -- stream generation --------------------------------------------------

    def _day_shares(self, day: date) -> List[float]:
        shares = []
        for runtime in self._runtimes:
            group = runtime.group
            share = group.share
            if day in group.peak_days:
                share *= group.peak_multiplier
            shares.append(share)
        total = sum(shares)
        return [share / total for share in shares]

    def connections_for_day(self, day: date) -> Iterator[TlsConnection]:
        """Yield the day's simulated connections."""
        rng = self._rng.fork(day.isoformat())
        shares = self._day_shares(day)
        counts = _apportion(shares, self.connections_per_day, rng)
        midnight = start_of_day(day)
        for runtime, count in zip(self._runtimes, counts):
            for _ in range(count):
                moment = midnight + timedelta(seconds=rng.uniform(0, 86_399))
                yield TlsConnection(
                    time=moment,
                    server_name=runtime.group.hostname,
                    server_ip="198.51.100.10",
                    certificate=runtime.certificate,
                    tls_extension_scts=runtime.tls_scts,
                    ocsp_scts=runtime.ocsp_scts,
                    client_signals_sct_support=self.clients.draw().signals_sct_support,
                    weight=self.weight_per_connection,
                )
        for runtime, weight, days in self._rare_runtimes:
            if day in days:
                yield TlsConnection(
                    time=midnight + timedelta(seconds=rng.uniform(0, 86_399)),
                    server_name=runtime.group.hostname,
                    server_ip="198.51.100.10",
                    certificate=runtime.certificate,
                    tls_extension_scts=runtime.tls_scts,
                    ocsp_scts=runtime.ocsp_scts,
                    client_signals_sct_support=self.clients.draw().signals_sct_support,
                    weight=weight,
                )

    def stream(self) -> Iterator[TlsConnection]:
        """The whole capture period, day by day."""
        for day in date_range(self.start, self.end):
            yield from self.connections_for_day(day)


def _apportion(shares: Sequence[float], total: int, rng: SeededRng) -> List[int]:
    """Integer apportionment of ``total`` by ``shares``.

    Largest-remainder rounding, with a stochastic twist: groups whose
    expected count is below one (the rare overlap groups) appear with
    the corresponding probability, so over many days their aggregate
    share converges to the target.
    """
    exact = [share * total for share in shares]
    counts = [int(value) for value in exact]
    remainders = [value - count for value, count in zip(exact, counts)]
    missing = total - sum(counts)
    order = sorted(range(len(shares)), key=lambda i: -remainders[i])
    for rank in range(len(order)):
        if missing <= 0:
            break
        index = order[rank]
        # Probabilistic inclusion keeps sub-one-count groups fair.
        if remainders[index] >= 1.0 or rng.chance(remainders[index]):
            counts[index] += 1
            missing -= 1
    # Any residue lands on the largest group (the no-SCT tail).
    if missing > 0:
        counts[max(range(len(shares)), key=lambda i: shares[i])] += missing
    return counts
