"""Synthetic subbrute/dnsrecon wordlists (Section 4.3).

The paper tested whether the wordlists shipped by two popular
subdomain-enumeration tools would find CT-logged labels:

* subbrute ships 101k labels, of which just **16** occur as subdomain
  labels in logged certificates;
* dnsrecon ships 1.9k names, of which just **12** occur.

These generators produce lists with exactly those overlap
characteristics against a given CT label set; the non-overlapping
entries are the kind of improbable tokens the paper's "visual
inspection" dismissed.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.util.rng import SeededRng

SUBBRUTE_SIZE = 101_000
SUBBRUTE_CT_OVERLAP = 16
DNSRECON_SIZE = 1_900
DNSRECON_CT_OVERLAP = 12


def _wordlist(
    ct_labels: Set[str],
    rng: SeededRng,
    size: int,
    overlap: int,
    junk_prefix: str,
) -> List[str]:
    ordered_ct = sorted(ct_labels)
    overlapping = (
        rng.sample(ordered_ct, overlap)
        if overlap <= len(ordered_ct)
        else list(ordered_ct)
    )
    words: List[str] = list(overlapping)
    index = 0
    while len(words) < size:
        token = f"{junk_prefix}-{rng.token(6)}{index}"
        if token not in ct_labels:
            words.append(token)
        index += 1
    rng.shuffle(words)
    return words


def subbrute_wordlist(
    ct_labels: Iterable[str], seed: int = 7
) -> List[str]:
    """A subbrute-like list: 101k labels, 16 of them CT-observed."""
    return _wordlist(
        set(ct_labels),
        SeededRng(seed, "subbrute"),
        SUBBRUTE_SIZE,
        SUBBRUTE_CT_OVERLAP,
        "sb",
    )


def dnsrecon_wordlist(
    ct_labels: Iterable[str], seed: int = 7
) -> List[str]:
    """A dnsrecon-like list: 1.9k names, 12 of them CT-observed."""
    return _wordlist(
        set(ct_labels),
        SeededRng(seed, "dnsrecon"),
        DNSRECON_SIZE,
        DNSRECON_CT_OVERLAP,
        "dr",
    )
