"""X.509-like certificate substrate.

This package models the parts of X.509 the paper's analyses touch:

* a deterministic small-RSA signature scheme (:mod:`repro.x509.crypto`)
  so SCT signatures are *really* verified, not assumed;
* a certificate model with subject/issuer, SAN entries (DNS names and
  IP addresses), extensions with explicit ordering, and a canonical
  TBS ("to-be-signed") serialization (:mod:`repro.x509.certificate`);
* certification authorities that run the precertificate flow of
  RFC 6962 and can be configured to reproduce the four real-world CA
  bugs discussed in Section 3.4 (:mod:`repro.x509.ca`).
"""

from repro.x509.certificate import (
    Certificate,
    Extension,
    GeneralName,
    POISON_EXTENSION_OID,
    SCT_LIST_EXTENSION_OID,
    SanType,
)
from repro.x509.crypto import KeyPair, sha256, verify, sign

_LAZY_CA_EXPORTS = ("CertificateAuthority", "IssuanceBug", "IssuanceRequest", "IssuedPair")


def __getattr__(name):
    # repro.x509.ca imports repro.ct (for log submission), which imports
    # this package for crypto — resolve the cycle by loading ca lazily.
    if name in _LAZY_CA_EXPORTS:
        from repro.x509 import ca

        return getattr(ca, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "Extension",
    "GeneralName",
    "IssuanceRequest",
    "IssuedPair",
    "KeyPair",
    "POISON_EXTENSION_OID",
    "SCT_LIST_EXTENSION_OID",
    "SanType",
    "sha256",
    "sign",
    "verify",
]
