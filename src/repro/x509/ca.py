"""Certification authorities and the precertificate issuance flow.

The issuance pipeline mirrors what real CAs do under RFC 6962:

1. build the TBS certificate,
2. add the poison extension to form a *precertificate*,
3. submit the precertificate to one or more CT logs and collect SCTs,
4. strip the poison, embed the SCT list extension, sign the *final*
   certificate.

Step 4 is where real CAs introduced the bugs of Section 3.4: any
difference between the TBS bytes of the precertificate and the final
certificate (beyond the poison/SCT-list swap) invalidates the embedded
SCTs.  :class:`IssuanceBug` reproduces each documented failure:

* ``SCT_REUSE`` — TeliaSonera embedded an SCT from an earlier
  re-issued certificate (1 certificate in the paper);
* ``SAN_REORDER`` — GlobalSign reordered SAN entries between precert
  and final when SANs mixed DNS names and IP addresses (12 certs);
* ``EXTENSION_REORDER`` — D-Trust emitted X.509 extensions in a
  different order in some final certificates (2 certs);
* ``SAN_SWAP`` — NetLock's final certificate carried entirely
  different SAN names and even a different issuer (1 cert).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ct.log import CTLog
from repro.ct.sct import SignedCertificateTimestamp, encode_sct_list
from repro.x509 import crypto
from repro.x509.certificate import (
    Certificate,
    Extension,
    GeneralName,
    POISON_EXTENSION_OID,
    SCT_LIST_EXTENSION_OID,
    SanType,
)

#: Generic non-CT extensions every certificate carries, in canonical order.
BASE_EXTENSION_OIDS = (
    "2.5.29.19",  # basicConstraints
    "2.5.29.15",  # keyUsage
    "2.5.29.35",  # authorityKeyIdentifier
    "2.5.29.14",  # subjectKeyIdentifier
)


class IssuanceBug(Enum):
    """Pipeline defects reproducing the Section 3.4 incidents."""

    NONE = "none"
    SCT_REUSE = "teliasonera-sct-reuse"
    SAN_REORDER = "globalsign-san-reorder"
    EXTENSION_REORDER = "dtrust-extension-reorder"
    SAN_SWAP = "netlock-san-swap"


@dataclass(frozen=True)
class IssuanceRequest:
    """What a subscriber asks the CA for."""

    dns_names: Tuple[str, ...]
    ip_addresses: Tuple[str, ...] = ()
    lifetime_days: int = 90
    embed_scts: bool = True


@dataclass(frozen=True)
class IssuedPair:
    """Result of one issuance: the precertificate, its SCTs, the final cert."""

    precertificate: Optional[Certificate]
    final_certificate: Certificate
    scts: Tuple[SignedCertificateTimestamp, ...]
    log_names: Tuple[str, ...]


ValidationHook = Callable[[Sequence[str], datetime], None]

#: Returns the CAA-authorized issuer names for a DNS name (empty
#: sequence = no CAA records = any CA may issue, per RFC 8659).
CaaChecker = Callable[[str, datetime], Sequence[str]]


class CaaDeniedError(RuntimeError):
    """Issuance refused because CAA records authorize a different CA."""


@dataclass
class CertificateAuthority:
    """A CA with a signing key and an (optionally buggy) CT pipeline.

    Parameters
    ----------
    name:
        The brand the paper aggregates by ("Let's Encrypt", "DigiCert"...).
    issuer_cns:
        The paper notes each brand subsumes various Issuer-CNs; one is
        picked round-robin per issuance.
    validation_hook:
        Called with the requested names *before* CT logging — this is
        the domain-validation DNS traffic the honeypot analysis must
        filter out (Section 6.1).
    log_final_certificates:
        Let's Encrypt behaviour after the Section 3.4 disclosure: also
        submit the final certificate to logs.
    """

    name: str
    issuer_cns: Tuple[str, ...] = ()
    key: crypto.KeyPair = None  # type: ignore[assignment]
    validation_hook: Optional[ValidationHook] = None
    #: When set, the CA checks CAA authorization before issuing (the
    #: ecosystem the paper's validation discussion sits in; cf. the
    #: authors' companion CAA study [35]).
    caa_checker: Optional[CaaChecker] = None
    #: The identifier subscribers put in ``issue`` CAA records for us.
    caa_identity: str = ""
    log_final_certificates: bool = False
    key_bits: int = 512

    _serial: int = 0
    _issued: int = 0
    _recent_scts: Dict[str, Tuple[SignedCertificateTimestamp, ...]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.key is None:
            self.key = crypto.KeyPair.generate(f"ca:{self.name}", self.key_bits)
        if not self.issuer_cns:
            self.issuer_cns = (f"{self.name} CA",)

    @property
    def issuer_key_hash(self) -> bytes:
        """SHA-256 of the CA public key (the PreCert struct field)."""
        return crypto.sha256(self.key.public_bytes())

    def next_serial(self) -> int:
        self._serial += 1
        return self._serial

    # -- issuance -----------------------------------------------------------

    def issue(
        self,
        request: IssuanceRequest,
        logs: Sequence[CTLog],
        now: datetime,
        *,
        bug: IssuanceBug = IssuanceBug.NONE,
    ) -> IssuedPair:
        """Run the full issuance pipeline for one certificate."""
        if not request.dns_names:
            raise ValueError("a certificate needs at least one DNS name")
        if self.caa_checker is not None:
            identity = self.caa_identity or self.name.lower().replace(" ", "-")
            for name in request.dns_names:
                allowed = list(self.caa_checker(name, now))
                if allowed and identity not in allowed:
                    raise CaaDeniedError(
                        f"CAA for {name!r} authorizes {allowed}, not {identity!r}"
                    )
        if self.validation_hook is not None:
            self.validation_hook(request.dns_names, now)

        issuer_cn = self.issuer_cns[self._issued % len(self.issuer_cns)]
        self._issued += 1
        base = self._build_tbs(request, issuer_cn, now)

        if not request.embed_scts or not logs:
            final = self._sign(base)
            return IssuedPair(None, final, (), ())

        precert = base.with_extensions(
            list(base.extensions) + [Extension(POISON_EXTENSION_OID, critical=True)]
        )
        precert = self._sign(precert)
        scts = tuple(
            log.add_pre_chain(precert, self.issuer_key_hash, now) for log in logs
        )
        log_names = tuple(log.name for log in logs)

        embed_scts = scts
        if bug is IssuanceBug.SCT_REUSE:
            # Re-issuance that copies the *previous* certificate's SCTs.
            previous = self._recent_scts.get(request.dns_names[0])
            if previous:
                embed_scts = previous
        self._recent_scts[request.dns_names[0]] = scts

        final_tbs = self._apply_final_assembly_bug(base, bug)
        final = final_tbs.with_extensions(
            list(final_tbs.extensions)
            + [Extension(SCT_LIST_EXTENSION_OID, encode_sct_list(list(embed_scts)))]
        )
        final = self._sign(final)

        if self.log_final_certificates:
            for log in logs:
                log.add_chain(final, now)
        return IssuedPair(precert, final, scts, log_names)

    def _build_tbs(
        self, request: IssuanceRequest, issuer_cn: str, now: datetime
    ) -> Certificate:
        san: List[GeneralName] = [
            GeneralName(SanType.DNS, name) for name in request.dns_names
        ] + [GeneralName(SanType.IP, ip) for ip in request.ip_addresses]
        extensions = [
            Extension(oid, value=crypto.sha256(f"{oid}:{self.name}".encode())[:8])
            for oid in BASE_EXTENSION_OIDS
        ]
        return Certificate(
            serial=self.next_serial(),
            issuer_cn=issuer_cn,
            issuer_org=self.name,
            subject_cn=request.dns_names[0],
            san=tuple(san),
            not_before=now,
            not_after=now + timedelta(days=request.lifetime_days),
            public_key_id=crypto.sha256(
                f"subscriber:{self.name}:{self._serial}".encode()
            )[:8],
            extensions=tuple(extensions),
        )

    def _apply_final_assembly_bug(
        self, base: Certificate, bug: IssuanceBug
    ) -> Certificate:
        """Re-create the documented precert/final divergences."""
        if bug is IssuanceBug.SAN_REORDER:
            # GlobalSign: DNS and IP entries swapped groups in the final cert.
            ips = [e for e in base.san if e.san_type is SanType.IP]
            dns = [e for e in base.san if e.san_type is SanType.DNS]
            return base.with_san(ips + dns)
        if bug is IssuanceBug.EXTENSION_REORDER:
            # D-Trust: X.509 extension ordering differed in the final cert.
            return base.with_extensions(tuple(reversed(base.extensions)))
        if bug is IssuanceBug.SAN_SWAP:
            # NetLock: final cert had entirely different SANs and issuer.
            from dataclasses import replace

            swapped = base.with_san(
                [GeneralName(SanType.DNS, "unrelated." + base.subject_cn)]
            )
            return replace(swapped, issuer_cn=swapped.issuer_cn + " G2")
        return base

    def _sign(self, cert: Certificate) -> Certificate:
        from dataclasses import replace

        signature = crypto.sign(self.key, cert.tbs_bytes())
        return replace(cert, signature=signature)
